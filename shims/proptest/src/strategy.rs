//! The [`Strategy`] trait and the built-in strategies: ranges, tuples,
//! `Just`, `any`, and `prop_map`.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. Unlike upstream there is no value tree or
/// shrinking: a strategy maps an RNG draw straight to a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chain a value-dependent strategy. Upstream returns a flattened
    /// strategy; here the closure's strategy is sampled immediately.
    fn prop_flat_map<O, S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy<Value = O>,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies are used by reference inside tuples, so `&S` is a strategy too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad-magnitude floats; full bit-pattern floats (NaN, inf)
        // are rarely what a property over numeric code wants.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    let span = (self.end - self.start) as f64;
                    self.start + (rng.unit_f64() * span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty float range strategy");
                    // Scale a closed-unit draw across the closed interval.
                    let u = rng.below((1u64 << 53) + 1) as f64 / (1u64 << 53) as f64;
                    start + (u * (end - start) as f64) as $t
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty int range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty int range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuple strategies (up to 8 elements, matching the widest call site)
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..500 {
            let x = (10usize..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let g = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&g));
            let n = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::from_seed(3);
        let s = (1usize..4, 0.0f64..1.0).prop_map(|(n, f)| vec![f; n]);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0u64..1000).generate(&mut rng)
        };
        assert_eq!(draw(42), draw(42));
    }
}
