//! `&str` as a strategy: generates `String`s from a small regex-like pattern
//! subset — enough for the patterns this workspace's tests use.
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_]` with
//! ranges, the proptest escape `\PC` (any printable, i.e. non-control, char),
//! and `{n}` / `{m,n}` repetition after an atom.

use crate::strategy::Strategy;
use crate::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    /// Closed char ranges to sample uniformly from (class members).
    Class(Vec<(char, char)>),
    /// `\PC`: printable characters, mostly ASCII with some multibyte.
    Printable,
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // skip ']'
                Atom::Class(ranges)
            }
            '\\' => {
                // Only `\PC` is needed; accept `\P` + one-char property name.
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern:?}"
                );
                i += 3;
                Atom::Printable
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close =
                chars[i..].iter().position(|&c| c == '}').expect("unterminated repetition") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
            let mut draw = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if draw < span {
                    return char::from_u32(lo as u32 + draw as u32).unwrap_or(lo);
                }
                draw -= span;
            }
            unreachable!()
        }
        Atom::Printable => {
            // Weighted toward ASCII printable; occasionally multibyte chars
            // (accents, CJK, emoji) to exercise UTF-8 handling.
            match rng.below(16) {
                0 => {
                    const EXOTIC: &[char] =
                        &['é', 'ü', 'ß', 'λ', 'Ж', '中', '東', '😀', '🌍', '—', '“', '¿'];
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                }
                _ => char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap(),
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let span = (piece.max - piece.min) as u64 + 1;
            let reps = piece.min + rng.below(span) as usize;
            for _ in 0..reps {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_never_emits_control_chars() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..100 {
            let s = "\\PC{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn mixed_class_members() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let s = "[a-zA-Z ]{1,40}".generate(&mut rng);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
        }
    }
}
