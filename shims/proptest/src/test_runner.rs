//! Runner configuration for the `proptest!` macro.

/// Shim counterpart of upstream `ProptestConfig`. Only `cases` matters here.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Deterministic 64-bit seed from a test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
