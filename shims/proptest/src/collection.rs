//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            assert_eq!(vec(0.0f32..1.0, 6).generate(&mut rng).len(), 6);
            let v = vec(0usize..9, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
