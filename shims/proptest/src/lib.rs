//! In-workspace shim for `proptest` (no crates.io access — see
//! `shims/README.md`).
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use: the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`any`], `collection::vec`, and string strategies from a small regex-like
//! pattern subset (`[a-z]{1,6}`-style classes and `\PC`).
//!
//! Departures from upstream: cases are drawn from a deterministic per-test
//! RNG (seeded from the test body's location), and there is **no shrinking**
//! — a failing case is reported as-is with its case index so it can be
//! replayed by rerunning the test.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test sizes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The `proptest! { ... }` block: expands each contained `#[test] fn` into a
/// standard test that draws `cases` inputs from its strategies and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Per-test deterministic seed: derived from the test name so
                // sibling tests explore different streams.
                let base = $crate::test_runner::seed_for(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_seed(
                        base ^ (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} failed for `{}`:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "prop_assert_eq failed: {:?} != {:?}",
                        l, r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "prop_assert_eq failed: {:?} != {:?} — {}",
                        l, r,
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(format!(
                        "prop_assert_ne failed: both sides are {:?}",
                        l
                    ));
                }
            }
        }
    };
}
