//! In-workspace shim for the `rand` crate (no crates.io access in the build
//! environment — see `shims/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses: a seedable
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`]
//! extension methods `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is deterministic per seed but
//! produces a different stream than upstream rand's ChaCha12-based `StdRng`;
//! workspace code only relies on self-consistency.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::std_rng::StdRng;
}
pub mod seq;
mod std_rng;

/// Core source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically seeds the generator from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (floats in `[0,1)`,
    /// uniform integers, fair bools).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    };
}
impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    };
}
impl_int_range!(u8);
impl_int_range!(u16);
impl_int_range!(u32);
impl_int_range!(u64);
impl_int_range!(usize);
impl_int_range!(i8);
impl_int_range!(i16);
impl_int_range!(i32);
impl_int_range!(i64);
impl_int_range!(isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&j));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
