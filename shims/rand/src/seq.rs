//! Slice sampling helpers (`SliceRandom`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (*rng).gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(*rng).gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "50 elements should move");
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(1));
        b.shuffle(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
