//! In-workspace shim for `serde_derive` (no crates.io access — see
//! `shims/README.md`): `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! generating impls of the shim `serde` crate's value-tree traits.
//!
//! Supports the shapes this workspace derives on:
//! * named-field structs,
//! * newtype and tuple structs (newtypes serialize transparently, wider
//!   tuples as arrays),
//! * enums whose variants are all unit variants (serialized as the variant
//!   name string),
//! * the `#[serde(from = "T", into = "T")]` container attributes.
//!
//! No `syn`/`quote` available, so the input item is parsed directly from the
//! `proc_macro` token stream and the generated impl is rendered as source
//! text; anything outside the supported subset fails the build with a
//! descriptive `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input parsed into.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — number of unnamed fields.
    TupleStruct(usize),
    /// `enum E { V1, V2 }` — unit variant names in declaration order.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
    /// `#[serde(from = "T")]` container attribute.
    from: Option<String>,
    /// `#[serde(into = "T")]` container attribute.
    into: Option<String>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Extracts `from`/`into` out of a `serde(...)` attribute body.
fn parse_serde_attr(body: TokenStream, from: &mut Option<String>, into: &mut Option<String>) {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(key) = &tokens[i] {
            let key = key.to_string();
            if (key == "from" || key == "into")
                && matches!(&tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=')
            {
                if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                    let raw = lit.to_string();
                    let ty = raw.trim_matches('"').to_string();
                    if key == "from" {
                        *from = Some(ty);
                    } else {
                        *into = Some(ty);
                    }
                    i += 3;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Parses the derive input item. Returns `Err(message)` on unsupported shapes.
fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    let mut from = None;
    let mut into = None;

    // Outer attributes and visibility before `struct` / `enum`.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    // Attribute: look inside for `serde(...)`.
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(id)) = inner.next() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                parse_serde_attr(args.stream(), &mut from, &mut into);
                            }
                        }
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                match word.as_str() {
                    "pub" => {
                        // Skip optional `(crate)` / `(super)` restriction.
                        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            tokens.next();
                        }
                    }
                    "struct" | "enum" => break word,
                    other => return Err(format!("unexpected token '{other}' before struct/enum")),
                }
            }
            Some(other) => return Err(format!("unexpected token '{other}' in derive input")),
            None => return Err("ran out of tokens before struct/enum".into()),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    // Generics are not supported (nothing in the workspace derives on them).
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde_derive shim: generic type {name} unsupported"));
    }

    let body = tokens.next();
    let shape = match (kind.as_str(), body) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::TupleStruct(0),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(g.stream())?)
        }
        (k, b) => return Err(format!("unsupported {k} body for {name}: {b:?}")),
    };

    Ok(Input { name, shape, from, into })
}

/// Field names of a named struct body, skipping attributes, visibility, and
/// type tokens (commas inside `<...>` generics are depth-tracked).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes (doc comments).
        while matches!(&tokens[i..], [TokenTree::Punct(p), TokenTree::Group(_), ..] if p.as_char() == '#')
        {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Skip visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        // Field name.
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other}")),
        };
        fields.push(name);
        i += 1;
        // Expect ':', then skip the type until a top-level ','.
        if !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected ':' after field {}", fields.last().unwrap()));
        }
        i += 1;
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body (top-level commas, angle-aware).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    count - usize::from(trailing_comma)
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i..], [TokenTree::Punct(p), TokenTree::Group(_), ..] if p.as_char() == '#')
        {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => return Err(format!("expected variant name, got {other}")),
        }
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde_derive shim: enum variant {} carries data (unsupported)",
                    variants.last().unwrap()
                ))
            }
            Some(other) => return Err(format!("unexpected token {other} after variant")),
        }
    }
    Ok(variants)
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;

    let body = if let Some(repr) = &input.into {
        // Container attribute: convert to the repr type, serialize that.
        format!(
            "let repr: {repr} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&repr)"
        )
    } else {
        match &input.shape {
            Shape::NamedStruct(fields) => {
                let mut pushes = String::new();
                for f in fields {
                    pushes.push_str(&format!(
                        "entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    ));
                }
                format!(
                    "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(entries)"
                )
            }
            Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::TupleStruct(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Shape::UnitEnum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
                    .collect();
                format!("match self {{ {} }}", arms.join(", "))
            }
        }
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;

    let body = if let Some(repr) = &input.from {
        format!(
            "let repr = <{repr} as ::serde::Deserialize>::from_value(v)?;\n\
             ::core::result::Result::Ok(<Self as ::core::convert::From<{repr}>>::from(repr))"
        )
    } else {
        match &input.shape {
            Shape::NamedStruct(fields) => {
                let mut sets = String::new();
                for f in fields {
                    sets.push_str(&format!("{f}: ::serde::field_from_object(entries, {f:?})?,\n"));
                }
                format!(
                    "let entries = v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected object for \", {name:?})))?;\n\
                     ::core::result::Result::Ok({name} {{ {sets} }})"
                )
            }
            Shape::TupleStruct(1) => {
                format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Shape::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = v.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array\"))?;\n\
                     if items.len() != {n} {{ return ::core::result::Result::Err(\
                     ::serde::Error::custom(\"tuple arity mismatch\")); }}\n\
                     ::core::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Shape::UnitEnum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|var| format!("{var:?} => ::core::result::Result::Ok({name}::{var})"))
                    .collect();
                format!(
                    "let s = v.as_str().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected variant string for \", {name:?})))?;\n\
                     match s {{ {}, other => ::core::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {name} variant {{other}}\"))) }}",
                    arms.join(", ")
                )
            }
        }
    };

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}
