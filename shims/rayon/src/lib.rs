//! In-workspace shim for the `rayon` crate (no crates.io access in the build
//! environment — see `shims/README.md`).
//!
//! Implements the data-parallel subset this workspace uses: `par_iter` over
//! slices and `HashMap`s, `into_par_iter` over `Vec`s and ranges,
//! `par_chunks_mut`, and the `map` / `filter_map` / `enumerate` / `for_each`
//! / `collect` adapters. Items are split into contiguous buckets dispatched
//! onto the persistent `edge-par` worker pool, with result order preserved —
//! semantically equivalent to rayon's indexed parallel iterators for the
//! operations provided.
//!
//! Like real rayon (and unlike this shim's original spawn-per-call
//! implementation), worker threads are parked between calls, so per-call
//! dispatch overhead is a queue push + wake rather than thread spawns.
//! `EDGE_NUM_THREADS` / `edge_par::set_num_threads` control the fan-out;
//! `edge_par::DispatchMode::Spawn` restores the spawn-per-call behavior for
//! A/B benchmarks.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSliceMut,
    };
}

/// Number of worker threads a parallel call fans out to (the `edge-par`
/// pool's configured parallelism, `EDGE_NUM_THREADS`-overridable).
pub fn current_num_threads() -> usize {
    edge_par::num_threads()
}

/// Splits `items` into at most `n` contiguous buckets, preserving order.
fn split_buckets<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let n = n.clamp(1, items.len().max(1));
    let chunk = items.len().div_ceil(n);
    let mut buckets = Vec::with_capacity(n);
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        buckets.push(items);
        items = rest;
    }
    buckets
}

/// Runs `f` over every item on the `edge-par` pool, preserving input order
/// in the returned vector. `None` results are dropped (filtering).
///
/// Items are pre-split into a few contiguous buckets per configured thread
/// (chunked indexed dispatch); each pool task consumes one bucket. The
/// per-bucket mutexes are uncontended — every slot is touched by exactly one
/// task — and exist only to move owned data across the dispatch boundary
/// without unsafe code.
fn drive_parallel<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Option<R> + Sync,
{
    let threads = current_num_threads();
    if items.len() <= 1 || threads == 1 {
        return items.into_iter().filter_map(f).collect();
    }
    // Oversubscribe buckets so the pool can rebalance uneven work.
    let buckets = split_buckets(items, threads * 4);
    let inputs: Vec<Mutex<Option<Vec<T>>>> =
        buckets.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let outputs: Vec<Mutex<Vec<R>>> = (0..inputs.len()).map(|_| Mutex::new(Vec::new())).collect();
    edge_par::parallel_for(inputs.len(), |i| {
        let bucket = inputs[i].lock().unwrap().take().expect("bucket consumed twice");
        *outputs[i].lock().unwrap() = bucket.into_iter().filter_map(f).collect();
    });
    let mut out = Vec::new();
    for slot in outputs {
        out.extend(slot.into_inner().expect("edge-par task panicked"));
    }
    out
}

/// A parallel iterator: a source of `Send` items plus composed per-item
/// transforms, executed by [`drive_parallel`] at a terminal operation.
pub trait ParallelIterator: Sized {
    /// The item type flowing out of this iterator.
    type Item: Send;

    /// Materializes the (cheap) base items; transforms run later, in parallel.
    fn base_items(self) -> Vec<Self::Item>;

    /// Applies `consumer` to every item in parallel, keeping `Some` results
    /// in input order. Adapters override this to compose their transform.
    fn drive<R: Send, C: Fn(Self::Item) -> Option<R> + Sync>(self, consumer: &C) -> Vec<R> {
        drive_parallel(self.base_items(), consumer)
    }

    /// Parallel map.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Parallel filter-map.
    fn filter_map<R: Send, F: Fn(Self::Item) -> Option<R> + Sync>(
        self,
        f: F,
    ) -> FilterMap<Self, F> {
        FilterMap { base: self, f }
    }

    /// Pairs every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        self.drive(&|item| {
            f(item);
            None::<()>
        });
    }

    /// Collects results (order-preserving).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.drive(&Some))
    }

    /// Sum of the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive(&Some).into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.base_items().len()
    }
}

/// Parallel map adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn base_items(self) -> Vec<R> {
        let f = self.f;
        self.base.drive(&|x| Some(f(x)))
    }

    fn drive<R2: Send, C: Fn(R) -> Option<R2> + Sync>(self, consumer: &C) -> Vec<R2> {
        let f = self.f;
        self.base.drive(&|x| consumer(f(x)))
    }
}

/// Parallel filter-map adapter.
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> Option<R> + Sync,
{
    type Item = R;

    fn base_items(self) -> Vec<R> {
        let f = self.f;
        self.base.drive(&f)
    }

    fn drive<R2: Send, C: Fn(R) -> Option<R2> + Sync>(self, consumer: &C) -> Vec<R2> {
        let f = self.f;
        self.base.drive(&|x| f(x).and_then(consumer))
    }
}

/// Index-pairing adapter. Indexing happens at materialization, so the
/// transform chain below it still runs in parallel.
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);

    fn base_items(self) -> Vec<(usize, B::Item)> {
        self.base.base_items().into_iter().enumerate().collect()
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn base_items(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// Parallel iterator over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn base_items(self) -> Vec<T> {
        self.items
    }
}

/// By-reference parallel iteration (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed parallel iterator type.
    type Iter: ParallelIterator;

    /// Borrowing counterpart of [`IntoParallelIterator::into_par_iter`].
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, K: Sync + 'a, V: Sync + 'a, S> IntoParallelRefIterator<'a> for HashMap<K, V, S> {
    type Iter = IntoParIter<(&'a K, &'a V)>;

    fn par_iter(&'a self) -> IntoParIter<(&'a K, &'a V)> {
        IntoParIter { items: self.iter().collect() }
    }
}

/// By-value parallel iteration (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The produced iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = IntoParIter<usize>;

    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter { items: self.collect() }
    }
}

/// Mutable chunked parallel iteration (`.par_chunks_mut()`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> IntoParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> IntoParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        IntoParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

/// Order-preserving parallel `collect` targets.
pub trait FromParallelIterator<T> {
    /// Builds the collection from already-ordered results.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<K: std::hash::Hash + Eq, V, S: std::hash::BuildHasher + Default> FromParallelIterator<(K, V)>
    for HashMap<K, V, S>
{
    fn from_par_vec(items: Vec<(K, V)>) -> Self {
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn filter_map_drops_nones_in_order() {
        let v: Vec<i32> = (0..100).collect();
        let odd: Vec<i32> = v.par_iter().filter_map(|&x| (x % 2 == 1).then_some(x)).collect();
        assert_eq!(odd, (0..100).filter(|x| x % 2 == 1).collect::<Vec<i32>>());
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each_writes_all() {
        let mut data = vec![0usize; 40];
        data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = i * 4 + j;
            }
        });
        assert_eq!(data, (0..40).collect::<Vec<usize>>());
    }

    #[test]
    fn for_each_runs_once_per_item() {
        let counter = AtomicUsize::new(0);
        let v: Vec<u8> = vec![1; 257];
        v.par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn hashmap_par_iter_and_collect() {
        let m: HashMap<String, u32> = (0..50).map(|i| (format!("k{i}"), i)).collect();
        let back: HashMap<String, u32> = m.par_iter().map(|(k, &v)| (k.clone(), v + 1)).collect();
        assert_eq!(back.len(), 50);
        assert_eq!(back["k7"], 8);
    }

    #[test]
    fn into_par_iter_over_vec_and_range() {
        let s: u64 = (0usize..101).into_par_iter().map(|x| x as u64).sum();
        assert_eq!(s, 5050);
        let v = vec![3u64; 7];
        let s2: u64 = v.into_par_iter().sum();
        assert_eq!(s2, 21);
    }

    #[test]
    fn work_actually_crosses_threads() {
        // With >1 worker available, at least two distinct thread ids should
        // touch a large enough workload.
        if super::current_num_threads() < 2 {
            return;
        }
        let ids = std::sync::Mutex::new(std::collections::HashSet::new());
        let v: Vec<u32> = (0..10_000).collect();
        v.par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(ids.lock().unwrap().len() >= 2);
    }
}
