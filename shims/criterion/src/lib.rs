//! In-workspace shim for `criterion` (no crates.io access — see
//! `shims/README.md`).
//!
//! Implements the harness surface the workspace's benches use:
//! [`Criterion`] with `bench_function` / `benchmark_group`, [`BenchmarkGroup`]
//! with `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of upstream's statistical analysis and HTML reports, each
//! benchmark is calibrated to a per-sample iteration count, timed for
//! `sample_size` samples, and a single plain-text line with min / mean /
//! median nanoseconds per iteration is printed to stdout.
//!
//! Like upstream, passing `--test` (`cargo bench ... -- --test`) skips
//! calibration and measurement and runs each benchmark routine exactly once
//! — a smoke check that the benches still execute, cheap enough for CI.

use std::time::{Duration, Instant};

/// Top-level benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), criterion: self }
    }
}

/// A named group of related benchmarks (`group/id` in the report lines).
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&label, self.criterion, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.criterion, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters_per_sample: u64,
    sample_size: usize,
    measurement: Duration,
    /// Per-sample mean nanoseconds, filled by `iter`.
    samples_ns: Vec<f64>,
    calibrating: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.calibrating {
            // Find an iteration count that makes one sample take ≥ ~1/50th of
            // the measurement budget (so sample_size samples roughly fill it).
            let target = (self.measurement.as_secs_f64() / 50.0).max(1e-4);
            let mut iters = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                let elapsed = start.elapsed().as_secs_f64();
                if elapsed >= target || iters >= 1 << 30 {
                    self.iters_per_sample = iters;
                    break;
                }
                // Grow geometrically toward the target.
                let factor = (target / elapsed.max(1e-9)).clamp(2.0, 100.0);
                iters = ((iters as f64) * factor).ceil() as u64;
            }
            return;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, config: &Criterion, f: &mut F) {
    if config.test_mode {
        // `-- --test`: execute the routine once to prove it runs; no timing.
        let mut bencher = Bencher {
            iters_per_sample: 1,
            sample_size: 1,
            measurement: Duration::ZERO,
            samples_ns: Vec::new(),
            calibrating: false,
        };
        f(&mut bencher);
        println!("test bench {label}: ok");
        return;
    }
    // Warm-up + calibration pass.
    let warm_until = Instant::now() + config.warm_up;
    let mut bencher = Bencher {
        iters_per_sample: 1,
        sample_size: config.sample_size,
        measurement: config.measurement,
        samples_ns: Vec::new(),
        calibrating: true,
    };
    loop {
        f(&mut bencher);
        if Instant::now() >= warm_until {
            break;
        }
    }

    // Measurement pass.
    bencher.calibrating = false;
    f(&mut bencher);

    if bencher.samples_ns.is_empty() {
        println!("bench {label:<40} (no iter() call)");
        return;
    }
    let mut sorted = bencher.samples_ns.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = bencher.samples_ns.iter().sum::<f64>() / bencher.samples_ns.len() as f64;
    println!(
        "bench {label:<40} min {} median {} mean {} ({} iters/sample, {} samples)",
        format_ns(min),
        format_ns(median),
        format_ns(mean),
        bencher.iters_per_sample,
        bencher.samples_ns.len(),
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

/// Re-export so generated code can use `criterion::black_box` too.
pub use std::hint::black_box;

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        // Should complete quickly and not panic.
        c.bench_function("smoke/add", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }

    #[test]
    fn test_mode_runs_routine_exactly_once() {
        let mut c = Criterion { test_mode: true, ..Criterion::default() };
        let mut calls = 0u32;
        c.bench_function("smoke/once", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_labels_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
    }
}
