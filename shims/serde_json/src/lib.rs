//! In-workspace shim for `serde_json` (no crates.io access — see
//! `shims/README.md`).
//!
//! A recursive-descent JSON parser and writer over the shim `serde` crate's
//! [`Value`] tree. Covers what the workspace uses: `from_str`, `to_string`,
//! `to_string_pretty`, `to_value`/`from_value`, and an `Error` type that is
//! `Display + std::error::Error`.
//!
//! Departures from upstream worth knowing about:
//! * Non-finite floats serialize as `null` (same as upstream).
//! * Map keys are emitted in the order the `Value::Object` holds them (the
//!   shim `serde` sorts `HashMap` keys at `to_value` time for determinism).

pub use serde::Value;

use std::fmt;

/// Parse / serialize error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Mirrors upstream serde_json, which converts its errors into `io::Error`
/// so `?` works inside `std::io::Result` functions.
impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as human-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into a concrete type.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Parse a JSON document into a concrete type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_document(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Construct JSON values with literal-ish syntax. Supports the subset this
/// workspace writes: `json!({ "k": expr, ... })`, `json!([a, b])`, and bare
/// serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_number(n: &serde::Number, out: &mut String) {
    match n {
        serde::Number::PosInt(u) => out.push_str(&u.to_string()),
        serde::Number::NegInt(i) => out.push_str(&i.to_string()),
        serde::Number::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip float formatting; integral floats
                // get a ".0" suffix so they re-parse as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_document(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' in object, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' in array, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            // parse_hex4 enters with pos at 'u' and exits past
                            // the 4th digit.
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                // High surrogate followed by `\uXXXX`: decode
                                // the pair into one astral-plane char.
                                self.pos += 1; // skip '\', land on 'u'
                                let lo = self.parse_hex4()?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                } else {
                                    out.push('\u{FFFD}');
                                    out.push(char::from_u32(lo).unwrap_or('\u{FFFD}'));
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                            continue;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction: we came from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape. On entry `pos` is at the
    /// `u`; on exit it is past the last digit.
    fn parse_hex4(&mut self) -> Result<u32> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| Error(format!("bad float {text}")))?;
            Ok(Value::Num(serde::Number::Float(f)))
        } else if text.starts_with('-') {
            let i: i64 = text.parse().map_err(|_| Error(format!("bad int {text}")))?;
            Ok(Value::Num(serde::Number::NegInt(i)))
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::Num(serde::Number::PosInt(u))),
                // Overflow: fall back to float like upstream's arbitrary_precision-off mode.
                Err(_) => {
                    let f: f64 = text.parse().map_err(|_| Error(format!("bad int {text}")))?;
                    Ok(Value::Num(serde::Number::Float(f)))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let src = r#"{"a":1,"b":[1.5,true,null],"c":{"nested":"hi\nthere"}}"#;
        let v: Value = from_str(src).unwrap();
        let out = to_string(&v).unwrap();
        let v2: Value = from_str(&out).unwrap();
        assert_eq!(format!("{v:?}"), format!("{v2:?}"));
    }

    #[test]
    fn pretty_has_indentation() {
        let v: Value = from_str(r#"{"x":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"x\""));
    }

    #[test]
    fn floats_round_trip_exactly() {
        let src = "[0.1,1e-9,12345.6789,3.0]";
        let v: Value = from_str(src).unwrap();
        let out = to_string(&v).unwrap();
        // Representation may differ (Display avoids exponents for 1e-9), but
        // the parsed values must be bit-identical after a round trip.
        assert_eq!(out, "[0.1,0.000000001,12345.6789,3.0]");
        let v2: Value = from_str(&out).unwrap();
        assert_eq!(format!("{v:?}"), format!("{v2:?}"));
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""café 😀""#).unwrap();
        match v {
            Value::Str(s) => assert_eq!(s, "café 😀"),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn errors_report_position() {
        let err = from_str::<Value>("[1,2").unwrap_err();
        assert!(err.to_string().contains("array"));
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "name": "edge", "n": 3_usize, "flags": [true, false] });
        let out = to_string(&v).unwrap();
        assert_eq!(out, r#"{"name":"edge","n":3,"flags":[true,false]}"#);
    }
}
