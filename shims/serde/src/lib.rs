//! In-workspace shim for the `serde` crate (no crates.io access in the build
//! environment — see `shims/README.md`).
//!
//! Unlike real serde's zero-copy visitor architecture, this shim serializes
//! through an owned JSON-like [`Value`] tree: `Serialize` renders a value
//! into a [`Value`], `Deserialize` reads one back. The only format the
//! workspace uses is JSON (via the sibling `serde_json` shim), so the tree
//! model loses nothing but speed — and model files here are megabytes, not
//! gigabytes.
//!
//! The derive macros (re-exported from `serde_derive`) cover named structs,
//! newtype/tuple structs, unit-variant enums, and the
//! `#[serde(from = "T", into = "T")]` container attributes.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON number, preserving 64-bit integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers, as in real serde_json).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An owned JSON-like document tree — the shim's serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a document tree.
    fn to_value(&self) -> Value;
}

/// Types readable back from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads a value from a document tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent (`None` = error).
    /// `Option<T>` overrides this to tolerate missing fields, as real serde
    /// does.
    fn if_missing() -> Option<Self> {
        None
    }
}

/// Derive-support helper: extracts and deserializes field `name` from the
/// entries of an object.
pub fn field_from_object<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::custom(format!("field '{name}': {}", e.0)))
        }
        None => T::if_missing().ok_or_else(|| Error::custom(format!("missing field '{name}'"))),
    }
}

// ---- impls for primitives ------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Num(Number::PosInt(i as u64))
                } else {
                    Value::Num(Number::NegInt(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                // JSON has no NaN/inf literal; serialize as null (and read
                // null back as NaN below), keeping NaN-bearing reports
                // round-trippable.
                if f.is_finite() {
                    Value::Num(Number::Float(f))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---- impls for composites ------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = Vec::with_capacity(N);
        for item in items {
            out.push(T::from_value(item)?);
        }
        out.try_into().map_err(|_| Error::custom("array length changed"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn if_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map key types: serialized as JSON object keys (strings), the way upstream
/// serde_json stringifies integer map keys.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("bad integer map key {s:?}")))
            }
        }
    )*};
}
impl_int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic despite hash order.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f32::from_value(&f32::NAN.to_value()).unwrap().is_nan());
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(usize, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn missing_option_field_is_none() {
        let entries: Vec<(String, Value)> = vec![];
        let x: Option<u32> = field_from_object(&entries, "absent").unwrap();
        assert_eq!(x, None);
        assert!(field_from_object::<u32>(&entries, "absent").is_err());
    }
}
