//! End-to-end integration: corpus → NER → entity2vec → graph → GCN →
//! attention → mixture head → prediction → the paper's metrics, through the
//! facade crate's public API only.

use edge::prelude::*;

fn trained_on(seed: u64) -> (EdgeModel, edge::data::Dataset) {
    let dataset = edge::data::nyma(PresetSize::Smoke, seed);
    let (train, _) = dataset.paper_split();
    let ner = edge::data::dataset_recognizer(&dataset);
    let (model, _) =
        EdgeModel::train(train, ner, &dataset.bbox, EdgeConfig::smoke(), &TrainOptions::default())
            .expect("train");
    (model, dataset)
}

#[test]
fn full_pipeline_beats_naive_center_guess() {
    let (model, dataset) = trained_on(1001);
    let (_, test) = dataset.paper_split();
    let outcome = model.evaluate(test, &PredictOptions::default());
    assert!(outcome.coverage > 0.7, "coverage {}", outcome.coverage);

    let edge_report = DistanceReport::from_pairs(&outcome.point_pairs()).unwrap();
    let center: Vec<(Point, Point)> =
        outcome.pairs.iter().map(|(_, t)| (dataset.bbox.center(), *t)).collect();
    let center_report = DistanceReport::from_pairs(&center).unwrap();

    assert!(edge_report.median_km < center_report.median_km);
    assert!(edge_report.at_3km > center_report.at_3km);
    assert!(edge_report.at_5km > center_report.at_5km);
}

#[test]
fn mixture_outputs_are_valid_distributions() {
    let (model, dataset) = trained_on(1002);
    let (_, test) = dataset.paper_split();
    let mut checked = 0;
    for t in test.iter().take(100) {
        let Ok(r) = model.locate(&PredictRequest::text(&t.text), &Default::default()) else {
            continue;
        };
        let p = r.prediction;
        checked += 1;
        // Weights sum to 1; every component is non-degenerate.
        let w_sum: f64 = p.mixture.weights().iter().sum();
        assert!((w_sum - 1.0).abs() < 1e-9);
        for g in p.mixture.components() {
            assert!(g.sigma_lat > 0.0 && g.sigma_lon > 0.0);
            assert!(g.rho.abs() < 1.0);
            assert!(g.mu.is_finite());
        }
        // The density at the point estimate is a local maximum among the
        // component means (Eq. 14).
        let at_mode = p.mixture.pdf(&p.point);
        for g in p.mixture.components() {
            assert!(at_mode >= p.mixture.pdf(&g.mu) - 1e-12);
        }
    }
    assert!(checked > 60, "checked only {checked}");
}

#[test]
fn attention_differentiates_entities() {
    // The Eq. 2-4 mechanism check: for two-entity inputs, the learned
    // attention must produce genuinely entity-dependent weights (a dead
    // attention layer would emit 0.5/0.5 for every pair). The paper's
    // stronger qualitative claim — fine-grained entities get systematically
    // more weight than coarse ones — does NOT reproduce at our scale
    // (EXPERIMENTS.md records the measurement); EDGE still beats the SUM
    // ablation, which is the quantitative form of the claim (Table IV).
    let (model, _) = trained_on(1003);
    let n = model.entity_index().len();
    assert!(n > 40);
    let mut asymmetric = 0;
    let mut pairs = 0;
    for i in (0..n - 1).step_by(3).take(40) {
        let p = model
            .locate(&PredictRequest::entities(vec![i, i + 1]), &Default::default())
            .expect("covered")
            .prediction;
        assert_eq!(p.attention.len(), 2);
        let w0 = p.attention[0].1;
        pairs += 1;
        if (w0 - 0.5).abs() > 0.02 {
            asymmetric += 1;
        }
    }
    assert!(pairs >= 30);
    assert!(
        asymmetric * 2 > pairs,
        "attention is flat: only {asymmetric}/{pairs} pairs show asymmetry"
    );
}

#[test]
fn rdp_metric_works_end_to_end() {
    let (model, dataset) = trained_on(1004);
    let (_, test) = dataset.paper_split();
    let mixtures: Vec<(GaussianMixture, Point)> = test
        .iter()
        .take(150)
        .filter_map(|t| {
            let r = model.locate(&PredictRequest::text(&t.text), &Default::default()).ok()?;
            Some((r.prediction.mixture, t.location))
        })
        .collect();
    assert!(mixtures.len() > 80);
    let r3 = edge::geo::rdp(&mixtures, 3.0, 500, 9);
    let r10 = edge::geo::rdp(&mixtures, 10.0, 500, 9);
    let r100 = edge::geo::rdp(&mixtures, 100.0, 500, 9);
    assert!(r3 > 0.02, "some mass lands near the truth: {r3}");
    assert!(r3 <= r10 + 0.02 && r10 <= r100 + 0.02, "{r3} {r10} {r100}");
    assert!(r100 > 0.9, "region-scale radius captures almost everything: {r100}");
}

#[test]
fn training_is_reproducible_through_the_facade() {
    let (m1, d) = trained_on(1005);
    let (m2, _) = trained_on(1005);
    let (_, test) = d.paper_split();
    for t in test.iter().take(40) {
        let req = PredictRequest::text(&t.text);
        let opts = PredictOptions::default();
        match (m1.locate(&req, &opts), m2.locate(&req, &opts)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.prediction.point, b.prediction.point);
                assert_eq!(a.prediction.attention, b.prediction.attention);
            }
            (Err(_), Err(_)) => {}
            _ => panic!("coverage differs between identical runs"),
        }
    }
}
