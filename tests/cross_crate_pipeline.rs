//! Cross-crate integration: exercises the seams between substrates — NER ↔
//! entity2vec ↔ graph ↔ tensor ↔ geo — that the model composes, plus the
//! diffusion semantics the paper's Observation-2 argument rests on.

use std::sync::Arc;

use edge::core::{entity_sentence, run_entity2vec};
use edge::embed::SgnsConfig;
use edge::graph::{build_cooccurrence_graph, ego_net, graph_stats, normalized_adjacency_triplets};
use edge::prelude::*;
use edge::tensor::{CsrMatrix, Matrix};

fn corpus() -> (edge::data::Dataset, edge::text::EntityRecognizer) {
    let d = edge::data::nyma(PresetSize::Smoke, 2001);
    let ner = edge::data::dataset_recognizer(&d);
    (d, ner)
}

#[test]
fn ner_feeds_entity2vec_consistently() {
    let (d, ner) = corpus();
    let (train, _) = d.paper_split();
    // Every entity the NER finds in a tweet appears as a token in the
    // entity sentence for that tweet.
    for t in train.iter().take(300) {
        let sentence = entity_sentence(&t.text, &ner);
        for m in ner.recognize(&t.text) {
            assert!(
                sentence.contains(&m.id),
                "entity {} missing from sentence {:?} (text: {})",
                m.id,
                sentence,
                t.text
            );
        }
    }
}

#[test]
fn cooccurrence_graph_reflects_corpus_pairs() {
    let (d, ner) = corpus();
    let (train, _) = d.paper_split();
    let sgns = SgnsConfig { dim: 8, epochs: 1, ..Default::default() };
    let e2v = run_entity2vec(train, &ner, &sgns, 8);
    let graph =
        build_cooccurrence_graph(e2v.index.len(), e2v.tweet_entities.iter().map(Vec::as_slice));
    // Edge weights equal hand-counted co-occurrences for a sample of pairs.
    let mut checked = 0;
    for ids in e2v.tweet_entities.iter().filter(|ids| ids.len() >= 2).take(20) {
        let (a, b) = (ids[0], ids[1]);
        let manual =
            e2v.tweet_entities.iter().filter(|t| t.contains(&a) && t.contains(&b)).count() as f32;
        assert_eq!(graph.edge_weight(a, b), manual, "pair ({a},{b})");
        checked += 1;
    }
    assert!(checked >= 10);
    let stats = graph_stats(&graph);
    assert!(stats.largest_component > stats.n_nodes / 2, "graph should be well connected");
}

#[test]
fn two_layer_diffusion_reaches_exactly_the_two_hop_egonet() {
    let (d, ner) = corpus();
    let (train, _) = d.paper_split();
    let sgns = SgnsConfig { dim: 4, epochs: 1, ..Default::default() };
    let e2v = run_entity2vec(&train[..1500], &ner, &sgns, 4);
    let graph =
        build_cooccurrence_graph(e2v.index.len(), e2v.tweet_entities.iter().map(Vec::as_slice));
    let n = e2v.index.len();
    let adj = Arc::new(CsrMatrix::from_triplets(n, n, &normalized_adjacency_triplets(&graph)));

    // One-hot feature on a node with a non-trivial ego net.
    let source = (0..n)
        .find(|&i| {
            let one = ego_net(&graph, i, 1).len();
            let two = ego_net(&graph, i, 2).len();
            one > 2 && two > one && two < n
        })
        .expect("a node with a growing ego net");
    let mut x = Matrix::zeros(n, 1);
    x.set(source, 0, 1.0);
    let identity = Matrix::identity(1);
    let h = edge::core::gcn::gcn_infer(&adj, &x, &[&identity, &identity]);

    let reach = ego_net(&graph, source, 2);
    for i in 0..n {
        let inside = reach.binary_search(&i).is_ok();
        if inside {
            assert!(h.get(i, 0) > 0.0, "node {i} in the 2-hop ego net got no mass");
        } else {
            assert_eq!(h.get(i, 0), 0.0, "node {i} outside the ego net got mass");
        }
    }
}

#[test]
fn entity_sentences_round_trip_to_embeddings_and_geo() {
    // The full substrate chain: text → ids → embedding rows → a Gaussian
    // fit in geo space over the tweets that mention the entity.
    let (d, ner) = corpus();
    let (train, _) = d.paper_split();
    let sgns = SgnsConfig { dim: 16, epochs: 2, ..Default::default() };
    let e2v = run_entity2vec(train, &ner, &sgns, 16);

    let majestic = e2v.index.get("majestic_theatre").expect("signature entity");
    assert_eq!(e2v.embeddings[majestic].len(), 16);

    let locations: Vec<Point> = train
        .iter()
        .zip(&e2v.tweet_entities)
        .filter(|(_, ids)| ids.contains(&majestic))
        .map(|(t, _)| t.location)
        .collect();
    assert!(locations.len() >= 3, "signature entity mentioned {} times", locations.len());
    let g = edge::geo::BivariateGaussian::fit(&locations).expect("fit");
    // The signature venue sits at (40.7571, -73.9885); its mention cloud
    // must be centred nearby and tight.
    assert!(g.mu.haversine_km(&Point::new(40.7571, -73.9885)) < 3.0, "centre {:?}", g.mu);
}

#[test]
fn tensor_and_geo_agree_on_mixture_density() {
    // decode_theta (geo path) agrees with the training loss (tensor path)
    // for random θ — the cross-crate consistency the MDN head relies on.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    for m in [1usize, 2, 4] {
        for _ in 0..20 {
            let mut theta = vec![0.0f32; 6 * m];
            for (i, v) in theta.iter_mut().enumerate() {
                *v = match i / m {
                    1 => rng.gen_range(39.0..42.0),
                    2 => rng.gen_range(-75.0..-73.0),
                    _ => rng.gen_range(-2.0..2.0),
                };
            }
            let target = Point::new(rng.gen_range(40.0..41.0), rng.gen_range(-74.5..-73.5));
            let mixture = edge::core::decode_theta(&theta, m);
            let (nll, _) = edge::tensor::loss::gmm_nll_row(&theta, target.lat, target.lon, m);
            let direct = mixture.pdf(&target);
            assert!(
                ((-nll).exp() - direct).abs() <= 1e-5 * (1.0 + direct),
                "M={m}: exp(-nll)={} vs pdf={direct}",
                (-nll).exp()
            );
        }
    }
}
