//! The headline reproduction claim, as an integration test: on a small
//! corpus, EDGE's ordering against the baselines and ablations matches the
//! *shape* of Tables III and IV — EDGE leads, Hyper-local covers only part
//! of the test set, UnicodeCNN trails on fine-grained prediction, and
//! removing any EDGE component hurts.
//!
//! Kept at smoke scale so `cargo test` stays minutes-fast; the full-scale
//! numbers live in EXPERIMENTS.md via the `edge-bench` binaries.

use edge::baselines::{Geolocator, HyperLocal, HyperLocalParams, NaiveBayes};
use edge::prelude::*;

fn dataset() -> edge::data::Dataset {
    edge::data::nyma(PresetSize::Smoke, 3001)
}

fn edge_report(d: &edge::data::Dataset, config: EdgeConfig) -> DistanceReport {
    let (train, test) = d.paper_split();
    let ner = edge::data::dataset_recognizer(d);
    let (model, _) =
        EdgeModel::train(train, ner, &d.bbox, config, &TrainOptions::default()).expect("train");
    model.evaluate_points(test).report().unwrap()
}

#[test]
fn edge_beats_naive_bayes() {
    // The Table-III headline. The smoke corpus is too small for a stable
    // separation (its entity-oracle floor is ~3.5 km median and the
    // remote-mention noise dominates), so this test runs on a mid-size
    // slice of the Default corpus with the real `fast` training profile —
    // the same setup whose full-scale numbers live in EXPERIMENTS.md.
    let d = edge::data::nyma(PresetSize::Default, 3001);
    let (train, test) = d.paper_split();
    let train = &train[train.len() - 9000..]; // most recent 9k training tweets
    let test = &test[..2000];

    let ner = edge::data::dataset_recognizer(&d);
    let (model, _) =
        EdgeModel::train(train, ner, &d.bbox, EdgeConfig::fast(), &TrainOptions::default())
            .expect("train");
    let edge = model.evaluate_points(test).report().unwrap();

    let nb = {
        let m = NaiveBayes::fit(train, edge::geo::Grid::new(d.bbox, 100, 100));
        m.evaluate_points(test).report().unwrap()
    };
    assert!(edge.median_km < nb.median_km, "EDGE {} vs NB {}", edge.median_km, nb.median_km);
    assert!(edge.at_5km > nb.at_5km, "EDGE {} vs NB {}", edge.at_5km, nb.at_5km);
    assert!(edge.at_3km > nb.at_3km - 0.05, "EDGE {} vs NB {}", edge.at_3km, nb.at_3km);
}

#[test]
fn hyperlocal_covers_partially_but_edge_covers_more() {
    let d = dataset();
    let (train, test) = d.paper_split();
    let hl = HyperLocal::fit(train, HyperLocalParams::default());
    let hl_coverage = hl.evaluate_points(test).coverage;
    let edge = edge_report(&d, EdgeConfig::smoke());
    assert!(hl_coverage < 1.0, "Hyper-local must abstain sometimes");
    assert!(
        edge.coverage > hl_coverage,
        "EDGE coverage {} should exceed Hyper-local's {hl_coverage}",
        edge.coverage
    );
}

#[test]
fn ablations_degrade_the_full_model() {
    // Table IV's shape: the full model leads its ablations on @3km. One
    // seed at smoke scale is noisy, so we require EDGE to beat the *average*
    // ablation rather than each individually.
    let d = dataset();
    let full = edge_report(&d, EdgeConfig::smoke());
    let ablations = [
        edge_report(&d, EdgeConfig::smoke().ablation_no_gcn()),
        edge_report(&d, EdgeConfig::smoke().ablation_sum()),
        edge_report(&d, EdgeConfig::smoke().ablation_no_mixture()),
    ];
    let avg_at3 = ablations.iter().map(|r| r.at_3km).sum::<f64>() / ablations.len() as f64;
    assert!(
        full.at_3km > avg_at3,
        "full model @3km {} should beat the mean ablation {avg_at3}",
        full.at_3km
    );
    // NoMixture specifically collapses multi-modal predictions; the paper
    // shows it far behind the full model.
    assert!(
        full.at_3km > ablations[2].at_3km,
        "{} vs NoMixture {}",
        full.at_3km,
        ablations[2].at_3km
    );
}

#[test]
fn mixture_head_expresses_multimodality_where_nomixture_cannot() {
    let d = dataset();
    let (train, test) = d.paper_split();
    let ner = edge::data::dataset_recognizer(&d);
    let (full, _) =
        EdgeModel::train(train, ner, &d.bbox, EdgeConfig::smoke(), &TrainOptions::default())
            .expect("train");

    // Across covered test tweets, the full model frequently uses more than
    // one effective component (weight entropy > 0.2 nats).
    let mut multimodal = 0;
    let mut covered = 0;
    for t in test.iter().take(300) {
        if let Ok(r) = full.locate(&PredictRequest::text(&t.text), &Default::default()) {
            let p = r.prediction;
            covered += 1;
            if p.mixture.weight_entropy() > 0.2 {
                multimodal += 1;
            }
        }
    }
    assert!(covered > 150);
    assert!(
        multimodal * 5 > covered,
        "at least ~20% of predictions should be multi-modal: {multimodal}/{covered}"
    );
}
