//! Event-dynamics analysis (the paper's Section V-B scenario): track how
//! the spatial distribution of "quarantine" tweets evolves between two
//! COVID windows by predicting locations for keyword-filtered tweets.
//!
//! Run with: `cargo run --release -p edge --example covid_event_dynamics`

use edge::data::SimDate;
use edge::geo::{Grid, Heatmap};
use edge::prelude::*;

fn main() {
    println!("building the COVID-19 corpus (keyword-filtered NY 2020 crawl) ...");
    let dataset = edge::data::covid19(PresetSize::Smoke, 7);
    println!("  {} covid tweets\n", dataset.len());

    let (train, _) = dataset.paper_split();
    let ner = edge::data::dataset_recognizer(&dataset);
    println!("training EDGE on the training window ...");
    let (model, _) =
        EdgeModel::train(train, ner, &dataset.bbox, EdgeConfig::smoke(), &TrainOptions::default())
            .expect("train");

    // The two Figure-1 windows.
    let windows = [
        ("03/12 - 03/22", SimDate::new(2020, 3, 12), SimDate::new(2020, 3, 22)),
        ("03/22 - 04/02", SimDate::new(2020, 3, 22), SimDate::new(2020, 4, 2)),
    ];
    let grid = Grid::new(dataset.bbox, 50, 50);
    let mut maps = Vec::new();
    for (label, start, end) in windows {
        let quarantine: Vec<_> = dataset
            .window(start, end)
            .into_iter()
            .filter(|t| t.text.to_lowercase().contains("quarantine"))
            .collect();
        let predicted: Vec<Point> =
            quarantine.iter().filter_map(|t| model.predict_point(&t.text)).collect();
        let heat = Heatmap::from_points(grid.clone(), &predicted, 1.5);
        println!(
            "window {label}: {} quarantine tweets, {} predicted",
            quarantine.len(),
            predicted.len()
        );
        println!("{}", heat.render_ascii(50));
        maps.push((heat, predicted));
    }

    // Quantify the spreading the paper's Figure 1 narrates.
    let dispersion = |pts: &[Point]| {
        edge::geo::point::centroid(pts)
            .map(|c| pts.iter().map(|p| p.haversine_km(&c)).sum::<f64>() / pts.len() as f64)
            .unwrap_or(0.0)
    };
    let early = dispersion(&maps[0].1);
    let late = dispersion(&maps[1].1);
    println!("spatial dispersion: {early:.2} km (early) -> {late:.2} km (late)");
    println!("distribution similarity between windows: {:.3}", maps[0].0.similarity(&maps[1].0));
    if late > early {
        println!("=> the predicted quarantine conversation spread geographically, as in Figure 1");
    }
}
