//! Mini Table-III: train several methods on one corpus and print a
//! leaderboard with the paper's metrics.
//!
//! Run with: `cargo run --release -p edge --example compare_methods`

use edge::baselines::{Geolocator, HyperLocal, HyperLocalParams, KullbackLeibler, NaiveBayes};
use edge::geo::Grid;
use edge::prelude::*;

fn main() {
    let dataset = edge::data::nyma(PresetSize::Smoke, 17);
    let (train, test) = dataset.paper_split();
    println!("corpus: {} ({} train / {} test tweets)\n", dataset.name, train.len(), test.len());

    let mut rows: Vec<(String, DistanceReport)> = Vec::new();

    // Grid classifiers.
    let grid = || Grid::new(dataset.bbox, 50, 50);
    let nb = NaiveBayes::fit(train, grid());
    let kl = KullbackLeibler::fit(train, grid());
    let hl = HyperLocal::fit(train, HyperLocalParams::default());
    for model in [&nb as &dyn Geolocator, &kl, &hl] {
        if let Some(report) = model.evaluate_points(test).report() {
            rows.push((model.name().to_string(), report));
        }
    }

    // EDGE.
    println!("training EDGE ...");
    let ner = edge::data::dataset_recognizer(&dataset);
    let mut cfg = EdgeConfig::smoke();
    cfg.epochs = 40;
    cfg.embed_dim = 32;
    cfg.hidden_dim = 32;
    cfg.sgns.dim = 32;
    let (model, _) =
        EdgeModel::train(train, ner, &dataset.bbox, cfg, &TrainOptions::default()).expect("train");
    // EDGE scores through the very same `Geolocator` facade as the
    // baselines (blanket impl over `Predictor`).
    if let Some(report) = model.evaluate_points(test).report() {
        rows.push(("EDGE".to_string(), report));
    }

    // Leaderboard, best median first.
    rows.sort_by(|a, b| a.1.median_km.total_cmp(&b.1.median_km));
    println!(
        "\n{:<20} {:>9} {:>11} {:>8} {:>8} {:>9}",
        "method", "mean(km)", "median(km)", "@3km", "@5km", "coverage"
    );
    for (name, r) in &rows {
        println!(
            "{name:<20} {:>9.2} {:>11.2} {:>8.4} {:>8.4} {:>8.1}%",
            r.mean_km,
            r.median_km,
            r.at_3km,
            r.at_5km,
            r.coverage * 100.0
        );
    }
    println!("\nnote: methods with coverage < 100% are scored on their covered subset only");
}
