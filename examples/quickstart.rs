//! Quickstart: generate a corpus, train EDGE, predict a location mixture
//! and read the interpretability signals.
//!
//! Run with: `cargo run --release -p edge --example quickstart`

use edge::prelude::*;

fn main() {
    // 1. A synthetic New-York-like geo-tagged corpus (stands in for the
    //    paper's proprietary Twitter crawl; see DESIGN.md §1).
    println!("generating corpus ...");
    let dataset = edge::data::nyma(PresetSize::Smoke, 42);
    let (train, test) = dataset.paper_split();
    println!("  {} train tweets, {} test tweets\n", train.len(), test.len());

    // 2. Train EDGE end-to-end: entity2vec -> co-occurrence graph -> GCN
    //    diffusion -> attention -> Gaussian-mixture head (Eq. 13 loss).
    println!("training EDGE ...");
    let ner = edge::data::dataset_recognizer(&dataset);
    let config = EdgeConfig::smoke();
    let (model, report) =
        EdgeModel::train(train, ner, &dataset.bbox, config, &TrainOptions::default())
            .expect("train");
    println!(
        "  entities in graph: {} | training NLL: {:.3} -> {:.3}\n",
        model.entity_index().len(),
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap()
    );

    // 3. Predict. The output is a full mixture distribution (Eq. 6), a
    //    point estimate (Eq. 14), and per-entity attention weights.
    let opts = PredictOptions::default();
    let (tweet, prediction) = test
        .iter()
        .find_map(|t| {
            let response = model.locate(&PredictRequest::text(&t.text), &opts).ok()?;
            Some((t, response.prediction))
        })
        .expect("a covered test tweet");
    println!("tweet: \"{}\"", tweet.text);
    println!("true location:  ({:.4}, {:.4})", tweet.location.lat, tweet.location.lon);
    println!(
        "point estimate: ({:.4}, {:.4})  [{:.2} km off]",
        prediction.point.lat,
        prediction.point.lon,
        prediction.point.haversine_km(&tweet.location)
    );
    println!("\nwhich entities drove the prediction (attention):");
    for (entity, weight) in &prediction.attention {
        println!("  {entity:<28} {weight:.4}");
    }
    println!("\nmixture components (weight, mean):");
    for (weight, component) in prediction.mixture.iter() {
        println!(
            "  pi = {:.4}  mu = ({:.4}, {:.4})  sigma = ({:.4}, {:.4}) deg  rho = {:+.3}",
            weight,
            component.mu.lat,
            component.mu.lon,
            component.sigma_lat,
            component.sigma_lon,
            component.rho
        );
    }

    // 4. Evaluate with the paper's metrics.
    let outcome = model.evaluate(test, &opts);
    let metrics = outcome.report().expect("predictions");
    println!(
        "\ntest metrics: mean {:.2} km | median {:.2} km | @3km {:.3} | @5km {:.3} | coverage {:.1}%",
        metrics.mean_km,
        metrics.median_km,
        metrics.at_3km,
        metrics.at_5km,
        metrics.coverage * 100.0
    );
}
