//! Interpretability walk-through (the paper's Section V-A scenario):
//! predict the mixture for one non-geo-tagged tweet and unpack everything a
//! human analyst would look at — component weights, confidence ellipses,
//! attention over entities, and the diffused-neighbour explanation.
//!
//! Run with: `cargo run --release -p edge --example interpret_single_tweet`

use edge::prelude::*;

fn main() {
    let dataset = edge::data::covid19(PresetSize::Smoke, 3);
    let (train, test) = dataset.paper_split();
    let ner = edge::data::dataset_recognizer(&dataset);
    println!("training EDGE on {} covid tweets ...\n", train.len());
    let (model, _) =
        EdgeModel::train(train, ner, &dataset.bbox, EdgeConfig::smoke(), &TrainOptions::default())
            .expect("train");

    // A held-out quarantine tweet, like the paper's protest example.
    let (tweet, prediction) = test
        .iter()
        .filter(|t| t.text.to_lowercase().contains("quarantine"))
        .find_map(|t| {
            let response =
                model.locate(&PredictRequest::text(&t.text), &Default::default()).ok()?;
            Some((t, response.prediction))
        })
        .expect("a covered quarantine tweet");

    println!("tweet: \"{}\"\n", tweet.text);

    println!("step 1 - the recognizer found these entities:");
    for m in model.recognizer().recognize(&tweet.text) {
        println!("   {:<28} [{:?}]", m.surface, m.category);
    }

    println!("\nstep 2 - attention decided how much each known entity matters:");
    for (entity, weight) in &prediction.attention {
        let bar = "#".repeat((weight * 40.0) as usize);
        println!("   {entity:<28} {weight:.4} {bar}");
    }

    println!("\nstep 3 - the predicted mixture (Eq. 6), one line per component:");
    for (weight, g) in prediction.mixture.iter() {
        println!("   pi = {:.4}  centred at ({:.4}, {:.4})", weight, g.mu.lat, g.mu.lon);
        for conf in [0.75, 0.80, 0.85] {
            let e = g.confidence_ellipse(conf);
            println!(
                "      {:.0}% ellipse: {:.2} km x {:.2} km",
                conf * 100.0,
                e.semi_major * edge::geo::KM_PER_DEG_LAT,
                e.semi_minor * edge::geo::KM_PER_DEG_LAT
            );
        }
    }

    let (idx, w) = prediction.mixture.dominant_component();
    println!("\nstep 4 - reading the result: component {idx} holds {:.1}% of the mass;", w * 100.0);
    println!(
        "   mixture entropy {:.3} nats ({} modes worth of uncertainty)",
        prediction.mixture.weight_entropy(),
        prediction.mixture.weight_entropy().exp().round()
    );
    println!(
        "   point estimate (Eq. 14): ({:.4}, {:.4}) - true location was {:.2} km away",
        prediction.point.lat,
        prediction.point.lon,
        prediction.point.haversine_km(&tweet.location)
    );
}
