//! Track a venue-anchored event (the paper's Figure-9 scenario): predict
//! locations for tweets mentioning a Lower-East-Side music festival during
//! vs after the event and watch the cluster dissolve.
//!
//! Also demonstrates running a baseline (Hyper-local) on the same tweets
//! for comparison.
//!
//! Run with: `cargo run --release -p edge --example festival_tracking`

use edge::baselines::{HyperLocal, HyperLocalParams};
use edge::data::SimDate;
use edge::prelude::*;

fn main() {
    let dataset = edge::data::ny2020(PresetSize::Smoke, 5);
    let (train, _) = dataset.paper_split();
    let ner = edge::data::dataset_recognizer(&dataset);
    println!("training EDGE on the NY 2020 crawl ({} tweets) ...", train.len());
    let (model, _) =
        EdgeModel::train(train, ner, &dataset.bbox, EdgeConfig::smoke(), &TrainOptions::default())
            .expect("train");
    println!("fitting the Hyper-local baseline ...\n");
    let hyperlocal = HyperLocal::fit(train, HyperLocalParams::default());

    let venue_cluster = Point::new(40.7205, -73.9879);
    let windows = [
        ("during the festival (03/12-03/15)", SimDate::new(2020, 3, 12), SimDate::new(2020, 3, 16)),
        ("after the festival  (03/16-04/02)", SimDate::new(2020, 3, 16), SimDate::new(2020, 4, 2)),
    ];

    for (label, start, end) in windows {
        let mentions: Vec<_> = dataset
            .window(start, end)
            .into_iter()
            .filter(|t| t.text.to_lowercase().contains("new colossus festival"))
            .collect();

        let edge_points: Vec<Point> =
            mentions.iter().filter_map(|t| model.predict_point(&t.text)).collect();
        let hl_points: Vec<Point> =
            mentions.iter().filter_map(|t| hyperlocal.predict_point(&t.text)).collect();

        let mean_dist = |pts: &[Point]| -> Option<f64> {
            (!pts.is_empty()).then(|| {
                pts.iter().map(|p| p.haversine_km(&venue_cluster)).sum::<f64>() / pts.len() as f64
            })
        };
        println!("{label}: {} mentions", mentions.len());
        println!(
            "   EDGE       : {}/{} predicted, mean {:.2} km from the venue cluster",
            edge_points.len(),
            mentions.len(),
            mean_dist(&edge_points).unwrap_or(f64::NAN)
        );
        println!(
            "   Hyper-local: {}/{} predicted, mean {:.2} km from the venue cluster",
            hl_points.len(),
            mentions.len(),
            mean_dist(&hl_points).unwrap_or(f64::NAN)
        );
        println!();
    }
    println!("expected shape: tight clustering during the event, scatter afterwards;");
    println!("Hyper-local abstains on mentions that carry no geo-specific n-gram.");
}
