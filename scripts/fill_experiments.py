#!/usr/bin/env python3
"""Splices the regenerated results (results/*.txt) into EXPERIMENTS.md at the
<!-- *_MEASURED --> markers. Run after ./run_experiments.sh."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXP = ROOT / "EXPERIMENTS.md"

MARKERS = {
    "TABLE2_MEASURED": "table2.txt",
    "TABLE3_MEASURED": "table3.txt",
    "TABLE4_MEASURED": "table4.txt",
    "FIG1_MEASURED": "fig1.txt",
    "FIG5_MEASURED": "fig5.txt",
    "FIG6_MEASURED": "fig6.txt",
    "FIG7_MEASURED": "fig7.txt",
    "FIG8_MEASURED": "fig8.txt",
    "FIG9_MEASURED": "fig9.txt",
    "AUDIT_MEASURED": "audit.txt",
}

# Figures with large ASCII art: keep only the summary lines.
SUMMARY_ONLY = {
    "FIG1_MEASURED": r"(window|dispersion)",
    "FIG8_MEASURED": r"(window|burst|hottest)",
    "FIG9_MEASURED": r"^--",
}


def block_for(marker: str, path: pathlib.Path) -> str:
    text = path.read_text()
    if marker in SUMMARY_ONLY:
        pat = re.compile(SUMMARY_ONLY[marker])
        lines = [l for l in text.splitlines() if pat.search(l)]
        text = "\n".join(lines)
    return f"**Measured** (`{path.name}`):\n\n```text\n{text.rstrip()}\n```"


def main() -> None:
    content = EXP.read_text()
    for marker, fname in MARKERS.items():
        path = ROOT / "results" / fname
        if not path.exists():
            print(f"skip {marker}: {path} missing")
            continue
        tag = f"<!-- {marker} -->"
        if tag not in content:
            print(f"skip {marker}: marker not found")
            continue
        content = content.replace(tag, block_for(marker, path))
        print(f"filled {marker}")
    EXP.write_text(content)


if __name__ == "__main__":
    main()
