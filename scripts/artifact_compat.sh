#!/usr/bin/env bash
# Artifact compatibility gate: the legacy JSON envelope must stay readable,
# `fsck --upgrade` must migrate it to the zero-copy mapped layout in place,
# and a server loading the upgraded artifact must answer byte-for-byte what
# the legacy-envelope server answered (f32 migration is lossless).
#
# Usage: scripts/artifact_compat.sh
set -euo pipefail

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
cargo build --release -p edge-cli
BIN=target/release/edge-cli

echo "== train into the legacy JSON envelope =="
$BIN generate --preset nyma --size smoke --seed 11 --out "$WORKDIR/corpus.json"
$BIN train --data "$WORKDIR/corpus.json" --profile smoke --epochs 2 \
    --format legacy --out "$WORKDIR/model.json"
head -c 1 "$WORKDIR/model.json" | grep -q '{' || {
    echo "--format legacy must write a JSON envelope"; exit 1; }
$BIN fsck "$WORKDIR/model.json" | tee "$WORKDIR/fsck_legacy.txt"
if grep -Eq "^  meta .* OK$" "$WORKDIR/fsck_legacy.txt"; then
    echo "--format legacy must not write a section table"; exit 1
fi

serve_and_capture() {
    # serve_and_capture <model-path> <out-prefix>
    local addr=127.0.0.1:7982
    $BIN serve --model "$1" --addr "$addr" &
    SERVER_PID=$!
    for _ in $(seq 1 50); do
        if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
        sleep 0.2
    done
    python3 - "$WORKDIR/corpus.json" "$addr" "$2" <<'EOF'
import json, subprocess, sys

corpus = json.load(open(sys.argv[1]))
addr, prefix = sys.argv[2], sys.argv[3]
answered = 0
with open(prefix + ".responses", "wb") as sink:
    for t in corpus["tweets"][:120]:
        body = subprocess.run(
            ["curl", "-s", f"http://{addr}/predict",
             "-H", "Content-Type: application/json",
             "-d", json.dumps({"text": t["text"]})],
            check=True, capture_output=True).stdout
        sink.write(body + b"\n")
        if b'"point"' in body:
            answered += 1
assert answered > 0, "no covered tweets answered"
print(f"captured 120 responses ({answered} covered)")
EOF
    kill "$SERVER_PID"
    for _ in $(seq 1 50); do
        kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; break; }
        sleep 0.2
    done
    [ -z "$SERVER_PID" ] || { echo "server did not drain"; exit 1; }
}

echo "== serve the legacy envelope and capture response bytes =="
serve_and_capture "$WORKDIR/model.json" "$WORKDIR/legacy"

echo "== fsck --upgrade migrates the envelope in place =="
$BIN fsck "$WORKDIR/model.json" --upgrade | tee "$WORKDIR/fsck_upgraded.txt"
grep -Eq "^  meta .* OK$" "$WORKDIR/fsck_upgraded.txt" || {
    echo "upgraded artifact must carry a checked section table"; exit 1; }
head -c 8 "$WORKDIR/model.json" | grep -q "EDGEMAP1" || {
    echo "upgrade must rewrite to the mapped layout"; exit 1; }

echo "== serve the upgraded artifact and compare byte-for-byte =="
serve_and_capture "$WORKDIR/model.json" "$WORKDIR/upgraded"
cmp "$WORKDIR/legacy.responses" "$WORKDIR/upgraded.responses" || {
    echo "upgraded artifact changed served bytes"; exit 1; }

echo "== a quantizing upgrade to a separate path still serves =="
$BIN fsck "$WORKDIR/model.json" --upgrade --quantize f16 \
    --out "$WORKDIR/model_f16.edgemap"
# (buffered before grep: -q quitting early would EPIPE the fsck binary)
$BIN fsck "$WORKDIR/model_f16.edgemap" > "$WORKDIR/fsck_f16.txt"
grep -Eq "quant +f16$" "$WORKDIR/fsck_f16.txt" || {
    echo "quantizing upgrade must record its mode"; exit 1; }
serve_and_capture "$WORKDIR/model_f16.edgemap" "$WORKDIR/f16"
grep -q '"point"' "$WORKDIR/f16.responses" || {
    echo "f16 artifact answered no covered tweets"; exit 1; }

echo "artifact compat OK: legacy == upgraded, byte for byte"
