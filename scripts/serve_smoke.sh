#!/usr/bin/env bash
# Serve smoke gate: trains a tiny model, runs the real `edge-cli serve`
# binary in the background, and drives every endpoint with curl —
# /healthz, /predict (single and batch), /metrics, and a /reload that must
# reject a corrupted artifact while the old model keeps answering.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
cargo build --release -p edge-cli
BIN=target/release/edge-cli

echo "== train a tiny model =="
$BIN generate --preset nyma --size smoke --seed 7 --out "$WORKDIR/corpus.json"
$BIN train --data "$WORKDIR/corpus.json" --profile smoke --epochs 2 \
    --out "$WORKDIR/model.json"

ADDR=127.0.0.1:7979
echo "== start the server on $ADDR =="
$BIN serve --model "$WORKDIR/model.json" --addr "$ADDR" &
SERVER_PID=$!

# Wait for the socket to come up.
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
    sleep 0.2
done

echo "== /healthz =="
curl -sf "http://$ADDR/healthz" | tee "$WORKDIR/health.json"
python3 - "$WORKDIR/health.json" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["status"] == "ok", h
assert h["model"] == "EDGE", h
assert h["generation"] == "1", h
EOF

echo "== /predict: find a covered tweet and assert a non-empty mixture =="
python3 - "$WORKDIR/corpus.json" "$ADDR" <<'EOF'
import json, subprocess, sys

corpus = json.load(open(sys.argv[1]))
addr = sys.argv[2]
tweets = [t["text"] for t in corpus["tweets"]]

def post(path, payload):
    out = subprocess.run(
        ["curl", "-s", "-w", "\n%{http_code}", f"http://{addr}{path}",
         "-H", "Content-Type: application/json", "-d", json.dumps(payload)],
        check=True, capture_output=True, text=True).stdout
    body, status = out.rsplit("\n", 1)
    return int(status), json.loads(body)

# Single predictions until one tweet is covered.
covered = None
for text in tweets[:200]:
    status, body = post("/predict", {"text": text})
    assert status == 200, (status, body)
    if "point" in body:
        covered = text
        assert body["mixture"], "a prediction must carry a non-empty mixture"
        assert body["attention"], "and its attention weights"
        lat, lon = body["point"]["lat"], body["point"]["lon"]
        assert 40.0 < lat < 41.5 and -75.0 < lon < -73.0, body["point"]
        break
    assert body.get("error") == "no_entities", body
assert covered is not None, "no covered tweet in the first 200"

# The batch shape works and keeps per-text order.
status, body = post("/predict", {"texts": [covered, "zzz nothing here"]})
assert status == 200, (status, body)
results = body["results"]
assert len(results) == 2 and results[0]["mixture"], results
assert results[1].get("error") == "no_entities", results
print("predict OK:", covered[:60])
EOF

echo "== /metrics =="
# (body is buffered before grep: with pipefail, grep -q quitting at the
# first match can hand curl an EPIPE and fail the whole pipeline.)
curl -sf "http://$ADDR/metrics" > "$WORKDIR/metrics.txt"
grep -q "serve_requests_total" "$WORKDIR/metrics.txt" || {
    echo "metrics dump is missing serve counters"; exit 1; }

echo "== /reload rejects a corrupted artifact =="
# Flip the last byte: the mapped layout has no trailing padding, so the
# final byte always sits inside the last section's CRC-checked payload
# (a mid-file flip could land in meaningless inter-section page padding).
python3 - "$WORKDIR/model.json" <<'EOF'
import pathlib, sys
p = pathlib.Path(sys.argv[1] + ".corrupt")
b = bytearray(pathlib.Path(sys.argv[1]).read_bytes())
b[-1] ^= 0x20
p.write_bytes(bytes(b))
EOF
STATUS=$(curl -s -o "$WORKDIR/reload.json" -w '%{http_code}' \
    -d "{\"path\": \"$WORKDIR/model.json.corrupt\"}" "http://$ADDR/reload")
cat "$WORKDIR/reload.json"; echo
[ "$STATUS" = "422" ] || { echo "expected 422, got $STATUS"; exit 1; }
# The old model keeps serving.
curl -sf "http://$ADDR/healthz" > "$WORKDIR/health1.json"
grep -q '"generation":"1"' "$WORKDIR/health1.json" || {
    echo "rejected reload must not bump the generation"; exit 1; }

echo "== /reload swaps in a healthy artifact =="
STATUS=$(curl -s -o "$WORKDIR/reload2.json" -w '%{http_code}' \
    -d "{\"path\": \"$WORKDIR/model.json\"}" "http://$ADDR/reload")
cat "$WORKDIR/reload2.json"; echo
[ "$STATUS" = "200" ] || { echo "expected 200, got $STATUS"; exit 1; }
curl -sf "http://$ADDR/healthz" > "$WORKDIR/health2.json"
grep -q '"generation":"2"' "$WORKDIR/health2.json" || {
    echo "healthy reload must bump the generation"; exit 1; }

echo "== graceful shutdown on SIGTERM =="
kill "$SERVER_PID"
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; break; }
    sleep 0.2
done
[ -z "$SERVER_PID" ] || { echo "server did not drain on SIGTERM"; exit 1; }

echo "== two-shard routing: disjoint metros land on their own shard =="
$BIN generate --preset lama --size smoke --seed 8 --out "$WORKDIR/corpus2.json"
$BIN train --data "$WORKDIR/corpus2.json" --profile smoke --epochs 2 \
    --out "$WORKDIR/model2.json"

# Raise the fd ceiling before the server inherits it: the
# high-concurrency leg below holds thousands of sockets on both sides.
ulimit -n 65536 2>/dev/null || ulimit -n "$(ulimit -Hn)" || true
echo "   ulimit -n: $(ulimit -n)"

ADDR2=127.0.0.1:7980
$BIN serve --model "nyma=$WORKDIR/model.json" --model "lama=$WORKDIR/model2.json" \
    --addr "$ADDR2" &
SERVER_PID=$!
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR2/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "two-shard server died"; exit 1; }
    sleep 0.2
done

python3 - "$WORKDIR/corpus.json" "$WORKDIR/corpus2.json" "$ADDR2" <<'EOF'
import json, subprocess, sys

ny_corpus = json.load(open(sys.argv[1]))
la_corpus = json.load(open(sys.argv[2]))
addr = sys.argv[3]

def post(path, payload):
    out = subprocess.run(
        ["curl", "-s", "-w", "\n%{http_code}", f"http://{addr}{path}",
         "-H", "Content-Type: application/json", "-d", json.dumps(payload)],
        check=True, capture_output=True, text=True).stdout
    body, status = out.rsplit("\n", 1)
    return int(status), json.loads(body)

# Drive covered tweets from each metro: their entity sets are disjoint,
# so gazetteer affinity must route them to their own shard.
answered = 0
for corpus in (ny_corpus, la_corpus):
    for t in corpus["tweets"][:60]:
        status, body = post("/predict", {"text": t["text"]})
        assert status == 200, (status, body)
        if "point" in body:
            answered += 1
assert answered > 0, "no covered tweets in either metro"

metrics = subprocess.run(
    ["curl", "-sf", f"http://{addr}/metrics"],
    check=True, capture_output=True, text=True).stdout

def shard_value(name, shard):
    needle = f'{name}{{shard="{shard}"}}'
    for line in metrics.splitlines():
        if line.startswith(needle):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"missing {needle}")

ny = shard_value("serve_shard_texts_total", "nyma")
la = shard_value("serve_shard_texts_total", "lama")
assert ny > 0, f"nyma shard got no texts: {ny}"
assert la > 0, f"lama shard got no texts: {la}"
print(f"routing OK: nyma={ny:.0f} lama={la:.0f} texts")
EOF

echo "== high concurrency: 2k idle keep-alive connections =="
python3 - "$ADDR2" "$WORKDIR/corpus.json" <<'EOF'
import http.client, json, socket, sys, time

host, port = sys.argv[1].split(":")
port = int(port)
corpus = json.load(open(sys.argv[2]))
texts = [t["text"] for t in corpus["tweets"][:64]]

# Hold 2000 idle keep-alive connections. Transient connect failures
# (finite listen backlog) back off and retry.
herd, tries = [], 0
while len(herd) < 2000 and tries < 500:
    try:
        herd.append(socket.create_connection((host, port), timeout=5))
    except OSError:
        tries += 1
        time.sleep(0.01)
assert len(herd) >= 2000, f"only {len(herd)} connections held"
print(f"holding {len(herd)} idle keep-alive connections")

# Foreground traffic on one more connection while the herd sits idle.
conn = http.client.HTTPConnection(host, port, timeout=30)
for i in range(100):
    body = json.dumps({"texts": texts[(i * 8) % len(texts):][:8] or texts[:8]})
    conn.request("POST", "/predict", body,
                 {"Content-Type": "application/json"})
    resp = conn.getresponse()
    assert resp.status == 200, (resp.status, resp.read())
    resp.read()

conn.request("GET", "/metrics", headers={})
metrics = conn.getresponse().read().decode()

def shard_values(name):
    out = {}
    for line in metrics.splitlines():
        if line.startswith(name + "{"):
            labels, value = line.rsplit(" ", 1)
            shard = labels.split('shard="', 1)[1].split('"', 1)[0]
            out[shard] = float(value)
    return out

p99 = shard_values("serve_shard_request_us_p99")
shed = shard_values("serve_shard_shed_rate")
assert p99, "no per-shard p99 in the exposition"
for s, v in p99.items():
    assert 0 < v < 2_000_000, f"shard {s} p99 out of range under load: {v} us"
for s, v in shed.items():
    assert v == 0.0, f"shard {s} shed under idle-connection load: {v}"
print("per-shard p99 (us):", {s: round(v) for s, v in p99.items()},
      "shed:", shed)
for s in herd:
    s.close()
EOF

kill "$SERVER_PID"
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; break; }
    sleep 0.2
done
[ -z "$SERVER_PID" ] || { echo "two-shard server did not drain"; exit 1; }

echo "== fsck prints the mapped section table =="
$BIN fsck "$WORKDIR/model.json" | tee "$WORKDIR/fsck.txt"
for tag in meta params smoothed features adj; do
    grep -Eq "^  $tag .* OK\$" "$WORKDIR/fsck.txt" || {
        echo "fsck section table is missing an OK '$tag' row"; exit 1; }
done
grep -Eq "quant +none$" "$WORKDIR/fsck.txt" || {
    echo "fsck must report the quantization mode"; exit 1; }

echo "== quantized serving: int8 artifact trains, verifies, and answers =="
$BIN train --data "$WORKDIR/corpus.json" --profile smoke --epochs 2 \
    --quantize int8 --out "$WORKDIR/model_int8.edgemap"
$BIN fsck "$WORKDIR/model_int8.edgemap" | tee "$WORKDIR/fsck_int8.txt"
grep -Eq "quant +int8$" "$WORKDIR/fsck_int8.txt" || {
    echo "int8 artifact must fsck as int8"; exit 1; }
grep -Eq "^  scales .* OK\$" "$WORKDIR/fsck_int8.txt" || {
    echo "int8 artifact must carry a per-row scales section"; exit 1; }

ADDR3=127.0.0.1:7981
$BIN serve --model "$WORKDIR/model_int8.edgemap" --addr "$ADDR3" \
    --cache-lsh-bits 16 --cache-hamming-max 2 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR3/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "int8 server died"; exit 1; }
    sleep 0.2
done
python3 - "$WORKDIR/corpus.json" "$ADDR3" <<'EOF'
import json, subprocess, sys

corpus = json.load(open(sys.argv[1]))
addr = sys.argv[2]

def post(payload):
    out = subprocess.run(
        ["curl", "-s", "-w", "\n%{http_code}", f"http://{addr}/predict",
         "-H", "Content-Type: application/json", "-d", json.dumps(payload)],
        check=True, capture_output=True, text=True).stdout
    body, status = out.rsplit("\n", 1)
    return int(status), json.loads(body)

covered = 0
for t in corpus["tweets"][:200]:
    status, body = post({"text": t["text"]})
    assert status == 200, (status, body)
    if "point" in body:
        covered += 1
        lat, lon = body["point"]["lat"], body["point"]["lon"]
        assert 40.0 < lat < 41.5 and -75.0 < lon < -73.0, body["point"]
assert covered > 0, "int8 server answered no covered tweets"
print(f"int8 serving OK: {covered} covered predictions")
EOF
kill "$SERVER_PID"
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; break; }
    sleep 0.2
done
[ -z "$SERVER_PID" ] || { echo "int8 server did not drain"; exit 1; }

echo "serve smoke OK"
