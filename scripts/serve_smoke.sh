#!/usr/bin/env bash
# Serve smoke gate: trains a tiny model, runs the real `edge-cli serve`
# binary in the background, and drives every endpoint with curl —
# /healthz, /predict (single and batch), /metrics, and a /reload that must
# reject a corrupted artifact while the old model keeps answering.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
cargo build --release -p edge-cli
BIN=target/release/edge-cli

echo "== train a tiny model =="
$BIN generate --preset nyma --size smoke --seed 7 --out "$WORKDIR/corpus.json"
$BIN train --data "$WORKDIR/corpus.json" --profile smoke --epochs 2 \
    --out "$WORKDIR/model.json"

ADDR=127.0.0.1:7979
echo "== start the server on $ADDR =="
$BIN serve --model "$WORKDIR/model.json" --addr "$ADDR" &
SERVER_PID=$!

# Wait for the socket to come up.
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
    sleep 0.2
done

echo "== /healthz =="
curl -sf "http://$ADDR/healthz" | tee "$WORKDIR/health.json"
python3 - "$WORKDIR/health.json" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["status"] == "ok", h
assert h["model"] == "EDGE", h
assert h["generation"] == "1", h
EOF

echo "== /predict: find a covered tweet and assert a non-empty mixture =="
python3 - "$WORKDIR/corpus.json" "$ADDR" <<'EOF'
import json, subprocess, sys

corpus = json.load(open(sys.argv[1]))
addr = sys.argv[2]
tweets = [t["text"] for t in corpus["tweets"]]

def post(path, payload):
    out = subprocess.run(
        ["curl", "-s", "-w", "\n%{http_code}", f"http://{addr}{path}",
         "-H", "Content-Type: application/json", "-d", json.dumps(payload)],
        check=True, capture_output=True, text=True).stdout
    body, status = out.rsplit("\n", 1)
    return int(status), json.loads(body)

# Single predictions until one tweet is covered.
covered = None
for text in tweets[:200]:
    status, body = post("/predict", {"text": text})
    assert status == 200, (status, body)
    if "point" in body:
        covered = text
        assert body["mixture"], "a prediction must carry a non-empty mixture"
        assert body["attention"], "and its attention weights"
        lat, lon = body["point"]["lat"], body["point"]["lon"]
        assert 40.0 < lat < 41.5 and -75.0 < lon < -73.0, body["point"]
        break
    assert body.get("error") == "no_entities", body
assert covered is not None, "no covered tweet in the first 200"

# The batch shape works and keeps per-text order.
status, body = post("/predict", {"texts": [covered, "zzz nothing here"]})
assert status == 200, (status, body)
results = body["results"]
assert len(results) == 2 and results[0]["mixture"], results
assert results[1].get("error") == "no_entities", results
print("predict OK:", covered[:60])
EOF

echo "== /metrics =="
curl -sf "http://$ADDR/metrics" | grep -q "serve_requests_total" || {
    echo "metrics dump is missing serve counters"; exit 1; }

echo "== /reload rejects a corrupted artifact =="
python3 - "$WORKDIR/model.json" <<'EOF'
import pathlib, sys
p = pathlib.Path(sys.argv[1] + ".corrupt")
b = bytearray(pathlib.Path(sys.argv[1]).read_bytes())
b[len(b) // 2] ^= 0x20
p.write_bytes(bytes(b))
EOF
STATUS=$(curl -s -o "$WORKDIR/reload.json" -w '%{http_code}' \
    -d "{\"path\": \"$WORKDIR/model.json.corrupt\"}" "http://$ADDR/reload")
cat "$WORKDIR/reload.json"; echo
[ "$STATUS" = "422" ] || { echo "expected 422, got $STATUS"; exit 1; }
# The old model keeps serving.
curl -sf "http://$ADDR/healthz" | grep -q '"generation":"1"' || {
    echo "rejected reload must not bump the generation"; exit 1; }

echo "== /reload swaps in a healthy artifact =="
STATUS=$(curl -s -o "$WORKDIR/reload2.json" -w '%{http_code}' \
    -d "{\"path\": \"$WORKDIR/model.json\"}" "http://$ADDR/reload")
cat "$WORKDIR/reload2.json"; echo
[ "$STATUS" = "200" ] || { echo "expected 200, got $STATUS"; exit 1; }
curl -sf "http://$ADDR/healthz" | grep -q '"generation":"2"' || {
    echo "healthy reload must bump the generation"; exit 1; }

echo "== graceful shutdown on SIGTERM =="
kill "$SERVER_PID"
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; break; }
    sleep 0.2
done
[ -z "$SERVER_PID" ] || { echo "server did not drain on SIGTERM"; exit 1; }

echo "serve smoke OK"
