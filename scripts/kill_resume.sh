#!/usr/bin/env bash
# Kill-resume crash test: SIGKILL an `edge-cli train` run as soon as it has
# written a checkpoint, resume it, and require the final model to be
# byte-identical to an uninterrupted reference run.
#
# Usage: scripts/kill_resume.sh  (expects a release edge-cli; override with
# EDGE_CLI=path/to/edge-cli)
set -euo pipefail

BIN=${EDGE_CLI:-target/release/edge-cli}
if [ ! -x "$BIN" ]; then
    echo "building edge-cli ..."
    cargo build --release -p edge-cli
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$BIN" generate --preset nyma --size smoke --seed 7 --out "$WORK/corpus.json"

# Reference: one uninterrupted run.
"$BIN" train --data "$WORK/corpus.json" --profile smoke --epochs 6 \
    --out "$WORK/reference.json"

# Victim: checkpoints every epoch; SIGKILLed the moment a checkpoint lands.
"$BIN" train --data "$WORK/corpus.json" --profile smoke --epochs 6 \
    --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1 \
    --out "$WORK/resumed.json" &
pid=$!
for _ in $(seq 1 600); do
    if compgen -G "$WORK/ckpt/ckpt-*.edge" > /dev/null; then break; fi
    kill -0 "$pid" 2>/dev/null || break # finished before we could kill it
    sleep 0.05
done
if kill -0 "$pid" 2>/dev/null; then
    kill -9 "$pid"
    echo "SIGKILLed training (pid $pid) mid-run"
fi
wait "$pid" 2>/dev/null || true

# Every checkpoint that survived the kill must verify end to end — a torn
# write may never surface as a readable file.
for f in "$WORK"/ckpt/ckpt-*.edge; do
    "$BIN" fsck "$f"
done

# Resume and finish the interrupted run.
"$BIN" train --data "$WORK/corpus.json" --profile smoke --epochs 6 \
    --checkpoint-dir "$WORK/ckpt" --checkpoint-every 1 --resume \
    --out "$WORK/resumed.json"

cmp "$WORK/reference.json" "$WORK/resumed.json"
echo "kill-resume OK: resumed model is byte-identical to the reference"
