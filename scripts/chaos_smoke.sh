#!/usr/bin/env bash
# Chaos smoke gate: two layers of fault-matrix coverage.
#
# 1. The in-process chaos harness (`edge-bench --bin chaos`): torn
#    frames, slow-loris, stalled readers, worker stalls, queue bursts,
#    corrupt-reload storms, and a forced brownout ladder against one
#    live server, exiting non-zero on any invariant violation.
# 2. The real `edge-cli serve` binary as a separate process: raw-socket
#    fault traffic from outside (garbage frames, truncated bodies,
#    oversized bodies, a slow-loris drip), then SIGTERM mid-load — the
#    process must drain and exit cleanly while faults are in flight.
#
# Usage: scripts/chaos_smoke.sh
set -euo pipefail

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
cargo build --release -p edge-cli -p edge-bench

echo "== in-process chaos harness =="
cargo run --release -p edge-bench --bin chaos -- --size smoke
python3 - <<'EOF'
import json
out = json.load(open("results/BENCH_chaos.json"))
legs = {l["leg"]: l for l in out["legs"]}
expected = {"baseline", "torn-frames", "slow-loris", "stalled-reader",
            "worker-stall", "queue-burst", "reload-storm",
            "brownout-ladder", "wedge-check", "global"}
assert set(legs) == expected, set(legs)
assert out["total_violations"] == 0, \
    [v for l in out["legs"] for v in l["violations"]]
assert out["recovery_secs"] < 10.0, out["recovery_secs"]
assert out["p99_ok_us"] < out["deadline_us"], out["p99_ok_us"]
print(f"chaos harness OK: {sum(l['events'] for l in out['legs'])} events, "
      f"recovery {out['recovery_secs']:.2f}s, "
      f"p99 {out['p99_ok_us']:.0f}us")
EOF

BIN=target/release/edge-cli
echo "== train a tiny model =="
$BIN generate --preset nyma --size smoke --seed 7 --out "$WORKDIR/corpus.json"
$BIN train --data "$WORKDIR/corpus.json" --profile smoke --epochs 2 \
    --out "$WORKDIR/model.json"

ADDR=127.0.0.1:7981
echo "== start the real server on $ADDR (tight read budget) =="
$BIN serve --model "$WORKDIR/model.json" --addr "$ADDR" \
    --default-deadline-us 2000000 --max-body-bytes 65536 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
    sleep 0.2
done

echo "== external fault traffic against the live process =="
python3 - "$ADDR" "$WORKDIR/corpus.json" <<'EOF'
import json, socket, sys, time

host, port = sys.argv[1].rsplit(":", 1)
port = int(port)
corpus = json.load(open(sys.argv[2]))
text = corpus["tweets"][0]["text"]

def raw(payload, half_close=False, wait=3.0):
    s = socket.create_connection((host, port), timeout=wait)
    s.sendall(payload)
    if half_close:
        s.shutdown(socket.SHUT_WR)
    s.settimeout(wait)
    chunks = []
    try:
        while True:
            b = s.recv(4096)
            if not b:
                break
            chunks.append(b)
    except socket.timeout:
        pass
    s.close()
    return b"".join(chunks).decode(errors="replace")

def status(rawtext):
    try:
        return int(rawtext.split(" ", 2)[1])
    except (IndexError, ValueError):
        return None

# Garbage request line: a typed error or a clean close, never a hang.
# ("NOT HTTP AT ALL" frames as method "NOT" + path "HTTP", so it routes
# to a typed 404 rather than a parse-level 400 — both are fine.)
r = raw(b"NOT HTTP AT ALL\r\n\r\n")
assert r == "" or status(r) in (400, 404), r[:200]

# Truncated body: the server must just close on EOF.
r = raw(b"POST /predict HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"tex",
        half_close=True)
assert r == "" or status(r) is not None, r[:200]

# Declared body over --max-body-bytes: typed 413 before reading it.
r = raw(b"POST /predict HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n")
assert status(r) == 413 and "payload_too_large" in r, r[:200]

# Malformed X-Deadline-Us: typed 400.
body = json.dumps({"text": text}).encode()
req = (b"POST /predict HTTP/1.1\r\nX-Deadline-Us: soonish\r\n"
       b"Content-Length: %d\r\n\r\n" % len(body)) + body
assert status(raw(req)) == 400

# Slow-loris: drip one byte at a time; the read budget must cut us off
# well before the request completes.
s = socket.create_connection((host, port), timeout=10)
s.settimeout(10)
t0 = time.time()
cut = False
try:
    for b in b"POST /predict HTTP/1.1\r\n" * 8:
        s.sendall(bytes([b]))
        time.sleep(0.05)
except (BrokenPipeError, ConnectionResetError, socket.timeout):
    cut = True
s.close()
assert cut or time.time() - t0 < 8.0, "slow-loris was never cut off"

# The server took all of that and still answers normally.
req = (b"POST /predict HTTP/1.1\r\nContent-Type: application/json\r\n"
       b"Content-Length: %d\r\n\r\n" % len(body)) + body
assert status(raw(req)) == 200
print("external fault traffic OK")
EOF

echo "== /metrics exposes the robustness counters =="
curl -sf "http://$ADDR/metrics" > "$WORKDIR/metrics.txt"
grep -q 'serve_mode' "$WORKDIR/metrics.txt" || {
    echo "metrics dump is missing the brownout mode gauge"; exit 1; }

echo "== SIGTERM mid-load drains cleanly =="
# Keep real traffic in flight while the signal lands.
( for _ in $(seq 1 50); do
    curl -s -o /dev/null -d '{"text":"load"}' "http://$ADDR/predict" || true
  done ) &
LOAD_PID=$!
sleep 0.2
kill "$SERVER_PID"
for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; break; }
    sleep 0.2
done
[ -z "$SERVER_PID" ] || { echo "server did not drain on SIGTERM"; exit 1; }
wait "$LOAD_PID" 2>/dev/null || true

echo "chaos smoke OK"
