#!/usr/bin/env bash
# Observability smoke gate: runs the real `edge-cli serve` binary and checks
# the request-scoped observability surface end to end —
#   * every response (including errors) carries an X-Request-Id, and a
#     client-supplied id is echoed back;
#   * /metrics is valid OpenMetrics (parsed by the in-repo parser via
#     `edge-cli top`), labeled, with quantiles, and the right Content-Type;
#   * /debug/requests replays recent requests with monotone ids and sane
#     per-stage timings;
#   * --slow-request-us logs slow requests as JSONL on stderr;
#   * a server with an impossible SLO target degrades its /healthz.
#
# Usage: scripts/obs_smoke.sh
set -euo pipefail

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build =="
cargo build --release -p edge-cli
BIN=target/release/edge-cli

echo "== train a tiny model =="
$BIN generate --preset nyma --size smoke --seed 11 --out "$WORKDIR/corpus.json"
$BIN train --data "$WORKDIR/corpus.json" --profile smoke --epochs 2 \
    --out "$WORKDIR/model.json"

ADDR=127.0.0.1:7993
echo "== start the server on $ADDR (slow-request log armed) =="
$BIN serve --model "$WORKDIR/model.json" --addr "$ADDR" \
    --slow-request-us 1 2>"$WORKDIR/server.stderr" &
SERVER_PID=$!
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
    sleep 0.2
done

echo "== 200 requests; every response must carry an X-Request-Id =="
python3 - "$WORKDIR/corpus.json" "$ADDR" <<'EOF'
import http.client, json, sys

corpus = json.load(open(sys.argv[1]))
texts = [t["text"] for t in corpus["tweets"]][:200]
conn = http.client.HTTPConnection(sys.argv[2], timeout=30)

ids = []
for i, text in enumerate(texts):
    conn.request("POST", "/predict", json.dumps({"text": text}),
                 {"Content-Type": "application/json"})
    resp = conn.getresponse()
    resp.read()
    assert resp.status == 200, (i, resp.status)
    rid = resp.getheader("X-Request-Id")
    assert rid, f"request {i} came back without an X-Request-Id"
    ids.append(rid)
assert len(set(ids)) == len(ids), "minted request ids must be unique"

# A client-supplied id is echoed verbatim.
conn.request("POST", "/predict", json.dumps({"text": texts[0]}),
             {"Content-Type": "application/json", "X-Request-Id": "smoke-42"})
resp = conn.getresponse(); resp.read()
assert resp.getheader("X-Request-Id") == "smoke-42", resp.getheader("X-Request-Id")

# Even a 404 carries one.
conn.request("GET", "/nope")
resp = conn.getresponse(); resp.read()
assert resp.status == 404 and resp.getheader("X-Request-Id"), resp.status
conn.close()
print("request ids OK: 200 unique ids, echo and 404 covered")
EOF

echo "== /metrics parses as OpenMetrics (in-repo parser via edge-cli top) =="
$BIN top --addr "$ADDR" --iters 2 --interval-ms 200
curl -sfi "http://$ADDR/metrics" -o "$WORKDIR/metrics.raw"
grep -qi "content-type: application/openmetrics-text" "$WORKDIR/metrics.raw" || {
    echo "wrong /metrics Content-Type"; exit 1; }
tail -1 "$WORKDIR/metrics.raw" | grep -q "# EOF" || {
    echo "/metrics must end with # EOF"; exit 1; }
grep -q 'serve_http_requests_total{endpoint="predict",status="200"}' \
    "$WORKDIR/metrics.raw" || { echo "missing labeled request counter"; exit 1; }
grep -q 'serve_request_us_p99' "$WORKDIR/metrics.raw" || {
    echo "missing p99 quantile gauge"; exit 1; }

echo "== /debug/requests replays recent records =="
curl -sf "http://$ADDR/debug/requests?n=100" -o "$WORKDIR/debug.json"
python3 - "$WORKDIR/debug.json" <<'EOF'
import json, sys
reqs = json.load(open(sys.argv[1]))["requests"]
assert len(reqs) > 0, "ring came back empty"
predicts = [r for r in reqs if r["endpoint"] == "predict"]
assert predicts, "no predict records in the ring"
ids = [r["id"] for r in reqs]
assert ids == sorted(ids), "ring replay must be in request order"
for r in predicts:
    assert r["status"] == 200, r
    stages = r["stage_us"]
    assert set(stages) == {"parse", "queue", "batch", "inference", "serialize"}, r
    # Stage decomposition must not exceed the end-to-end latency (small
    # slack for clock quantization).
    assert sum(stages.values()) <= r["total_us"] * 1.05 + 50, r
print(f"debug ring OK: {len(reqs)} records, {len(predicts)} predicts")
EOF

echo "== slow-request log wrote JSONL to stderr =="
grep -q '"stage_us"' "$WORKDIR/server.stderr" || {
    echo "--slow-request-us 1 must log every request"; exit 1; }

kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

ADDR=127.0.0.1:7994
echo "== a server with an impossible SLO target degrades /healthz =="
$BIN serve --model "$WORKDIR/model.json" --addr "$ADDR" --slo-p99-us 1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
    sleep 0.2
done
for _ in $(seq 1 10); do
    curl -sf -d '{"text": "smoke"}' "http://$ADDR/predict" >/dev/null
done
curl -sf "http://$ADDR/healthz" | tee "$WORKDIR/health.json"; echo
grep -q '"status":"degraded"' "$WORKDIR/health.json" || {
    echo "healthz must report degraded when the error budget burns"; exit 1; }
# (buffered before grep: with pipefail, grep -q quitting at the first
# match can hand curl an EPIPE and fail the whole pipeline.)
curl -sf "http://$ADDR/metrics" > "$WORKDIR/metrics_degraded.txt"
grep -q 'serve_slo_degraded 1' "$WORKDIR/metrics_degraded.txt" || {
    echo "metrics must expose the degraded flag"; exit 1; }
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

echo "obs smoke OK"
