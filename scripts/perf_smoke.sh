#!/usr/bin/env bash
# Perf smoke gate for the zero-allocation training hot path.
#
# 1. Runs the counting-allocator test: a steady-state training batch must
#    perform exactly zero heap allocations.
# 2. Runs the smoke pipeline bench with alloc-stats compiled in and checks
#    the speedup legs: every arena leg reports 0 allocations per batch, the
#    fresh-alloc reference leg reports plenty, and the pooled train loop has
#    not regressed past 1.2x the fresh-alloc leg measured in the same run
#    (a same-machine baseline, so the gate is load-independent).
#
# Usage: scripts/perf_smoke.sh
set -euo pipefail

echo "== zero-allocation steady state =="
cargo test --release -p edge-core --features alloc-stats --test zero_alloc \
    -- --test-threads=1

echo "== speedup legs =="
cargo run --release -p edge-bench --features alloc-stats --bin bench_pipeline \
    -- --size smoke

python3 - <<'EOF'
import json

out = json.load(open("results/BENCH_pipeline.json"))
legs = {l["label"]: l for l in out["edge_speedup"]["legs"]}
assert set(legs) == {
    "serial (1 thread)", "spawn-per-call", "fresh-alloc (no arena)",
    "persistent pool", "scalar kernels",
}, sorted(legs)

for label in ("serial (1 thread)", "spawn-per-call", "persistent pool",
              "scalar kernels"):
    allocs = legs[label]["allocs_per_batch"]
    assert allocs == 0, f"{label}: {allocs} allocations per steady-state batch"
fresh = legs["fresh-alloc (no arena)"]
assert fresh["allocs_per_batch"] > 0, "counting allocator measured nothing"

pooled_secs = legs["persistent pool"]["train_secs"]
fresh_secs = fresh["train_secs"]
assert pooled_secs <= 1.2 * fresh_secs, (
    f"arena train loop regressed: {pooled_secs:.2f}s pooled vs "
    f"{fresh_secs:.2f}s fresh-alloc baseline"
)
print(f"perf smoke OK: 0 allocs/batch on arena legs "
      f"({fresh['allocs_per_batch']} fresh), "
      f"arena speedup {out['edge_speedup']['arena_speedup']:.2f}x")
EOF
