#!/bin/bash
# Regenerates every table and figure at Default scale (EXPERIMENTS.md runs).
set -e
cd /root/repo
cargo build --release -p edge-bench --bins 2>/dev/null
for bin in table2 audit fig1 fig7 fig8 fig9 fig5; do
  echo "=== $bin ==="
  ./target/release/$bin --size default 2>&1 | tail -4
done
echo "=== fig6 (2 seeds) ==="
./target/release/fig6 --size default --seeds 2 2>&1 | tail -3
for bin in table3 table4; do
  echo "=== $bin (3 seeds) ==="
  ./target/release/$bin --size default --seeds 3 2>&1 | tail -3
done
echo ALL_EXPERIMENTS_DONE
