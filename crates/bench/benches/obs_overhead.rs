//! Overhead of the observability layer on its hot paths, with each subsystem
//! disabled (the default — must be a branch on a relaxed load, i.e. within
//! noise of the baseline) and enabled (a relaxed atomic op).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_counter_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_counter");
    group.bench_function("baseline_add", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(black_box(1));
            black_box(x)
        });
    });
    edge_obs::set_metrics_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| edge_obs::counter!("bench.overhead.counter").inc(black_box(1)));
    });
    edge_obs::set_metrics_enabled(true);
    group.bench_function("enabled", |b| {
        b.iter(|| edge_obs::counter!("bench.overhead.counter").inc(black_box(1)));
    });
    edge_obs::set_metrics_enabled(false);
    group.finish();
}

fn bench_histogram_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_histogram");
    edge_obs::set_metrics_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| edge_obs::histogram!("bench.overhead.histogram").record(black_box(3.5)));
    });
    edge_obs::set_metrics_enabled(true);
    group.bench_function("enabled", |b| {
        b.iter(|| edge_obs::histogram!("bench.overhead.histogram").record(black_box(3.5)));
    });
    edge_obs::set_metrics_enabled(false);
    group.finish();
}

/// The labeled hot path: a pre-resolved family cell must cost the same as
/// a bare counter (one relaxed atomic add) — resolution happens once, not
/// per increment. The `resolve_each_inc` leg shows why pre-resolution
/// matters: it pays the family lock + label lookup every time.
fn bench_labeled_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_labeled");
    edge_obs::set_metrics_enabled(true);
    let cell = edge_obs::labels::counter_family("bench_overhead_labeled", "bench scratch")
        .with(&[("endpoint", "predict"), ("status", "200")]);
    group.bench_function("preresolved_inc", |b| {
        b.iter(|| cell.inc(black_box(1)));
    });
    group.bench_function("resolve_each_inc", |b| {
        b.iter(|| {
            edge_obs::labels::counter_family("bench_overhead_labeled", "bench scratch")
                .with(black_box(&[("endpoint", "predict"), ("status", "200")]))
                .inc(1)
        });
    });
    edge_obs::set_metrics_enabled(false);
    group.finish();
}

/// The request ring's push is on every request's exit path; it must stay a
/// handful of relaxed stores behind a seqlock, never a lock or allocation.
fn bench_ring_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_ring");
    let ring = edge_obs::RequestRing::new(1024);
    let record = edge_obs::RequestRecord {
        id: 7,
        endpoint: "predict",
        status: 200,
        batch: 32,
        cache_hits: 3,
        stage_us: [12, 80, 5, 150, 9],
        total_us: 260,
    };
    group.bench_function("push", |b| {
        b.iter(|| ring.push(black_box(record)));
    });
    group.bench_function("push_and_read_64", |b| {
        b.iter(|| {
            ring.push(black_box(record));
            black_box(ring.recent(64).len())
        });
    });
    group.finish();
}

fn bench_span_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_span");
    edge_obs::set_trace_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let _span = edge_obs::span(black_box("bench.overhead.span"));
        });
    });
    edge_obs::set_trace_enabled(true);
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let _span = edge_obs::span(black_box("bench.overhead.span"));
        });
        // Enabled spans append to the global trace; keep it bounded.
        edge_obs::trace::reset();
    });
    edge_obs::set_trace_enabled(false);
    edge_obs::trace::reset();
    group.finish();
}

criterion_group!(
    benches,
    bench_counter_overhead,
    bench_histogram_overhead,
    bench_labeled_overhead,
    bench_ring_overhead,
    bench_span_overhead
);
criterion_main!(benches);
