//! Overhead of the observability layer on its hot paths, with each subsystem
//! disabled (the default — must be a branch on a relaxed load, i.e. within
//! noise of the baseline) and enabled (a relaxed atomic op).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_counter_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_counter");
    group.bench_function("baseline_add", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(black_box(1));
            black_box(x)
        });
    });
    edge_obs::set_metrics_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| edge_obs::counter!("bench.overhead.counter").inc(black_box(1)));
    });
    edge_obs::set_metrics_enabled(true);
    group.bench_function("enabled", |b| {
        b.iter(|| edge_obs::counter!("bench.overhead.counter").inc(black_box(1)));
    });
    edge_obs::set_metrics_enabled(false);
    group.finish();
}

fn bench_histogram_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_histogram");
    edge_obs::set_metrics_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| edge_obs::histogram!("bench.overhead.histogram").record(black_box(3.5)));
    });
    edge_obs::set_metrics_enabled(true);
    group.bench_function("enabled", |b| {
        b.iter(|| edge_obs::histogram!("bench.overhead.histogram").record(black_box(3.5)));
    });
    edge_obs::set_metrics_enabled(false);
    group.finish();
}

fn bench_span_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_span");
    edge_obs::set_trace_enabled(false);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let _span = edge_obs::span(black_box("bench.overhead.span"));
        });
    });
    edge_obs::set_trace_enabled(true);
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let _span = edge_obs::span(black_box("bench.overhead.span"));
        });
        // Enabled spans append to the global trace; keep it bounded.
        edge_obs::trace::reset();
    });
    edge_obs::set_trace_enabled(false);
    edge_obs::trace::reset();
    group.finish();
}

criterion_group!(benches, bench_counter_overhead, bench_histogram_overhead, bench_span_overhead);
criterion_main!(benches);
