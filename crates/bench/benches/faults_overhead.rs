//! Overhead of the fault-injection layer on production paths. With no
//! failpoint armed (the production configuration) a `failpoint!` is one
//! relaxed atomic load and a branch — it must sit within noise of the
//! baseline. With the registry armed-but-`off` the named lookup runs, which
//! is the price only fault-injection runs pay.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn check_site() -> std::io::Result<u64> {
    edge_faults::failpoint!("bench.overhead.site");
    Ok(black_box(1u64))
}

fn bench_failpoint_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults_failpoint");
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(Ok::<u64, std::io::Error>(black_box(1u64))));
    });
    edge_faults::clear();
    group.bench_function("inactive", |b| {
        b.iter(|| black_box(check_site()));
    });
    // Armed registry, but this site set to `off`: the hash lookup runs.
    edge_faults::configure("bench.overhead.site", "off").unwrap();
    group.bench_function("armed_off", |b| {
        b.iter(|| black_box(check_site()));
    });
    edge_faults::clear();
    group.finish();
}

fn bench_fired_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults_fired");
    edge_faults::clear();
    group.bench_function("inactive", |b| {
        b.iter(|| black_box(edge_faults::fired(black_box("bench.overhead.fired"))));
    });
    group.finish();
}

criterion_group!(benches, bench_failpoint_overhead, bench_fired_overhead);
criterion_main!(benches);
