//! End-to-end benches, one per reproduced table: how long each table's
//! underlying computation takes at smoke scale. `table3/<method>` times one
//! train+evaluate cycle per comparison method; `table2/stats` and
//! `audit/full` time the dataset-statistics passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use edge_bench::{run_method, HarnessConfig};
use edge_data::{audit_entities, dataset_recognizer, nyma, table_two_row, PresetSize};

fn bench_table2(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 1);
    let ner = dataset_recognizer(&d);
    c.bench_function("table2/stats", |b| {
        b.iter(|| black_box(table_two_row(&d, &ner)));
    });
}

fn bench_table3_methods(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 2);
    let config = HarnessConfig::smoke();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for method in [
        "LocKDE",
        "NaiveBayes",
        "Kullback-Leibler",
        "NaiveBayes_kde2d",
        "Hyper-local",
        "UnicodeCNN",
        "EDGE",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(method), &method, |b, &m| {
            b.iter(|| black_box(run_method(&d, m, &config)));
        });
    }
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 3);
    let ner = dataset_recognizer(&d);
    c.bench_function("audit/full", |b| {
        b.iter(|| black_box(audit_entities(&d, &ner, 0)));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_table2, bench_table3_methods, bench_audit
);
criterion_main!(benches);
