//! Micro-benchmarks for the load-bearing computational kernels: dense and
//! sparse matrix products, the SGNS training step, KDE grid smoothing,
//! mixture density/mode queries, haversine batches and the attention
//! forward pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use edge_embed::{train_sgns, SgnsConfig};
use edge_geo::{BivariateGaussian, GaussianMixture, Grid, Kde2d, Point};
use edge_graph::{normalized_adjacency_triplets, EntityGraph};
use edge_tensor::tape::{ParamStore, Tape};
use edge_tensor::{CsrMatrix, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for n in [64usize, 256] {
        let a = Matrix::random_uniform(n, n, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    let mut rng = StdRng::seed_from_u64(1);
    for n in [500usize, 2000] {
        // A co-occurrence-like graph: ~10 edges per node.
        let mut g = EntityGraph::new(n);
        for _ in 0..n * 5 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                g.add_edge_weight(a, b, 1.0);
            }
        }
        let adj = CsrMatrix::from_triplets(n, n, &normalized_adjacency_triplets(&g));
        let h = Matrix::random_uniform(n, 64, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(adj.matmul_dense(&h)));
        });
    }
    group.finish();
}

fn bench_sgns_epoch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let vocab = 500usize;
    let sentences: Vec<Vec<usize>> =
        (0..500).map(|_| (0..8).map(|_| rng.gen_range(0..vocab)).collect()).collect();
    let mut counts = vec![0u64; vocab];
    for s in &sentences {
        for &t in s {
            counts[t] += 1;
        }
    }
    let config = SgnsConfig { dim: 64, epochs: 1, subsample_t: 0.0, ..Default::default() };
    c.bench_function("sgns_epoch_500x8", |b| {
        b.iter(|| black_box(train_sgns(&sentences, &counts, &config)));
    });
}

fn bench_kde_smooth(c: &mut Criterion) {
    let grid = Grid::new(edge_geo::BBox::new(40.0, 41.0, -75.0, -74.0), 100, 100);
    let counts: Vec<f64> = (0..grid.len()).map(|i| (i % 17) as f64).collect();
    let kde = Kde2d::new(grid, 1.5);
    c.bench_function("kde2d_smooth_100x100", |b| {
        b.iter(|| black_box(kde.smooth(&counts)));
    });
}

fn mixture() -> GaussianMixture {
    GaussianMixture::new(vec![
        (0.4, BivariateGaussian::new(Point::new(40.70, -74.00), 0.02, 0.03, 0.2)),
        (0.3, BivariateGaussian::new(Point::new(40.80, -73.90), 0.05, 0.02, -0.3)),
        (0.2, BivariateGaussian::isotropic(Point::new(40.60, -74.10), 0.04)),
        (0.1, BivariateGaussian::isotropic(Point::new(40.75, -73.80), 0.08)),
    ])
}

fn bench_mixture(c: &mut Criterion) {
    let mix = mixture();
    let p = Point::new(40.72, -73.98);
    c.bench_function("mixture_pdf", |b| b.iter(|| black_box(mix.pdf(&p))));
    c.bench_function("mixture_mode_eq14", |b| b.iter(|| black_box(mix.mode())));
}

fn bench_haversine(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let pts: Vec<Point> = (0..1000)
        .map(|_| Point::new(rng.gen_range(40.0..41.0), rng.gen_range(-75.0..-74.0)))
        .collect();
    let origin = Point::new(40.7, -74.0);
    c.bench_function("haversine_1000", |b| {
        b.iter(|| {
            let total: f64 = pts.iter().map(|p| p.haversine_km(&origin)).sum();
            black_box(total)
        });
    });
}

fn bench_attention_forward_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let smoothed = Matrix::random_uniform(2000, 64, 1.0, &mut rng);
    let mut params = ParamStore::new();
    let q1 = params.add("q1", Matrix::random_uniform(64, 1, 0.5, &mut rng));
    let b1 = params.add("b1", Matrix::zeros(1, 1));
    let q2 = params.add("q2", Matrix::random_uniform(64, 24, 0.1, &mut rng));
    let b2 = params.add("b2", Matrix::zeros(1, 24));
    let entity_sets: Vec<Vec<usize>> = (0..128)
        .map(|_| (0..rng.gen_range(1..6)).map(|_| rng.gen_range(0..2000)).collect())
        .collect();
    let targets: Vec<(f64, f64)> =
        (0..128).map(|_| (rng.gen_range(40.0..41.0), rng.gen_range(-75.0..-74.0))).collect();
    c.bench_function("attention_batch128_fwd_bwd", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let sn = tape.constant(smoothed.clone());
            let zs: Vec<_> = entity_sets
                .iter()
                .map(|ids| {
                    edge_core::attention::attention_aggregate(&mut tape, sn, ids, q1, b1, &params)
                })
                .collect();
            let z = tape.concat_rows(&zs);
            let w = tape.param(q2, &params);
            let bias = tape.param(b2, &params);
            let lin = tape.matmul(z, w);
            let theta = tape.add_row_broadcast(lin, bias);
            let nll = tape.gmm_nll(theta, &targets, 4);
            black_box(tape.backward(nll))
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_spmm,
    bench_sgns_epoch,
    bench_kde_smooth,
    bench_mixture,
    bench_haversine,
    bench_attention_forward_backward
);
criterion_main!(benches);
