//! Ablation benches for the design choices DESIGN.md calls out: what each
//! EDGE component costs (GCN on/off, attention vs SUM, mixture size M) and
//! how heavy the Table-IV variants are end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use edge_bench::{run_method, HarnessConfig};
use edge_core::{EdgeConfig, EdgeModel, TrainOptions};
use edge_data::{dataset_recognizer, nyma, PresetSize};

fn bench_variants(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 7);
    let config = HarnessConfig::smoke();
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for method in ["BOW", "NoGCN", "SUM", "NoMixture", "EDGE"] {
        group.bench_with_input(BenchmarkId::from_parameter(method), &method, |b, &m| {
            b.iter(|| black_box(run_method(&d, m, &config)));
        });
    }
    group.finish();
}

fn bench_mixture_size(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 8);
    let (train, _) = d.paper_split();
    let mut group = c.benchmark_group("edge_train_vs_M");
    group.sample_size(10);
    for m in [1usize, 4, 8] {
        let mut config = EdgeConfig::smoke();
        config.epochs = 2;
        config.n_components = m;
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let ner = dataset_recognizer(&d);
                black_box(
                    EdgeModel::train(train, ner, &d.bbox, config.clone(), &TrainOptions::default())
                        .expect("train"),
                )
            });
        });
    }
    group.finish();
}

fn bench_gcn_layers(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 9);
    let (train, _) = d.paper_split();
    let mut group = c.benchmark_group("edge_train_vs_gcn_layers");
    group.sample_size(10);
    for layers in [1usize, 2, 3] {
        let mut config = EdgeConfig::smoke();
        config.epochs = 2;
        config.gcn_layers = layers;
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, _| {
            b.iter(|| {
                let ner = dataset_recognizer(&d);
                black_box(
                    EdgeModel::train(train, ner, &d.bbox, config.clone(), &TrainOptions::default())
                        .expect("train"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_variants, bench_mixture_size, bench_gcn_layers
);
criterion_main!(benches);
