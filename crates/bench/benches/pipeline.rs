//! Macro-benchmarks of the EDGE pipeline stages: dataset generation, NER
//! throughput, entity2vec, graph construction + normalization, one training
//! epoch, and prediction throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use edge_core::{run_entity2vec, EdgeConfig, EdgeModel, PredictRequest, Predictor, TrainOptions};
use edge_data::{dataset_recognizer, nyma, PresetSize};
use edge_graph::{build_cooccurrence_graph, normalized_adjacency_triplets};

fn bench_dataset_generation(c: &mut Criterion) {
    c.bench_function("generate_nyma_smoke", |b| {
        b.iter(|| black_box(nyma(PresetSize::Smoke, 1)));
    });
}

fn bench_ner(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 2);
    let ner = dataset_recognizer(&d);
    let texts: Vec<&str> = d.tweets.iter().take(1000).map(|t| t.text.as_str()).collect();
    c.bench_function("ner_recognize_1000_tweets", |b| {
        b.iter(|| {
            let total: usize = texts.iter().map(|t| ner.recognize(t).len()).sum();
            black_box(total)
        });
    });
}

fn bench_entity2vec(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 3);
    let ner = dataset_recognizer(&d);
    let (train, _) = d.paper_split();
    let sgns = edge_embed::SgnsConfig { dim: 32, epochs: 1, ..Default::default() };
    c.bench_function("entity2vec_3000_tweets", |b| {
        b.iter(|| black_box(run_entity2vec(train, &ner, &sgns, 32)));
    });
}

fn bench_graph_build(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 4);
    let ner = dataset_recognizer(&d);
    let (train, _) = d.paper_split();
    let sgns = edge_embed::SgnsConfig { dim: 8, epochs: 1, ..Default::default() };
    let e2v = run_entity2vec(train, &ner, &sgns, 8);
    c.bench_function("cooccurrence_graph_and_normalize", |b| {
        b.iter(|| {
            let g = build_cooccurrence_graph(
                e2v.index.len(),
                e2v.tweet_entities.iter().map(Vec::as_slice),
            );
            black_box(normalized_adjacency_triplets(&g))
        });
    });
}

fn bench_train_and_predict(c: &mut Criterion) {
    let d = nyma(PresetSize::Smoke, 5);
    let (train, test) = d.paper_split();
    let mut config = EdgeConfig::smoke();
    config.epochs = 1;
    c.bench_function("edge_train_1_epoch_smoke", |b| {
        b.iter(|| {
            let ner = dataset_recognizer(&d);
            black_box(
                EdgeModel::train(train, ner, &d.bbox, config.clone(), &TrainOptions::default())
                    .expect("train"),
            )
        });
    });

    let ner = dataset_recognizer(&d);
    let (model, _) =
        EdgeModel::train(train, ner, &d.bbox, EdgeConfig::smoke(), &TrainOptions::default())
            .expect("train");
    let requests: Vec<PredictRequest> =
        test.iter().take(200).map(|t| PredictRequest::text(&t.text)).collect();
    c.bench_function("edge_predict_200_tweets", |b| {
        b.iter(|| {
            let covered: usize = model
                .locate_batch(&requests, &Default::default())
                .iter()
                .filter(|r| r.is_ok())
                .count();
            black_box(covered)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_dataset_generation, bench_ner, bench_entity2vec, bench_graph_build, bench_train_and_predict
);
criterion_main!(benches);
