//! Dispatch overhead of the `edge-par` persistent pool vs the legacy
//! spawn-per-call path, at the workload shape the training loop actually
//! uses (a `parallel_for` over a handful of row blocks).
//!
//! The acceptance bar for the pooled path is < 10µs per dispatch: the pool's
//! cost is a queue push + condvar wake, while spawning pays thread creation
//! and teardown on every call (hundreds of µs). On a single-core host the
//! submitter drains every chunk itself, which is the overhead floor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Worker count the dispatch benches force, so the pool machinery (queue
/// push, condvar wake, chunk claiming) is actually exercised even on a
/// single-core host, where `parallel_for` would otherwise short-circuit to
/// the serial loop.
const BENCH_WIDTH: usize = 4;

/// One trivial task per index — isolates dispatch cost from work cost.
fn dispatch_once(count: usize) -> u64 {
    let acc = AtomicU64::new(0);
    edge_par::parallel_for(count, |i| {
        acc.fetch_add(i as u64, Ordering::Relaxed);
    });
    acc.load(Ordering::Relaxed)
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_dispatch");
    // Warm the pool up front so worker spawning is not billed to the first
    // pooled sample.
    edge_par::with_max_threads(BENCH_WIDTH, || dispatch_once(64));

    // The serial fast path (width 1): the floor every dispatch pays.
    group.bench_function("serial/64", |b| {
        b.iter(|| black_box(edge_par::with_max_threads(1, || dispatch_once(64))));
    });

    for count in [8usize, 64, 512] {
        group.bench_with_input(BenchmarkId::new("pooled", count), &count, |b, &n| {
            edge_par::set_dispatch_mode(edge_par::DispatchMode::Pool);
            b.iter(|| black_box(edge_par::with_max_threads(BENCH_WIDTH, || dispatch_once(n))));
        });
        group.bench_with_input(BenchmarkId::new("spawn", count), &count, |b, &n| {
            edge_par::set_dispatch_mode(edge_par::DispatchMode::Spawn);
            b.iter(|| black_box(edge_par::with_max_threads(BENCH_WIDTH, || dispatch_once(n))));
            edge_par::set_dispatch_mode(edge_par::DispatchMode::Pool);
        });
    }
    edge_par::set_dispatch_mode(edge_par::DispatchMode::Pool);
    group.finish();
}

/// The rayon-shim layer on top of the pool (bucket split + per-bucket
/// mutexes), as the model's `evaluate` / `predict_batch` use it.
fn bench_shim_dispatch(c: &mut Criterion) {
    use rayon::prelude::*;
    let mut group = c.benchmark_group("shim_dispatch");
    let items: Vec<u64> = (0..512).collect();
    group.bench_function("par_iter_map_collect/512", |b| {
        b.iter(|| {
            let out: Vec<u64> = items.par_iter().map(|&x| black_box(x + 1)).collect();
            black_box(out)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_shim_dispatch);
criterion_main!(benches);
