//! Benchmark harness for the EDGE reproduction.
//!
//! The library half hosts the method-agnostic experiment plumbing
//! ([`harness`]); the `src/bin/` binaries regenerate every table and figure
//! of the paper's evaluation (see DESIGN.md §4 for the index), and
//! `benches/` holds the Criterion performance suites.

pub mod harness;

pub use harness::{
    average_reports, edge_rdp_sweep, method_names, parse_cli, peak_rss_bytes,
    render_pipeline_table, render_simd_table, render_speedup_table, render_table, run_edge,
    run_edge_speedup, run_method, run_method_seeds, run_method_set, run_pipeline_bench,
    run_simd_kernel_bench, write_results, EdgeSpeedup, HarnessConfig, KernelLeg, MethodResult,
    MethodSet, PipelineBenchRecord, SimdKernelBench, SpeedupLeg,
};
