//! Chaos harness: drives one live in-process `edge-serve` server through
//! a matrix of injected faults and asserts the robustness invariants the
//! serving stack promises, leg by leg:
//!
//! 1. `baseline` — healthy closed-loop traffic, bit-identical answers.
//! 2. `torn-frames` — garbage request lines, truncated bodies, oversized
//!    declared bodies, malformed deadline headers: every outcome is a
//!    typed status (400/413) or a clean close, never a wedge.
//! 3. `slow-loris` — a byte-at-a-time writer is cut off by the read
//!    budget instead of pinning a connection thread.
//! 4. `stalled-reader` — a client that never reads its response does not
//!    block other connections.
//! 5. `worker-stall` — a `sleep` failpoint stalls an inference worker
//!    past the request deadline: the answer is a typed 504, and the pool
//!    is healthy afterwards.
//! 6. `queue-burst` — with the scheduler held, a concurrent burst only
//!    ever observes {200, 429, 504}; queued work completes on release.
//! 7. `reload-storm` — a storm of corrupt reloads opens the circuit
//!    breaker (typed 503 + Retry-After, filesystem untouched); after the
//!    cooldown a healthy reload closes it and bumps the generation.
//! 8. `brownout-ladder` — forced unhealthy ticks walk the ladder to
//!    Shed; once the fault clears the server returns to Full within 10s
//!    and the retrying client rides the brownout out to a 200.
//!
//! Cross-leg invariants: no connection or worker thread wedges (a final
//! concurrent probe barrage must all answer), the queue drains to zero,
//! and the p99 of successful probes stays under the server's default
//! deadline budget.
//!
//! Usage: `cargo run --release -p edge-bench --bin chaos [--size smoke]`
//!
//! Writes `results/BENCH_chaos.json` and exits non-zero when any
//! invariant is violated, so CI can gate on it directly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use edge_core::{EdgeModel, QuantMode};
use edge_faults::FailScenario;
use edge_serve::brownout::Mode;
use edge_serve::{Client, RetryPolicy, ServeConfig, Server};
use serde::Serialize;

/// The server's default deadline for this run (and the p99 ceiling for
/// successful probes), microseconds.
const DEADLINE_US: u64 = 2_000_000;

/// Read budget configured for the run — the slow-loris cutoff bound.
const READ_BUDGET_US: u64 = 300_000;

#[derive(Serialize)]
struct LegRecord {
    leg: String,
    /// Fault events injected / requests issued in this leg.
    events: usize,
    /// Human-readable invariant violations; empty means the leg passed.
    violations: Vec<String>,
    notes: Vec<String>,
}

#[derive(Serialize)]
struct ChaosOutput {
    threads: usize,
    corpus: String,
    deadline_us: u64,
    legs: Vec<LegRecord>,
    /// Successful (200) probe latencies observed across all legs.
    ok_probes: usize,
    p99_ok_us: f64,
    /// Seconds from the last injected fault clearing to `Full`.
    recovery_secs: f64,
    total_violations: usize,
}

/// One leg's scorecard: checks record violations instead of panicking so
/// the whole matrix always runs and the report is complete.
struct Leg {
    name: &'static str,
    events: usize,
    violations: Vec<String>,
    notes: Vec<String>,
}

impl Leg {
    fn new(name: &'static str) -> Leg {
        Leg { name, events: 0, violations: Vec::new(), notes: Vec::new() }
    }

    fn check(&mut self, cond: bool, msg: impl Into<String>) {
        if !cond {
            let msg = msg.into();
            edge_obs::progress!("   [{}] VIOLATION: {msg}", self.name);
            self.violations.push(msg);
        }
    }

    fn note(&mut self, msg: impl Into<String>) {
        self.notes.push(msg.into());
    }

    fn finish(self, out: &mut Vec<LegRecord>) {
        edge_obs::progress!(
            "   {:<16} {} events, {} violations",
            self.name,
            self.events,
            self.violations.len()
        );
        out.push(LegRecord {
            leg: self.name.to_string(),
            events: self.events,
            violations: self.violations,
            notes: self.notes,
        });
    }
}

/// Writes raw bytes to a fresh connection and reads whatever comes back
/// until EOF or `wait`. `half_close` shuts down the write side first so
/// the server sees EOF mid-body (the truncated-frame case).
fn raw_exchange(addr: SocketAddr, payload: &[u8], wait: Duration, half_close: bool) -> String {
    let mut out = String::new();
    let Ok(mut stream) = TcpStream::connect(addr) else { return out };
    let _ = stream.set_nodelay(true);
    let _ = stream.write_all(payload);
    if half_close {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let _ = stream.set_read_timeout(Some(wait));
    let mut buf = [0u8; 4096];
    while let Ok(n) = stream.read(&mut buf) {
        if n == 0 {
            break;
        }
        out.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    out
}

/// Status code of a raw HTTP/1.1 response, if one was framed at all.
fn status_of(raw: &str) -> Option<u16> {
    raw.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()
}

/// One healthy probe on a fresh connection; returns the status and
/// pushes the latency of successful probes for the global p99 gate.
fn probe(
    addr: SocketAddr,
    text: &str,
    expected: &[u8],
    latencies_us: &mut Vec<f64>,
    leg: &mut Leg,
) {
    leg.events += 1;
    let t0 = Instant::now();
    let resp = Client::connect(addr).and_then(|mut c| c.predict(text));
    match resp {
        Ok(resp) => {
            leg.check(resp.status == 200, format!("probe status {}: {}", resp.status, resp.text()));
            if resp.status == 200 {
                leg.check(resp.body == expected, "probe answer drifted from the healthy baseline");
                latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
            }
        }
        Err(e) => leg.check(false, format!("probe transport error: {e}")),
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Polls the brownout mode until it matches or the 10s window lapses.
fn await_mode(server: &Server, want: Mode) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.brownout_mode() != want {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let dataset = edge_data::nyma(size, seeds[0]);
    edge_obs::progress!(
        "== chaos harness on {} ({} tweets, {} threads) ==",
        dataset.name,
        dataset.len(),
        edge_par::num_threads()
    );

    let (train, test) = dataset.paper_split();
    let mut cfg = edge_core::EdgeConfig::smoke();
    cfg.epochs = 2;
    let (model, _) = EdgeModel::train(
        train,
        edge_data::dataset_recognizer(&dataset),
        &dataset.bbox,
        cfg,
        &Default::default(),
    )
    .expect("train");
    let model_path =
        std::env::temp_dir().join(format!("edge_chaos_{}.model.json", std::process::id()));
    model.save_artifact(&model_path, QuantMode::None).expect("save");
    let model_path = model_path.to_string_lossy().into_owned();

    let covered: Vec<String> = test
        .iter()
        .filter(|t| !model.resolve_entities(&t.text).is_empty())
        .map(|t| t.text.clone())
        .collect();
    // Text allocation matters: the response cache is on (the realistic
    // configuration), so legs that must push work through the scheduler
    // (worker-stall, queue-burst) get texts no earlier leg has cached.
    assert!(covered.len() >= 24, "corpus too small for the chaos matrix");

    // One server lives through the whole matrix: every leg's fault lands
    // on a process already scarred by the previous legs, which is the
    // point — recovery must be complete, not just per-test.
    let scenario = FailScenario::setup();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_capacity: 8,
        default_deadline_us: DEADLINE_US,
        read_budget_us: READ_BUDGET_US,
        // Only the forced failpoint walks the ladder: the latency/shed
        // thresholds are parked out of reach so the matrix is exact.
        brownout_p99_us: 10_000_000,
        brownout_max_shed_rate: 1.0,
        brownout_escalate_ticks: 1,
        brownout_recover_ticks: 1,
        brownout_tick_us: 50_000,
        brownout_window_secs: 1,
        reload_breaker_threshold: 2,
        reload_breaker_cooldown_secs: 1,
        ..ServeConfig::default()
    };
    let server = Server::start_from_artifact(&model_path, config).expect("server starts");
    let addr = server.addr();

    // The healthy answer every probe must reproduce bit-for-bit.
    let probe_text = covered[0].clone();
    let expected = {
        let mut client = Client::connect(addr).expect("connect");
        let resp = client.predict(&probe_text).expect("baseline predict");
        assert_eq!(resp.status, 200, "the baseline answer must be healthy");
        resp.body
    };

    let mut legs: Vec<LegRecord> = Vec::new();
    let mut ok_latencies_us: Vec<f64> = Vec::new();

    // Leg 1: baseline — healthy traffic, bit-identical answers.
    let mut leg = Leg::new("baseline");
    {
        let mut client = Client::connect(addr).expect("connect");
        for text in covered.iter().take(8) {
            leg.events += 1;
            let t0 = Instant::now();
            match client.predict(text) {
                Ok(resp) => {
                    leg.check(resp.status == 200, format!("baseline status {}", resp.status));
                    if resp.status == 200 {
                        ok_latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                }
                Err(e) => leg.check(false, format!("baseline transport error: {e}")),
            }
        }
        probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
    }
    leg.finish(&mut legs);

    // Leg 2: torn and malformed frames — typed statuses or clean closes.
    let mut leg = Leg::new("torn-frames");
    {
        let wait = Duration::from_secs(2);
        // An opened-then-abandoned connection.
        leg.events += 1;
        let _ = TcpStream::connect(addr);
        // A line that is not HTTP at all => a typed 4xx (the words parse
        // as an unroutable method/path pair => 404) or a clean close.
        leg.events += 1;
        let raw = raw_exchange(addr, b"NOT HTTP AT ALL\r\n\r\n", wait, false);
        leg.check(
            raw.is_empty() || matches!(status_of(&raw), Some(400 | 404)),
            format!("garbage line answered {raw:?}"),
        );
        // A declared body that never arrives => clean close on EOF.
        leg.events += 1;
        let torn = b"POST /predict HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"text\":\"half";
        let raw = raw_exchange(addr, torn, wait, true);
        leg.check(
            raw.is_empty() || status_of(&raw).is_some(),
            format!("torn body answered unframed bytes {raw:?}"),
        );
        // A declared body over the limit => typed 413 before any read.
        leg.events += 1;
        let huge = format!("POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 8 << 20);
        let raw = raw_exchange(addr, huge.as_bytes(), wait, false);
        leg.check(status_of(&raw) == Some(413), format!("oversized body answered {raw:?}"));
        leg.check(raw.contains("payload_too_large"), "413 must carry the typed error");
        // A malformed deadline header => typed 400.
        leg.events += 1;
        let body = b"{\"text\":\"x\"}";
        let bad = format!(
            "POST /predict HTTP/1.1\r\nX-Deadline-Us: soonish\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let mut payload = bad.into_bytes();
        payload.extend_from_slice(body);
        let raw = raw_exchange(addr, &payload, wait, false);
        leg.check(status_of(&raw) == Some(400), format!("malformed deadline answered {raw:?}"));
        // The server is unharmed.
        probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
    }
    leg.finish(&mut legs);

    // Leg 3: slow-loris — the read budget cuts the drip feed off.
    let mut leg = Leg::new("slow-loris");
    {
        leg.events += 1;
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = stream.try_clone().expect("clone");
        let writer = std::thread::spawn(move || {
            let mut stream = stream;
            for b in b"POST /predict HTTP/1.1\r\n".iter().cycle().take(100) {
                if stream.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let t0 = Instant::now();
        let mut reader = reader;
        reader.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1024];
        // The server closing (with or without a response) unblocks this
        // read; a timeout here means the loris pinned the thread.
        let cut = !matches!(reader.read(&mut buf), Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut);
        let elapsed = t0.elapsed();
        leg.check(cut, "slow-loris connection was never cut off");
        leg.check(
            elapsed < Duration::from_micros(READ_BUDGET_US * 8),
            format!("cutoff took {elapsed:?} against a {READ_BUDGET_US}us budget"),
        );
        leg.note(format!("loris cut off after {elapsed:?}"));
        writer.join().ok();
        probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
    }
    leg.finish(&mut legs);

    // Leg 4: stalled reader — an unread response blocks nobody else.
    let mut leg = Leg::new("stalled-reader");
    {
        leg.events += 1;
        let mut stalled = TcpStream::connect(addr).expect("connect");
        let body = format!("{{\"text\":{}}}", serde_json::to_string(&probe_text).unwrap());
        let req = format!(
            "POST /predict HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stalled.write_all(req.as_bytes()).expect("write");
        // Never read the response; hammer the server from elsewhere.
        for _ in 0..10 {
            probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
        }
        drop(stalled);
    }
    leg.finish(&mut legs);

    // Leg 5: worker stall — a sleeping worker past the deadline is a
    // typed 504, and the pool serves the next request normally.
    let mut leg = Leg::new("worker-stall");
    {
        leg.events += 1;
        edge_faults::configure("serve.worker.stall", "1*sleep(400)").unwrap();
        let mut client = Client::connect(addr).expect("connect");
        // covered[8] is uncached: the request must reach a worker.
        let body = format!("{{\"text\":{}}}", serde_json::to_string(&covered[8]).unwrap());
        let resp = client
            .request_with_headers(
                "POST",
                "/predict",
                &[("X-Deadline-Us", "100000")],
                body.as_bytes(),
            )
            .expect("request");
        leg.check(resp.status == 504, format!("stalled worker answered {}", resp.status));
        leg.check(
            resp.json().get("error").and_then(|v| v.as_str()) == Some("deadline_exceeded"),
            format!("504 must be typed: {}", resp.text()),
        );
        edge_faults::remove("serve.worker.stall");
        probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
    }
    leg.finish(&mut legs);

    // Leg 6: queue-full burst — held scheduler, concurrent burst, only
    // well-formed outcomes {200, 429, 504}; queued work completes.
    let mut leg = Leg::new("queue-burst");
    {
        edge_faults::configure("serve.dispatch.hold", "100000*err").unwrap();
        // The scheduler polls the hold failpoint between idle waits; give
        // it a beat to actually park.
        std::thread::sleep(Duration::from_millis(300));
        // 12 uncached texts against an 8-deep queue: some must queue
        // (then complete on release), some must shed.
        let burst: Vec<_> = covered[9..21]
            .iter()
            .cloned()
            .map(|text| {
                std::thread::spawn(move || Client::connect(addr).and_then(|mut c| c.predict(&text)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(400));
        edge_faults::remove("serve.dispatch.hold");
        let mut seen = std::collections::BTreeMap::<u16, usize>::new();
        for handle in burst {
            leg.events += 1;
            match handle.join().expect("burst thread") {
                Ok(resp) => {
                    *seen.entry(resp.status).or_insert(0) += 1;
                    leg.check(
                        matches!(resp.status, 200 | 429 | 504),
                        format!("burst observed a malformed outcome {}", resp.status),
                    );
                }
                Err(e) => leg.check(false, format!("burst transport error: {e}")),
            }
        }
        leg.note(format!("burst statuses: {seen:?}"));
        leg.check(seen.contains_key(&200), "a held-then-released queue must finish real work");
        leg.check(seen.contains_key(&429), "overflowing an 8-deep queue must shed");
        probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
        leg.check(server.queue_depth() == 0, "queue must drain after the burst");
    }
    leg.finish(&mut legs);

    // Leg 7: corrupt reload storm — the breaker opens with a typed 503,
    // and after the cooldown a healthy reload closes it.
    let mut leg = Leg::new("reload-storm");
    {
        let mut client = Client::connect(addr).expect("connect");
        let bad = b"{\"path\":\"/nonexistent/chaos.model.json\"}";
        let mut statuses = Vec::new();
        for _ in 0..6 {
            leg.events += 1;
            let resp = client.request("POST", "/reload", bad).expect("reload");
            if resp.status == 503 {
                leg.check(
                    resp.json().get("error").and_then(|v| v.as_str()) == Some("circuit_open"),
                    format!("open breaker must be typed: {}", resp.text()),
                );
                leg.check(resp.retry_after().is_some(), "open breaker must send Retry-After");
            }
            statuses.push(resp.status);
        }
        leg.note(format!("storm statuses: {statuses:?}"));
        leg.check(
            statuses[..2] == [422, 422] && statuses[2..].iter().all(|s| *s == 503),
            format!("storm must fail twice then trip the breaker: {statuses:?}"),
        );
        leg.check(server.generation() == 1, "nothing may reload during the storm");
        std::thread::sleep(Duration::from_millis(1_200));
        leg.events += 1;
        let good = format!("{{\"path\":{}}}", serde_json::to_string(&model_path).unwrap());
        let resp = client.request("POST", "/reload", good.as_bytes()).expect("reload");
        leg.check(resp.status == 200, format!("half-open probe failed: {}", resp.text()));
        leg.check(server.generation() == 2, "a healthy reload must bump the generation");
        leg.check(!server.reload_breaker_open(), "success must close the breaker");
        probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
    }
    leg.finish(&mut legs);

    // Leg 8: brownout ladder — forced to Shed, then back to Full within
    // the 10s recovery window once the fault clears.
    let mut leg = Leg::new("brownout-ladder");
    let recovery_secs;
    {
        leg.events += 3;
        edge_faults::configure("serve.mode.force", "3*err").unwrap();
        leg.check(await_mode(&server, Mode::Shed), "forced ticks never reached Shed");
        let mut client = Client::connect(addr).expect("connect");
        let resp = client.predict(&probe_text).expect("predict");
        leg.check(resp.status == 503, format!("Shed answered {}", resp.status));
        leg.check(
            resp.json().get("mode").and_then(|v| v.as_str()) == Some("shed"),
            format!("shed rejection must name its mode: {}", resp.text()),
        );
        leg.check(resp.retry_after().is_some(), "brownout 503 must send Retry-After");
        // The failpoint is exhausted; the clock on recovery starts now.
        let t0 = Instant::now();
        // The retrying client rides the brownout out: Retry-After paces
        // it straight into the recovered server.
        let body = format!("{{\"text\":{}}}", serde_json::to_string(&probe_text).unwrap());
        let policy = RetryPolicy { max_attempts: 8, ..RetryPolicy::default() };
        match client.request_with_retry("POST", "/predict", &[], body.as_bytes(), &policy) {
            Ok(resp) => {
                leg.check(resp.status == 200, format!("retry never landed: {}", resp.status))
            }
            Err(e) => leg.check(false, format!("retrying client gave up: {e}")),
        }
        leg.check(await_mode(&server, Mode::Full), "ladder never recovered to Full within 10s");
        recovery_secs = t0.elapsed().as_secs_f64();
        leg.note(format!("recovered to Full in {recovery_secs:.2}s"));
        probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
    }
    leg.finish(&mut legs);

    // Final wedge check: a concurrent barrage on the scarred server must
    // all answer 200, bit-identically, with the queue drained.
    let mut leg = Leg::new("wedge-check");
    {
        let barrage: Vec<_> = (0..8)
            .map(|i| {
                let text = covered[i % 4].clone();
                std::thread::spawn(move || Client::connect(addr).and_then(|mut c| c.predict(&text)))
            })
            .collect();
        for handle in barrage {
            leg.events += 1;
            match handle.join().expect("barrage thread") {
                Ok(resp) => {
                    leg.check(resp.status == 200, format!("barrage answered {}", resp.status))
                }
                Err(e) => leg.check(false, format!("barrage transport error: {e}")),
            }
        }
        probe(addr, &probe_text, &expected, &mut ok_latencies_us, &mut leg);
        leg.check(server.queue_depth() == 0, "queue must be empty at the end of the matrix");
    }
    leg.finish(&mut legs);

    server.shutdown();
    drop(scenario);
    std::fs::remove_file(&model_path).ok();

    ok_latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p99_ok_us = percentile(&ok_latencies_us, 99.0);
    let mut global = Leg::new("global");
    global.check(
        p99_ok_us < DEADLINE_US as f64,
        format!("p99 of successful probes {p99_ok_us:.0}us breaches the {DEADLINE_US}us budget"),
    );
    global.check(
        recovery_secs < 10.0,
        format!("recovery took {recovery_secs:.2}s, over the 10s window"),
    );
    let ok_probes = ok_latencies_us.len();
    global.finish(&mut legs);

    let total_violations: usize = legs.iter().map(|l| l.violations.len()).sum();
    let mut text = format!(
        "Chaos harness ({size:?} scale): fault matrix against one live server\n\
         {:<16} {:>7} {:>11}\n",
        "leg", "events", "violations"
    );
    for l in &legs {
        text.push_str(&format!("{:<16} {:>7} {:>11}\n", l.leg, l.events, l.violations.len()));
        for v in &l.violations {
            text.push_str(&format!("    VIOLATION: {v}\n"));
        }
    }
    text.push_str(&format!(
        "\np99 of {ok_probes} successful probes: {p99_ok_us:.0}us (budget {DEADLINE_US}us)\n\
         recovery to Full after faults cleared: {recovery_secs:.2}s (window 10s)\n"
    ));
    print!("{text}");
    let output = ChaosOutput {
        threads: edge_par::num_threads(),
        corpus: dataset.name.clone(),
        deadline_us: DEADLINE_US,
        legs,
        ok_probes,
        p99_ok_us,
        recovery_secs,
        total_violations,
    };
    edge_bench::write_results("BENCH_chaos", &output, &text).expect("write results");
    edge_obs::progress!("wrote results/BENCH_chaos.{{json,txt}}");
    if total_violations > 0 {
        eprintln!("chaos: {total_violations} invariant violation(s)");
        std::process::exit(1);
    }
}
