//! Regenerates **Table III**: the performance comparison of the eight
//! methods (LocKDE, UnicodeCNN, NaiveBayes, Kullback-Leibler, their kde2d
//! variants, Hyper-local, EDGE) on NYMA / LAMA / COVID-19 under Mean,
//! Median, @3km, @5km (plus coverage, which the paper reports inline for
//! Hyper-local).
//!
//! Usage: `cargo run --release -p edge-bench --bin table3 [--size default] [--seeds 3]`

use edge_bench::{
    method_names, render_table, run_method_seeds, HarnessConfig, MethodResult, MethodSet,
};
use edge_data::{covid19, lama, nyma, PresetSize};

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let config = match size {
        PresetSize::Smoke => HarnessConfig::smoke(),
        _ => HarnessConfig::default(),
    };

    let mut results: Vec<MethodResult> = Vec::new();
    for dataset in [nyma(size, seeds[0]), lama(size, seeds[0]), covid19(size, seeds[0])] {
        edge_obs::progress!("== {} ({} tweets) ==", dataset.name, dataset.len());
        for method in method_names(MethodSet::Comparison) {
            let start = std::time::Instant::now();
            let r = run_method_seeds(&dataset, method, &config, &seeds);
            edge_obs::progress!(
                "   {:<24} mean {:>7.2} km  median {:>7.2} km  @3km {:.4}  @5km {:.4}  cov {:.1}%  [{:?}]",
                r.method,
                r.report.mean_km,
                r.report.median_km,
                r.report.at_3km,
                r.report.at_5km,
                r.report.coverage * 100.0,
                start.elapsed()
            );
            results.push(r);
        }
    }

    let text = format!(
        "Table III: Performance comparison ({size:?} scale, {} seed(s))\n{}",
        seeds.len(),
        render_table(&results)
    );
    print!("{text}");
    edge_bench::write_results("table3", &results, &text).expect("write results");
    edge_obs::progress!("wrote results/table3.{{json,txt}}");
}
