//! Regenerates **Table II**: dataset overview — timeline and train/test
//! tweet + entity distribution for NYMA, LAMA and COVID-19.
//!
//! Usage: `cargo run --release -p edge-bench --bin table2 [--size smoke|default|paper]`

use edge_data::{covid19, dataset_recognizer, lama, nyma, table_two_row};

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let seed = seeds[0];
    let datasets = [nyma(size, seed), lama(size, seed), covid19(size, seed)];

    let rows: Vec<edge_data::TableTwoRow> =
        datasets.iter().map(|d| table_two_row(d, &dataset_recognizer(d))).collect();

    let mut text = format!(
        "Table II: Overview of dataset ({size:?} scale, seed {seed})\n{:<10} {:<24} {:>12} {:>12} {:>14} {:>14}\n",
        "Dataset", "Timeline", "Train tweets", "Test tweets", "Train entities", "Test entities"
    );
    for r in &rows {
        text.push_str(&format!(
            "{:<10} {:<24} {:>12} {:>12} {:>14} {:>14}\n",
            r.dataset, r.timeline, r.train_tweets, r.test_tweets, r.train_entities, r.test_entities
        ));
    }
    print!("{text}");
    edge_bench::write_results("table2", &rows, &text).expect("write results");
    edge_obs::progress!("wrote results/table2.{{json,txt}}");
}
