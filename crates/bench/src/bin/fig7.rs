//! Regenerates **Figure 7** (use case 1): the predicted mixture for a
//! single non-geo-tagged tweet, rendered as the paper does — each
//! component's 75%/80%/85% confidence ellipses plus its weight π, with the
//! per-entity attention weights as the interpretability trail.
//!
//! The paper's example is a quarantine tweet from 03/22/2020; we pick the
//! corresponding synthetic tweet (a test-split quarantine mention).
//!
//! Usage: `cargo run --release -p edge-bench --bin fig7 [--size default]`

use serde::Serialize;

use edge_core::{EdgeConfig, EdgeModel, PredictRequest, Predictor, TrainOptions};
use edge_data::{covid19, dataset_recognizer, PresetSize};
use edge_geo::{ConfidenceEllipse, Point};

#[derive(Serialize)]
struct ComponentView {
    weight: f64,
    mean: Point,
    ellipses: Vec<ConfidenceEllipse>,
}

#[derive(Serialize)]
struct FigureSeven {
    tweet: String,
    true_location: Point,
    point_estimate: Point,
    attention: Vec<(String, f32)>,
    components: Vec<ComponentView>,
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let dataset = covid19(size, seeds[0]);
    let config = match size {
        PresetSize::Smoke => EdgeConfig::smoke(),
        _ => EdgeConfig::fast(),
    };
    let (train, test) = dataset.paper_split();
    let (model, _) = EdgeModel::train(
        train,
        dataset_recognizer(&dataset),
        &dataset.bbox,
        config,
        &TrainOptions::default(),
    )
    .expect("train");

    // The paper's single-tweet demo: a quarantine mention the model covers.
    // Prefer one with several resolved entities — the attention trail is the
    // point of the figure — falling back to any covered quarantine tweet.
    let candidates: Vec<_> = test
        .iter()
        .filter(|t| t.text.to_lowercase().contains("quarantine"))
        .filter_map(|t| {
            let req = PredictRequest::text(&t.text);
            model.locate(&req, &Default::default()).ok().map(|r| (t, r.prediction))
        })
        .collect();
    let (tweet, prediction) = candidates
        .iter()
        .find(|(_, p)| p.attention.len() >= 2)
        .or_else(|| candidates.first())
        .cloned()
        .expect("no covered quarantine tweet in the test split");

    let components: Vec<ComponentView> = prediction
        .mixture
        .iter()
        .map(|(w, g)| ComponentView {
            weight: w,
            mean: g.mu,
            ellipses: [0.75, 0.80, 0.85].iter().map(|&c| g.confidence_ellipse(c)).collect(),
        })
        .collect();

    let mut text = format!(
        "Figure 7: mixture prediction for a single tweet\n\ntweet: \"{}\"\ntrue location: ({:.4}, {:.4})\npoint estimate (Eq. 14): ({:.4}, {:.4})  [error {:.2} km]\n\nattention weights:\n",
        tweet.text,
        tweet.location.lat,
        tweet.location.lon,
        prediction.point.lat,
        prediction.point.lon,
        prediction.point.haversine_km(&tweet.location)
    );
    for (entity, w) in &prediction.attention {
        text.push_str(&format!("   {entity:<28} {w:.4}\n"));
    }
    text.push_str("\ncomponents (weight, mean, 85% ellipse semi-axes in km):\n");
    for c in &components {
        let e85 = &c.ellipses[2];
        text.push_str(&format!(
            "   pi = {:.4}  mu = ({:.4}, {:.4})  axes = {:.2} x {:.2} km\n",
            c.weight,
            c.mean.lat,
            c.mean.lon,
            e85.semi_major * edge_geo::KM_PER_DEG_LAT,
            e85.semi_minor * edge_geo::KM_PER_DEG_LAT,
        ));
    }
    let out = FigureSeven {
        tweet: tweet.text.clone(),
        true_location: tweet.location,
        point_estimate: prediction.point,
        attention: prediction.attention.clone(),
        components,
    };
    print!("{text}");
    edge_bench::write_results("fig7", &out, &text).expect("write results");
    edge_obs::progress!("wrote results/fig7.{{json,txt}}");
}
