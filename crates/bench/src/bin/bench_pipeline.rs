//! End-to-end pipeline resource bench: runs the Table III method set on one
//! corpus, recording per-method wall time and process peak RSS, plus the
//! metrics-layer counters (matmul/spmm FLOPs, tape ops, NER misses) for the
//! EDGE runs.
//!
//! Usage: `cargo run --release -p edge-bench --bin bench_pipeline [--size default]`
//!
//! Writes `results/BENCH_pipeline.{json,txt}`.

use edge_bench::{render_pipeline_table, run_pipeline_bench, HarnessConfig, MethodSet};
use edge_data::{nyma, PresetSize};

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let config = match size {
        PresetSize::Smoke => HarnessConfig::smoke(),
        _ => HarnessConfig::default(),
    };
    // Counters stay on for the whole sweep so the snapshot aggregates the
    // kernel work (FLOPs, tape ops, NER misses) behind the wall-time numbers.
    edge_obs::set_metrics_enabled(true);
    edge_obs::metrics::reset();

    let dataset = nyma(size, seeds[0]);
    edge_obs::progress!("== pipeline bench on {} ({} tweets) ==", dataset.name, dataset.len());
    let records = run_pipeline_bench(&dataset, MethodSet::Comparison, &config);
    for r in &records {
        edge_obs::progress!(
            "   {:<24} {:>7.2}s  peak RSS {:>8.1} MB",
            r.method,
            r.wall_secs,
            r.peak_rss_mb
        );
    }

    let text = format!(
        "Pipeline bench ({size:?} scale): wall time + peak RSS per method\n{}\n{}",
        render_pipeline_table(&records),
        edge_obs::metrics::snapshot().render()
    );
    print!("{text}");
    edge_bench::write_results("BENCH_pipeline", &records, &text).expect("write results");
    edge_obs::progress!("wrote results/BENCH_pipeline.{{json,txt}}");
}
