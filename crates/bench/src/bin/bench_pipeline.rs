//! End-to-end pipeline resource bench: runs the Table III method set on one
//! corpus, recording per-method wall time and process peak RSS, plus the
//! metrics-layer counters (matmul/spmm FLOPs, tape ops, NER misses) for the
//! EDGE runs, a before/after dispatch speedup table for EDGE training
//! (serial vs spawn-per-call vs the persistent `edge-par` pool vs forced
//! scalar kernels), and the `simd_vs_scalar` microkernel comparison.
//!
//! Usage: `cargo run --release -p edge-bench --bin bench_pipeline [--size default]`
//!
//! Writes `results/BENCH_pipeline.{json,txt}`. The JSON is an object:
//! `{ "threads": N, "records": [...], "edge_speedup": {...},
//!    "simd_vs_scalar": {...} }`.

use edge_bench::{
    render_pipeline_table, render_simd_table, render_speedup_table, run_edge_speedup,
    run_pipeline_bench, run_simd_kernel_bench, HarnessConfig, MethodSet,
};
use edge_data::{nyma, PresetSize};
use serde::Serialize;

#[derive(Serialize)]
struct PipelineBenchOutput {
    /// Worker threads available to the pool for this run.
    threads: usize,
    records: Vec<edge_bench::PipelineBenchRecord>,
    edge_speedup: edge_bench::EdgeSpeedup,
    simd_vs_scalar: edge_bench::SimdKernelBench,
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let config = match size {
        PresetSize::Smoke => HarnessConfig::smoke(),
        _ => HarnessConfig::default(),
    };
    // Counters stay on for the whole sweep so the snapshot aggregates the
    // kernel work (FLOPs, tape ops, NER misses) behind the wall-time numbers.
    edge_obs::set_metrics_enabled(true);
    edge_obs::metrics::reset();

    let dataset = nyma(size, seeds[0]);
    edge_obs::progress!(
        "== pipeline bench on {} ({} tweets, {} threads) ==",
        dataset.name,
        dataset.len(),
        edge_par::num_threads()
    );
    let records = run_pipeline_bench(&dataset, MethodSet::Comparison, &config);
    for r in &records {
        edge_obs::progress!(
            "   {:<24} {:>7.2}s  peak RSS {:>8.1} MB",
            r.method,
            r.wall_secs,
            r.peak_rss_mb
        );
    }

    edge_obs::progress!("== EDGE dispatch speedup (serial / spawn / pool / scalar) ==");
    let edge_speedup = run_edge_speedup(&dataset, &config.edge);

    edge_obs::progress!("== SIMD vs scalar microkernels ==");
    let simd_vs_scalar = run_simd_kernel_bench();

    let text = format!(
        "Pipeline bench ({size:?} scale): wall time + peak RSS per method\n{}\n\
         EDGE training dispatch comparison\n{}\n{}\n{}",
        render_pipeline_table(&records),
        render_speedup_table(&edge_speedup),
        render_simd_table(&simd_vs_scalar),
        edge_obs::metrics::snapshot().render()
    );
    print!("{text}");
    let output = PipelineBenchOutput {
        threads: edge_par::num_threads(),
        records,
        edge_speedup,
        simd_vs_scalar,
    };
    edge_bench::write_results("BENCH_pipeline", &output, &text).expect("write results");
    edge_obs::progress!("wrote results/BENCH_pipeline.{{json,txt}}");
}
