//! Regenerates **Figure 8** (use case 2a): heat maps of the tweets
//! mentioning Nipsey Hussle in Los Angeles, before (03/12–03/30) and on/after
//! the anniversary of his death (03/31–04/02), with locations predicted by
//! EDGE. The paper observes "a burst of tweets … in several geographical
//! regions close to the place where he was shot" (The Marathon Clothing).
//!
//! Usage: `cargo run --release -p edge-bench --bin fig8 [--size default]`

use serde::Serialize;

use edge_core::{EdgeConfig, EdgeModel, Geolocator, TrainOptions};
use edge_data::{dataset_recognizer, lama, PresetSize, SimDate};
use edge_geo::{Grid, Heatmap, Point};

#[derive(Serialize)]
struct Window {
    label: String,
    n_mentions: usize,
    n_predicted: usize,
    heatmap: Vec<f64>,
    hotspots: Vec<(Point, f64)>,
    km_from_marathon_clothing: Option<f64>,
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let dataset = lama(size, seeds[0]);
    let config = match size {
        PresetSize::Smoke => EdgeConfig::smoke(),
        _ => EdgeConfig::fast(),
    };
    let (train, _) = dataset.paper_split();
    let (model, _) = EdgeModel::train(
        train,
        dataset_recognizer(&dataset),
        &dataset.bbox,
        config,
        &TrainOptions::default(),
    )
    .expect("train");

    let marathon = Point::new(33.9890, -118.3310);
    let grid = Grid::new(dataset.bbox, 60, 60);
    let windows = [
        ("03/12/2020-03/30/2020", SimDate::new(2020, 3, 12), SimDate::new(2020, 3, 31)),
        ("03/31/2020-04/02/2020", SimDate::new(2020, 3, 31), SimDate::new(2020, 4, 2)),
    ];

    let mut out = Vec::new();
    let mut text = String::from("Figure 8: predicted heat maps of Nipsey Hussle mentions (LA)\n");
    for (label, start, end) in windows {
        let mentions: Vec<_> = dataset
            .window(start, end)
            .into_iter()
            .filter(|t| t.text.to_lowercase().contains("nipseyhussle"))
            .collect();
        let predicted: Vec<Point> =
            mentions.iter().filter_map(|t| model.predict_point(&t.text)).collect();
        let heat = Heatmap::from_points(grid.clone(), &predicted, 1.5);
        let hot_dist = heat.hotspots(1).first().map(|(p, _)| p.haversine_km(&marathon));
        text.push_str(&format!(
            "\n-- window {label}: {} mentions, {} predicted, hottest cell {} km from The Marathon Clothing --\n{}",
            mentions.len(),
            predicted.len(),
            hot_dist.map_or("n/a".into(), |d| format!("{d:.2}")),
            heat.render_ascii(60)
        ));
        out.push(Window {
            label: label.to_string(),
            n_mentions: mentions.len(),
            n_predicted: predicted.len(),
            heatmap: heat.values().to_vec(),
            hotspots: heat.hotspots(5),
            km_from_marathon_clothing: hot_dist,
        });
    }
    text.push_str(&format!(
        "\nburst: {} mentions across 19 days before vs {} across the 2 anniversary days\n",
        out[0].n_mentions, out[1].n_mentions
    ));
    print!("{text}");
    edge_bench::write_results("fig8", &out, &text).expect("write results");
    edge_obs::progress!("wrote results/fig8.{{json,txt}}");
}
