//! Regenerates **Table IV**: the ablation study — BOW, NoGCN, SUM,
//! NoMixture vs the full EDGE model on all three datasets.
//!
//! Usage: `cargo run --release -p edge-bench --bin table4 [--size default] [--seeds 3]`

use edge_bench::{
    method_names, render_table, run_method_seeds, HarnessConfig, MethodResult, MethodSet,
};
use edge_data::{covid19, lama, nyma, PresetSize};

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let config = match size {
        PresetSize::Smoke => HarnessConfig::smoke(),
        _ => HarnessConfig::default(),
    };

    let mut results: Vec<MethodResult> = Vec::new();
    for dataset in [nyma(size, seeds[0]), lama(size, seeds[0]), covid19(size, seeds[0])] {
        edge_obs::progress!("== {} ({} tweets) ==", dataset.name, dataset.len());
        for method in method_names(MethodSet::Ablation) {
            let r = run_method_seeds(&dataset, method, &config, &seeds);
            edge_obs::progress!(
                "   {:<12} mean {:>7.2} km  median {:>7.2} km  @3km {:.4}  @5km {:.4}",
                r.method,
                r.report.mean_km,
                r.report.median_km,
                r.report.at_3km,
                r.report.at_5km
            );
            results.push(r);
        }
    }

    let text = format!(
        "Table IV: Ablation study ({size:?} scale, {} seed(s))\n{}",
        seeds.len(),
        render_table(&results)
    );
    print!("{text}");
    edge_bench::write_results("table4", &results, &text).expect("write results");
    edge_obs::progress!("wrote results/table4.{{json,txt}}");
}
