//! Regenerates the **Section IV-A corpus audit**: NER recognition rates on
//! three random 100-tweet samples per dataset (repeated like the paper's
//! manual labelling), the fraction of entity-free tweets, and the
//! percentages of tweets mentioning a location entity / both a location and
//! a non-location entity.
//!
//! Usage: `cargo run --release -p edge-bench --bin audit [--size default]`

use serde::Serialize;

use edge_data::{
    audit_entities, audit_entities_offset, covid19, dataset_recognizer, lama, nyma, EntityAudit,
};

#[derive(Serialize)]
struct DatasetAudit {
    dataset: String,
    samples: Vec<EntityAudit>,
    full: EntityAudit,
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let mut out = Vec::new();
    let mut text = String::from("Section IV-A audit (3 x 100-tweet samples + full corpus)\n");
    for dataset in [nyma(size, seeds[0]), lama(size, seeds[0]), covid19(size, seeds[0])] {
        let ner = dataset_recognizer(&dataset);
        // Three disjoint stride samples, like the paper's repeated runs.
        let samples: Vec<EntityAudit> =
            (0..3).map(|k| audit_entities_offset(&dataset, &ner, 100, k * 7 + 1)).collect();
        let full = audit_entities(&dataset, &ner, 0);
        text.push_str(&format!(
            "\n== {} ==\n   recognition rate (samples): {}\n   full corpus: recognition {:.2}%, no-entity {:.2}%, location {:.2}%, location+other {:.2}%\n",
            dataset.name,
            samples
                .iter()
                .map(|a| format!("{:.2}%", a.recognition_rate * 100.0))
                .collect::<Vec<_>>()
                .join(", "),
            full.recognition_rate * 100.0,
            full.no_entity_fraction * 100.0,
            full.location_fraction * 100.0,
            full.location_and_other_fraction * 100.0
        ));
        out.push(DatasetAudit { dataset: dataset.name.clone(), samples, full });
    }
    print!("{text}");
    edge_bench::write_results("audit", &out, &text).expect("write results");
    edge_obs::progress!("wrote results/audit.{{json,txt}}");
}
