//! Regenerates **Figure 1**: the geographic distribution of tweets
//! mentioning "quarantine" in New York across the paper's two COVID
//! windows — 03/12–03/22/2020 and 03/22–04/02/2020 — with locations
//! *predicted by the model* (the paper's caption: "the location
//! distribution of those tweets was predicted by our model").
//!
//! Usage: `cargo run --release -p edge-bench --bin fig1 [--size default]`

use serde::Serialize;

use edge_core::{EdgeConfig, EdgeModel, Geolocator, TrainOptions};
use edge_data::{covid19, dataset_recognizer, PresetSize, SimDate};
use edge_geo::{Grid, Heatmap, Point};

#[derive(Serialize)]
struct Window {
    label: String,
    n_tweets: usize,
    predicted_points: Vec<Point>,
    heatmap: Vec<f64>,
    hotspots: Vec<(Point, f64)>,
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let dataset = covid19(size, seeds[0]);
    let config = match size {
        PresetSize::Smoke => EdgeConfig::smoke(),
        _ => EdgeConfig::fast(),
    };
    let (train, _) = dataset.paper_split();
    let (model, _) = EdgeModel::train(
        train,
        dataset_recognizer(&dataset),
        &dataset.bbox,
        config,
        &TrainOptions::default(),
    )
    .expect("train");

    let windows = [
        ("03/12/2020-03/22/2020", SimDate::new(2020, 3, 12), SimDate::new(2020, 3, 22)),
        ("03/22/2020-04/02/2020", SimDate::new(2020, 3, 22), SimDate::new(2020, 4, 2)),
    ];
    let grid = Grid::new(dataset.bbox, 60, 60);
    let mut out = Vec::new();
    let mut text = String::from("Figure 1: predicted distribution of \"quarantine\" tweets\n");
    for (label, start, end) in windows {
        let tweets: Vec<_> = dataset
            .window(start, end)
            .into_iter()
            .filter(|t| t.text.to_lowercase().contains("quarantine"))
            .collect();
        let predicted: Vec<Point> =
            tweets.iter().filter_map(|t| model.predict_point(&t.text)).collect();
        let heat = Heatmap::from_points(grid.clone(), &predicted, 1.5);
        text.push_str(&format!(
            "\n-- window {label}: {} quarantine tweets, {} predicted --\n{}",
            tweets.len(),
            predicted.len(),
            heat.render_ascii(60)
        ));
        out.push(Window {
            label: label.to_string(),
            n_tweets: tweets.len(),
            heatmap: heat.values().to_vec(),
            hotspots: heat.hotspots(5),
            predicted_points: predicted,
        });
    }
    // The spreading statistic the paper's narrative claims: dispersion grows.
    let dispersion = |pts: &[Point]| -> f64 {
        edge_geo::point::centroid(pts)
            .map(|c| pts.iter().map(|p| p.haversine_km(&c)).sum::<f64>() / pts.len() as f64)
            .unwrap_or(0.0)
    };
    let d_early = dispersion(&out[0].predicted_points);
    let d_late = dispersion(&out[1].predicted_points);
    text.push_str(&format!(
        "\nspatial dispersion (mean km to centroid): early {d_early:.2} km -> late {d_late:.2} km\n"
    ));
    print!("{text}");
    edge_bench::write_results("fig1", &out, &text).expect("write results");
    edge_obs::progress!("wrote results/fig1.{{json,txt}}");
}
