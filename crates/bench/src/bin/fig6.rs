//! Regenerates **Figure 6** (parameter sensitivity): the impact of the
//! number of mixture components `M` and of the embedding length `d` on
//! EDGE's accuracy (the paper's Section IV sensitivity analysis; its
//! defaults are M = 4, d = 400).
//!
//! Runs on NYMA (the largest corpus — sensitivity trends on the small
//! COVID subset drown in seed noise) and averages over `--seeds`.
//!
//! Usage: `cargo run --release -p edge-bench --bin fig6 [--size default] [--seeds 2]`

use serde::Serialize;

use edge_bench::{average_reports, run_edge};
use edge_core::EdgeConfig;
use edge_data::{nyma, PresetSize};
use edge_geo::DistanceReport;

#[derive(Serialize)]
struct SweepPoint {
    parameter: String,
    value: usize,
    report: DistanceReport,
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let base = match size {
        PresetSize::Smoke => EdgeConfig::smoke(),
        _ => EdgeConfig::fast(),
    };
    let dataset = nyma(size, seeds[0]);

    let run_averaged = |c: &EdgeConfig| -> DistanceReport {
        let reports: Vec<DistanceReport> = seeds
            .iter()
            .map(|&s| {
                let mut cfg = c.clone();
                cfg.seed = s;
                cfg.sgns.seed = s ^ 0xbeef;
                run_edge(&dataset, &cfg).0
            })
            .collect();
        average_reports(&reports)
    };

    let mut points = Vec::new();
    let mut text = format!(
        "Figure 6: parameter sensitivity on NYMA ({} seed(s))\n\n(a) number of mixture components M\n",
        seeds.len()
    );
    text.push_str(&format!(
        "{:>4} {:>9} {:>11} {:>8} {:>8}\n",
        "M", "Mean(km)", "Median(km)", "@3km", "@5km"
    ));
    for m in [1usize, 2, 4, 6, 8] {
        let mut c = base.clone();
        c.n_components = m;
        let report = run_averaged(&c);
        text.push_str(&format!(
            "{m:>4} {:>9.2} {:>11.2} {:>8.4} {:>8.4}\n",
            report.mean_km, report.median_km, report.at_3km, report.at_5km
        ));
        points.push(SweepPoint { parameter: "M".into(), value: m, report });
    }

    text.push_str("\n(b) embedding length d\n");
    text.push_str(&format!(
        "{:>4} {:>9} {:>11} {:>8} {:>8}\n",
        "d", "Mean(km)", "Median(km)", "@3km", "@5km"
    ));
    let dims: &[usize] = match size {
        PresetSize::Smoke => &[8, 16, 32],
        _ => &[16, 32, 64, 128],
    };
    for &d in dims {
        let mut c = base.clone();
        c.embed_dim = d;
        c.hidden_dim = d;
        c.sgns.dim = d;
        let report = run_averaged(&c);
        text.push_str(&format!(
            "{d:>4} {:>9.2} {:>11.2} {:>8.4} {:>8.4}\n",
            report.mean_km, report.median_km, report.at_3km, report.at_5km
        ));
        points.push(SweepPoint { parameter: "d".into(), value: d, report });
    }
    print!("{text}");
    edge_bench::write_results("fig6", &points, &text).expect("write results");
    edge_obs::progress!("wrote results/fig6.{{json,txt}}");
}
