//! Regenerates **Figure 5**: the impact of the radius `r` on EDGE's RDP
//! (Radius Density Precision) with M = 4, on all three datasets.
//!
//! RDP(r) is the probability mass the predicted mixture places within `r`
//! km of the true location, averaged over the test set (see DESIGN.md §1
//! for the metric-reconstruction note).
//!
//! Usage: `cargo run --release -p edge-bench --bin fig5 [--size default]`

use serde::Serialize;

use edge_bench::edge_rdp_sweep;
use edge_core::EdgeConfig;
use edge_data::{covid19, lama, nyma, PresetSize};

#[derive(Serialize)]
struct Series {
    dataset: String,
    points: Vec<(f64, f64)>,
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let config = match size {
        PresetSize::Smoke => EdgeConfig::smoke(),
        _ => EdgeConfig::fast(),
    };
    assert_eq!(config.n_components, 4, "Figure 5 uses M = 4");
    let radii: Vec<f64> = (1..=10).map(|r| r as f64).collect();

    let mut series = Vec::new();
    let mut text = String::from("Figure 5: RDP vs r (M = 4)\n      r(km):");
    for r in &radii {
        text.push_str(&format!(" {r:>6.0}"));
    }
    text.push('\n');
    for dataset in [nyma(size, seeds[0]), lama(size, seeds[0]), covid19(size, seeds[0])] {
        let points = edge_rdp_sweep(&dataset, &config, &radii, 1500, seeds[0]);
        text.push_str(&format!("{:<12}", dataset.name));
        for (_, v) in &points {
            text.push_str(&format!(" {v:>6.3}"));
        }
        text.push('\n');
        series.push(Series { dataset: dataset.name.clone(), points });
    }
    print!("{text}");
    edge_bench::write_results("fig5", &series, &text).expect("write results");
    edge_obs::progress!("wrote results/fig5.{{json,txt}}");
}
