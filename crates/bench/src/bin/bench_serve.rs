//! Closed-loop serving benchmark: measures end-to-end `POST /predict`
//! throughput and latency against a live `edge-serve` server over real
//! sockets, in four legs (all on one keep-alive connection):
//!
//! 1. `unbatched` — one text per request, `max_batch = 1`, default server
//!    config (cache on): every request pays the full per-request fixed
//!    cost (syscalls, HTTP framing, scheduler handoff).
//! 2. `batched` — 32 texts per request, `max_batch = 32`, same config:
//!    the fixed cost is amortized across the batch. The headline
//!    `speedup_batched_vs_unbatched` is leg 2 over leg 1 — identical
//!    server defaults, only the batching differs.
//! 3. `unbatched-cold` / 4. `batched-cold` — the same pair with the
//!    response cache disabled, isolating the model-bound regime where
//!    every text pays the full inference cost (dominated by the
//!    mixture-mode gradient ascent, ~50us/text at smoke scale).
//!
//! Usage: `cargo run --release -p edge-bench --bin bench_serve [--size smoke]`
//!
//! Writes `results/BENCH_serve.{json,txt}`. The JSON object carries one
//! record per leg (throughput, p50/p95/p99 request latency, cache hit
//! rate, and the server-side per-stage latency decomposition medians
//! from the request ring) plus `speedup_batched_vs_unbatched` (warm
//! pair), `cold_speedup_batched_vs_unbatched` (cold pair),
//! `obs_overhead` — the warm batched throughput with the metrics layer
//! on vs off (interleaved reps, best of 5 each), which CI gates at <= 2%
//! — and `robustness_overhead`, the same comparison with the robustness
//! layer (deadline propagation, socket read/write budgets, brownout
//! controller) on vs off, gated at the same <= 2%.

use std::time::Instant;

use edge_core::EdgeModel;
use edge_obs::ring::{STAGE_BATCH, STAGE_INFERENCE, STAGE_PARSE, STAGE_QUEUE, STAGE_SERIALIZE};
use edge_serve::{Client, ServeConfig, Server};
use serde::Serialize;

/// How many texts each batched request carries (= leg 2's `max_batch`).
const BATCH: usize = 32;

/// Server-side medians of the ring's per-stage decomposition over the
/// leg's successful `/predict` requests.
#[derive(Clone, Copy, Serialize)]
struct StageMedians {
    parse_us: f64,
    queue_us: f64,
    batch_us: f64,
    inference_us: f64,
    serialize_us: f64,
}

#[derive(Serialize)]
struct LegRecord {
    leg: String,
    requests: usize,
    texts_per_request: usize,
    total_texts: usize,
    wall_secs: f64,
    texts_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    stage_median_us: StageMedians,
}

/// The warm batched leg rerun with the metrics layer on vs off.
#[derive(Serialize)]
struct ObsOverhead {
    enabled_texts_per_sec: f64,
    disabled_texts_per_sec: f64,
    /// `max(0, 1 - enabled/disabled)` — the throughput the observability
    /// layer costs on the warm batched path. CI gates this at <= 0.02.
    overhead_frac: f64,
}

/// The warm batched leg rerun with the robustness layer (deadline
/// propagation, read/write budgets, brownout controller) on vs off.
#[derive(Serialize)]
struct RobustnessOverhead {
    enabled_texts_per_sec: f64,
    disabled_texts_per_sec: f64,
    /// `max(0, 1 - enabled/disabled)` — what deadline checks, socket
    /// budgets, and controller ticks cost on the healthy warm batched
    /// path. CI gates this at <= 0.02.
    overhead_frac: f64,
}

#[derive(Serialize)]
struct ServeBenchOutput {
    threads: usize,
    corpus: String,
    covered_texts: usize,
    legs: Vec<LegRecord>,
    /// Leg "batched" texts/sec over leg "unbatched" texts/sec (both under
    /// the default server config).
    speedup_batched_vs_unbatched: f64,
    /// The same ratio with the response cache disabled in both legs.
    cold_speedup_batched_vs_unbatched: f64,
    obs_overhead: ObsOverhead,
    robustness_overhead: RobustnessOverhead,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Median of one ring stage over the leg's successful predict records.
/// Empty yields 0.0 (not NaN) so the JSON stays loadable.
fn stage_median(records: &[edge_obs::RequestRecord], stage: usize) -> f64 {
    let mut v: Vec<u64> = records.iter().map(|r| r.stage_us[stage]).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_unstable();
    v[v.len() / 2] as f64
}

/// Runs one closed-loop leg against a fresh server on an ephemeral port.
fn run_leg(
    name: &str,
    model_path: &str,
    config: ServeConfig,
    texts: &[String],
    texts_per_request: usize,
    requests: usize,
    warmup: usize,
) -> LegRecord {
    let config = ServeConfig { addr: "127.0.0.1:0".to_string(), ..config };
    let server = Server::start_from_artifact(model_path, config).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    let batch_at = |i: usize| -> Vec<&str> {
        (0..texts_per_request)
            .map(|j| texts[(i * texts_per_request + j) % texts.len()].as_str())
            .collect()
    };
    let shoot = |client: &mut Client, i: usize| {
        let refs = batch_at(i);
        let resp = if texts_per_request == 1 {
            client.predict(refs[0]).expect("predict")
        } else {
            client.predict_batch(&refs).expect("predict_batch")
        };
        assert_eq!(resp.status, 200, "bench traffic must succeed: {}", resp.text());
    };

    // Warmup: fault in lazy state (threads, allocator pools) and, when the
    // cache is on, populate it with the whole text pool so the timed
    // window measures the steady state.
    for i in 0..warmup {
        shoot(&mut client, i);
    }

    let mut latencies_us = Vec::with_capacity(requests);
    let started = Instant::now();
    for i in 0..requests {
        let t0 = Instant::now();
        shoot(&mut client, i);
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let (cache_hits, cache_misses) = server.cache_stats();
    // Per-stage decomposition from the request ring: the server's own view
    // of where each request's latency went.
    let ring: Vec<edge_obs::RequestRecord> = server
        .recent_requests(requests)
        .into_iter()
        .filter(|r| r.endpoint == "predict" && r.status == 200)
        .collect();
    let stage_median_us = StageMedians {
        parse_us: stage_median(&ring, STAGE_PARSE),
        queue_us: stage_median(&ring, STAGE_QUEUE),
        batch_us: stage_median(&ring, STAGE_BATCH),
        inference_us: stage_median(&ring, STAGE_INFERENCE),
        serialize_us: stage_median(&ring, STAGE_SERIALIZE),
    };
    server.shutdown();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_texts = requests * texts_per_request;
    let lookups = cache_hits + cache_misses;
    LegRecord {
        leg: name.to_string(),
        requests,
        texts_per_request,
        total_texts,
        wall_secs,
        texts_per_sec: total_texts as f64 / wall_secs,
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        cache_hits,
        cache_misses,
        cache_hit_rate: if lookups == 0 { 0.0 } else { cache_hits as f64 / lookups as f64 },
        stage_median_us,
    }
}

fn render_stage_table(legs: &[LegRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n{:<16} {:>9} {:>9} {:>9} {:>12} {:>12}\n",
        "stage medians", "parse us", "queue us", "batch us", "inference us", "serialize us"
    ));
    for l in legs {
        let s = &l.stage_median_us;
        out.push_str(&format!(
            "{:<16} {:>9.1} {:>9.1} {:>9.1} {:>12.1} {:>12.1}\n",
            l.leg, s.parse_us, s.queue_us, s.batch_us, s.inference_us, s.serialize_us
        ));
    }
    out
}

fn render_table(legs: &[LegRecord], speedup: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>9} {:>7} {:>12} {:>10} {:>10} {:>10} {:>9}\n",
        "leg", "requests", "texts", "texts/sec", "p50 us", "p95 us", "p99 us", "hit rate"
    ));
    for l in legs {
        out.push_str(&format!(
            "{:<16} {:>9} {:>7} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>8.1}%\n",
            l.leg,
            l.requests,
            l.total_texts,
            l.texts_per_sec,
            l.p50_us,
            l.p95_us,
            l.p99_us,
            l.cache_hit_rate * 100.0
        ));
    }
    out.push_str(&format!(
        "\nbatched vs unbatched speedup (default config): {speedup:.2}x (texts/sec)\n"
    ));
    out
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let dataset = edge_data::nyma(size, seeds[0]);
    edge_obs::progress!(
        "== serve bench on {} ({} tweets, {} threads) ==",
        dataset.name,
        dataset.len(),
        edge_par::num_threads()
    );

    // One trained artifact shared by every leg, so all legs serve
    // bit-identical parameters.
    let (train, test) = dataset.paper_split();
    let mut cfg = edge_core::EdgeConfig::smoke();
    cfg.epochs = 2;
    let (model, _) = EdgeModel::train(
        train,
        edge_data::dataset_recognizer(&dataset),
        &dataset.bbox,
        cfg,
        &Default::default(),
    )
    .expect("train");
    let model_path =
        std::env::temp_dir().join(format!("edge_bench_serve_{}.model.json", std::process::id()));
    model.save(&model_path).expect("save");
    let model_path = model_path.to_string_lossy().into_owned();

    let covered: Vec<String> = test
        .iter()
        .filter(|t| !model.resolve_entities(&t.text).is_empty())
        .map(|t| t.text.clone())
        .collect();
    assert!(covered.len() >= BATCH, "corpus too small to fill one batch");
    edge_obs::progress!("   artifact {model_path}, {} covered texts", covered.len());

    // A fixed text pool shared by every leg, small enough that the warm
    // legs reach cache steady state during warmup.
    let pool: Vec<String> = covered.iter().take(256).cloned().collect();
    let warm =
        |max_batch: usize| ServeConfig { max_batch, max_delay_us: 200, ..ServeConfig::default() };
    let cold = |max_batch: usize| ServeConfig { cache_capacity: 0, ..warm(max_batch) };

    // Warm pair: identical default config, only the batching differs. The
    // warmup covers the pool at least once so the cache is populated.
    let unbatched = run_leg("unbatched", &model_path, warm(1), &pool, 1, 2000, pool.len() + 50);
    edge_obs::progress!("   unbatched       {:>10.0} texts/sec", unbatched.texts_per_sec);
    let batched =
        run_leg("batched", &model_path, warm(BATCH), &pool, BATCH, 400, pool.len() / BATCH + 10);
    edge_obs::progress!("   batched         {:>10.0} texts/sec", batched.texts_per_sec);

    // Cold pair: same comparison with the cache disabled (model-bound).
    let unbatched_cold = run_leg("unbatched-cold", &model_path, cold(1), &pool, 1, 600, 60);
    edge_obs::progress!("   unbatched-cold  {:>10.0} texts/sec", unbatched_cold.texts_per_sec);
    let batched_cold = run_leg("batched-cold", &model_path, cold(BATCH), &pool, BATCH, 200, 10);
    edge_obs::progress!("   batched-cold    {:>10.0} texts/sec", batched_cold.texts_per_sec);

    // Observability overhead: the warm batched leg with the metrics layer
    // on vs off. The ring and the stage cells stay on in both legs (they
    // are always-on by design); the comparison isolates the
    // counters/histograms/labels hot path. Reps are interleaved on/off and
    // each side takes its best, so slow machine-wide drift (thermal,
    // neighbors) hits both sides equally instead of biasing one.
    let obs_rep = |enable_metrics: bool| {
        let name = if enable_metrics { "obs-on" } else { "obs-off" };
        let config = ServeConfig { enable_metrics, ..warm(BATCH) };
        run_leg(name, &model_path, config, &pool, BATCH, 300, pool.len() / BATCH + 5).texts_per_sec
    };
    let (mut obs_on, mut obs_off) = (0.0f64, 0.0f64);
    for _ in 0..5 {
        obs_on = obs_on.max(obs_rep(true));
        obs_off = obs_off.max(obs_rep(false));
    }
    let obs_overhead = ObsOverhead {
        enabled_texts_per_sec: obs_on,
        disabled_texts_per_sec: obs_off,
        overhead_frac: (1.0 - obs_on / obs_off).max(0.0),
    };
    edge_obs::progress!(
        "   obs overhead    {:>9.2}% (on {:.0} vs off {:.0} texts/sec)",
        obs_overhead.overhead_frac * 100.0,
        obs_on,
        obs_off
    );

    // Robustness overhead: the warm batched leg with the robustness layer
    // on (server defaults: deadline budget armed, read/write socket
    // budgets, brownout controller ticking) vs off (all three disabled).
    // Same interleaved best-of discipline as the obs comparison. These
    // legs are measured but deliberately NOT appended to `legs`, whose
    // membership CI asserts exactly.
    let robust_rep = |enabled: bool| {
        let name = if enabled { "robust-on" } else { "robust-off" };
        let config = if enabled {
            warm(BATCH)
        } else {
            ServeConfig {
                default_deadline_us: 0,
                read_budget_us: 0,
                write_timeout_us: 0,
                brownout_enabled: false,
                ..warm(BATCH)
            }
        };
        run_leg(name, &model_path, config, &pool, BATCH, 300, pool.len() / BATCH + 5).texts_per_sec
    };
    let (mut robust_on, mut robust_off) = (0.0f64, 0.0f64);
    for _ in 0..5 {
        robust_on = robust_on.max(robust_rep(true));
        robust_off = robust_off.max(robust_rep(false));
    }
    let robustness_overhead = RobustnessOverhead {
        enabled_texts_per_sec: robust_on,
        disabled_texts_per_sec: robust_off,
        overhead_frac: (1.0 - robust_on / robust_off).max(0.0),
    };
    edge_obs::progress!(
        "   robust overhead {:>9.2}% (on {:.0} vs off {:.0} texts/sec)",
        robustness_overhead.overhead_frac * 100.0,
        robust_on,
        robust_off
    );

    let speedup = batched.texts_per_sec / unbatched.texts_per_sec;
    let cold_speedup = batched_cold.texts_per_sec / unbatched_cold.texts_per_sec;
    let legs = vec![unbatched, batched, unbatched_cold, batched_cold];
    let text = format!(
        "Serve bench ({size:?} scale): closed-loop POST /predict over real sockets\n{}{}\nobs overhead (warm batched, metrics on vs off): {:.2}%\nrobustness overhead (warm batched, deadlines+budgets+brownout on vs off): {:.2}%\n",
        render_table(&legs, speedup),
        render_stage_table(&legs),
        obs_overhead.overhead_frac * 100.0,
        robustness_overhead.overhead_frac * 100.0
    );
    print!("{text}");
    let output = ServeBenchOutput {
        threads: edge_par::num_threads(),
        corpus: dataset.name.clone(),
        covered_texts: covered.len(),
        legs,
        speedup_batched_vs_unbatched: speedup,
        cold_speedup_batched_vs_unbatched: cold_speedup,
        obs_overhead,
        robustness_overhead,
    };
    edge_bench::write_results("BENCH_serve", &output, &text).expect("write results");
    std::fs::remove_file(&model_path).ok();
    edge_obs::progress!("wrote results/BENCH_serve.{{json,txt}}");
}
