//! Closed-loop serving benchmark: measures end-to-end `POST /predict`
//! throughput and latency against a live `edge-serve` server over real
//! sockets, in four classic legs (all on one keep-alive connection):
//!
//! 1. `unbatched` — one text per request, `max_batch = 1`, default server
//!    config (cache on): every request pays the full per-request fixed
//!    cost (syscalls, HTTP framing, scheduler handoff).
//! 2. `batched` — 32 texts per request, `max_batch = 32`, same config:
//!    the fixed cost is amortized across the batch. The headline
//!    `speedup_batched_vs_unbatched` is leg 2 over leg 1 — identical
//!    server defaults, only the batching differs.
//! 3. `unbatched-cold` / 4. `batched-cold` — the same pair with the
//!    response cache disabled, isolating the model-bound regime where
//!    every text pays the full inference cost (dominated by the
//!    mixture-mode gradient ascent, ~50us/text at smoke scale).
//!
//! On top of the classic legs, the event-loop/router stack gets its own
//! measurements:
//!
//! - `high_concurrency` — the server holds 10k+ idle keep-alive
//!   connections (the epoll interest list, not threads, carries them)
//!   while a foreground client drives batched predict traffic; latency
//!   must stay flat and nothing may shed.
//! - `multi_shard` — the warm batched leg against a two-shard routed
//!   server, with the per-shard latency/shed decomposition from the
//!   `serve_shard_*` metric families.
//! - `router_overhead` — interleaved best-of-5 warm batched throughput,
//!   two-shard routed vs single-shard (the single-model path
//!   short-circuits routing entirely; the two-shard side pays one extra
//!   union-gazetteer pass per text for the routing decision).
//!
//! Usage: `cargo run --release -p edge-bench --bin bench_serve [--size smoke]`
//!
//! Writes `results/BENCH_serve.{json,txt}`. Cache counters are snapshot
//! after warmup and subtracted, so each leg's hit/miss numbers cover
//! exactly the measured window (warmup traffic used to leak in).

use std::net::TcpStream;
use std::time::Instant;

use edge_core::{
    ArtifactLoad, EdgeModel, ModelArtifact, PredictOptions, PredictRequest, Predictor, QuantMode,
};
use edge_obs::ring::{STAGE_BATCH, STAGE_INFERENCE, STAGE_PARSE, STAGE_QUEUE, STAGE_SERIALIZE};
use edge_serve::{Client, ServeConfig, Server};
use serde::Serialize;

/// How many texts each batched request carries (= leg 2's `max_batch`).
const BATCH: usize = 32;

/// Idle keep-alive connections the high-concurrency leg holds open.
const HIGH_CONC_TARGET: usize = 10_000;

/// Server-side medians of the ring's per-stage decomposition over the
/// leg's successful `/predict` requests.
#[derive(Clone, Copy, Serialize)]
struct StageMedians {
    parse_us: f64,
    queue_us: f64,
    batch_us: f64,
    inference_us: f64,
    serialize_us: f64,
}

/// One shard's view of a leg, from the `serve_shard_*` labeled families
/// scraped off `/metrics` at the end of the measured window.
#[derive(Clone, Serialize)]
struct ShardStat {
    shard: String,
    requests: f64,
    texts: f64,
    p50_us: f64,
    p99_us: f64,
    shed_rate: f64,
}

#[derive(Serialize)]
struct LegRecord {
    leg: String,
    requests: usize,
    texts_per_request: usize,
    total_texts: usize,
    wall_secs: f64,
    texts_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    /// Cache traffic within the measured window only (warmup subtracted).
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    stage_median_us: StageMedians,
    per_shard: Vec<ShardStat>,
}

/// The warm batched leg rerun with the metrics layer on vs off.
#[derive(Serialize)]
struct ObsOverhead {
    enabled_texts_per_sec: f64,
    disabled_texts_per_sec: f64,
    /// `max(0, 1 - enabled/disabled)` — the throughput the observability
    /// layer costs on the warm batched path. CI gates this at <= 0.02.
    overhead_frac: f64,
}

/// The warm batched leg rerun with the robustness layer (deadline
/// propagation, read/write budgets, brownout controller) on vs off.
#[derive(Serialize)]
struct RobustnessOverhead {
    enabled_texts_per_sec: f64,
    disabled_texts_per_sec: f64,
    /// `max(0, 1 - enabled/disabled)` — what deadline checks, socket
    /// budgets, and controller ticks cost on the healthy warm batched
    /// path. CI gates this at <= 0.02.
    overhead_frac: f64,
}

/// The warm batched leg against a two-shard routed server vs the
/// single-shard short-circuit path, interleaved best-of-5 each.
#[derive(Serialize)]
struct RouterOverhead {
    single_shard_texts_per_sec: f64,
    multi_shard_texts_per_sec: f64,
    /// `max(0, 1 - multi/single)`: what a real routing decision (one
    /// union-gazetteer pass per text) costs against the cache-hit-bound
    /// warm path. The single-model path pays none of it (short-circuit).
    overhead_frac: f64,
}

/// The 10k-connection leg: idle keep-alive connections held open while
/// foreground batched traffic measures latency under epoll load.
#[derive(Serialize)]
struct HighConcurrency {
    target_connections: usize,
    connections_held: usize,
    requests: usize,
    texts_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    per_shard: Vec<ShardStat>,
}

/// Replica cold start: artifact open → model ready → first successful
/// prediction, legacy JSON envelope vs zero-copy mapped layout. Each
/// sample loads a fresh model (what one more serve replica pays).
#[derive(Serialize)]
struct ColdStart {
    replicas: usize,
    /// Median per-replica legacy cold start (deserialize + GCN recompute
    /// + first predict), microseconds.
    legacy_us: f64,
    /// Median per-replica mapped cold start (mmap open + meta parse +
    /// first predict), microseconds.
    mmap_us: f64,
    /// `legacy_us / mmap_us` — the headline the CI gate holds ≥ 10.
    speedup: f64,
}

/// One quantization mode's accuracy/size against the f32 baseline on the
/// full test split.
#[derive(Serialize)]
struct QuantLeg {
    mode: String,
    artifact_bytes: u64,
    mean_km: f64,
    /// `|mean_km - f32 mean_km|` — the CI drift gate.
    drift_km: f64,
}

#[derive(Serialize)]
struct Quantization {
    f32_artifact_bytes: u64,
    f32_mean_km: f64,
    modes: Vec<QuantLeg>,
}

#[derive(Serialize)]
struct ServeBenchOutput {
    threads: usize,
    corpus: String,
    covered_texts: usize,
    legs: Vec<LegRecord>,
    /// Leg "batched" texts/sec over leg "unbatched" texts/sec (both under
    /// the default server config).
    speedup_batched_vs_unbatched: f64,
    /// The same ratio with the response cache disabled in both legs.
    cold_speedup_batched_vs_unbatched: f64,
    obs_overhead: ObsOverhead,
    robustness_overhead: RobustnessOverhead,
    router_overhead: RouterOverhead,
    multi_shard: LegRecord,
    high_concurrency: HighConcurrency,
    cold_start: ColdStart,
    quantization: Quantization,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Median of one ring stage over the leg's successful predict records.
/// Empty yields 0.0 (not NaN) so the JSON stays loadable.
fn stage_median(records: &[edge_obs::RequestRecord], stage: usize) -> f64 {
    let mut v: Vec<u64> = records.iter().map(|r| r.stage_us[stage]).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_unstable();
    v[v.len() / 2] as f64
}

/// Scrapes `/metrics` and extracts each shard's request/latency/shed view.
/// Restricted to `server`'s own shard names: the metrics registry is
/// process-global, so earlier legs' shard families (every leg starts a
/// fresh server in this one process) still appear in the exposition.
fn scrape_shards(client: &mut Client, server: &Server) -> Vec<ShardStat> {
    let Ok(resp) = client.request("GET", "/metrics", b"") else { return Vec::new() };
    if resp.status != 200 {
        return Vec::new();
    }
    let Ok(scrape) = edge_obs::openmetrics::parse(resp.text()) else { return Vec::new() };
    let shards: Vec<String> = server.shard_names().iter().map(|s| s.to_string()).collect();
    shards
        .into_iter()
        .map(|shard| {
            let l: &[(&str, &str)] = &[("shard", &shard)];
            let val = |name: &str| scrape.value(name, l).unwrap_or(0.0);
            ShardStat {
                requests: val("serve_shard_requests_total"),
                texts: val("serve_shard_texts_total"),
                p50_us: val("serve_shard_request_us_p50"),
                p99_us: val("serve_shard_request_us_p99"),
                shed_rate: val("serve_shard_shed_rate"),
                shard,
            }
        })
        .collect()
}

/// Runs one closed-loop leg against a freshly started server.
fn run_leg(
    name: &str,
    make_server: &dyn Fn() -> Server,
    texts: &[String],
    texts_per_request: usize,
    requests: usize,
    warmup: usize,
) -> LegRecord {
    let server = make_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    let batch_at = |i: usize| -> Vec<&str> {
        (0..texts_per_request)
            .map(|j| texts[(i * texts_per_request + j) % texts.len()].as_str())
            .collect()
    };
    let shoot = |client: &mut Client, i: usize| {
        let refs = batch_at(i);
        let resp = if texts_per_request == 1 {
            client.predict(refs[0]).expect("predict")
        } else {
            client.predict_batch(&refs).expect("predict_batch")
        };
        assert_eq!(resp.status, 200, "bench traffic must succeed: {}", resp.text());
    };

    // Warmup: fault in lazy state (threads, allocator pools) and, when the
    // cache is on, populate it with the whole text pool so the timed
    // window measures the steady state.
    for i in 0..warmup {
        shoot(&mut client, i);
    }
    // Counter baseline at the end of warmup, so the reported hit/miss
    // numbers cover exactly the measured window below.
    let (warm_hits, warm_misses) = server.cache_stats();

    let mut latencies_us = Vec::with_capacity(requests);
    let started = Instant::now();
    for i in 0..requests {
        let t0 = Instant::now();
        shoot(&mut client, i);
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let (total_hits, total_misses) = server.cache_stats();
    let (cache_hits, cache_misses) = (total_hits - warm_hits, total_misses - warm_misses);
    // Per-stage decomposition from the request ring: the server's own view
    // of where each request's latency went.
    let ring: Vec<edge_obs::RequestRecord> = server
        .recent_requests(requests)
        .into_iter()
        .filter(|r| r.endpoint == "predict" && r.status == 200)
        .collect();
    let stage_median_us = StageMedians {
        parse_us: stage_median(&ring, STAGE_PARSE),
        queue_us: stage_median(&ring, STAGE_QUEUE),
        batch_us: stage_median(&ring, STAGE_BATCH),
        inference_us: stage_median(&ring, STAGE_INFERENCE),
        serialize_us: stage_median(&ring, STAGE_SERIALIZE),
    };
    let per_shard = scrape_shards(&mut client, &server);
    server.shutdown();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_texts = requests * texts_per_request;
    let lookups = cache_hits + cache_misses;
    LegRecord {
        leg: name.to_string(),
        requests,
        texts_per_request,
        total_texts,
        wall_secs,
        texts_per_sec: total_texts as f64 / wall_secs,
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        cache_hits,
        cache_misses,
        cache_hit_rate: if lookups == 0 { 0.0 } else { cache_hits as f64 / lookups as f64 },
        stage_median_us,
        per_shard,
    }
}

/// Re-execed child mode for the high-concurrency leg: opens `count` idle
/// keep-alive connections to `addr`, reports how many it holds on
/// stdout, then holds them until stdin closes. A child process per herd
/// slice keeps the *client-side* fds out of the server process's
/// `RLIMIT_NOFILE` budget — the server pays one fd per connection, not
/// two.
fn herd_child(spec: &str) -> ! {
    use std::io::{BufRead, Write};
    let (addr, count) = spec.split_once(' ').expect("herd spec is 'addr count'");
    let count: usize = count.parse().expect("herd count");
    edge_serve::reactor::raise_nofile_limit((count + 512) as u64).ok();
    let mut herd: Vec<TcpStream> = Vec::with_capacity(count);
    let mut retries = 0u32;
    // The listen backlog is finite and several children connect at once,
    // so transient failures back off and retry instead of giving up.
    while herd.len() < count && retries < 5_000 {
        match TcpStream::connect(addr) {
            Ok(s) => herd.push(s),
            Err(_) => {
                retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    }
    println!("held {}", herd.len());
    std::io::stdout().flush().ok();
    // Hold until the parent closes our stdin.
    let mut line = String::new();
    while std::io::stdin().lock().read_line(&mut line).map(|n| n > 0).unwrap_or(false) {}
    std::process::exit(0);
}

/// Holds 10k+ idle keep-alive connections against the server (in herd
/// child processes) while a foreground client measures batched predict
/// latency.
fn run_high_concurrency(model_path: &str, texts: &[String]) -> HighConcurrency {
    // The epoll loops need one fd per held connection; the client ends
    // live in child processes with their own fd budgets.
    let wanted = (HIGH_CONC_TARGET + 1024) as u64;
    match edge_serve::reactor::raise_nofile_limit(wanted) {
        Ok(limit) => edge_obs::progress!("   nofile limit {limit} (wanted {wanted})"),
        Err(e) => edge_obs::progress!("   nofile limit raise failed: {e}"),
    }

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_batch: BATCH,
        max_delay_us: 200,
        ..ServeConfig::default()
    };
    let server = Server::start_from_artifact(model_path, config).expect("server starts");
    let addr = server.addr();

    // Spawn the herd: children of ~2500 connections each.
    const SLICE: usize = 2_500;
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    let mut remaining = HIGH_CONC_TARGET;
    while remaining > 0 {
        let count = remaining.min(SLICE);
        remaining -= count;
        let child = std::process::Command::new(&exe)
            .env("EDGE_BENCH_HERD", format!("{addr} {count}"))
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn herd child");
        children.push(child);
    }
    let mut connections_held = 0usize;
    let mut readers = Vec::new();
    for child in &mut children {
        let stdout = child.stdout.take().expect("child stdout");
        let mut reader = std::io::BufReader::new(stdout);
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).expect("herd child reports");
        let held: usize =
            line.trim().strip_prefix("held ").and_then(|n| n.parse().ok()).unwrap_or(0);
        connections_held += held;
        readers.push(reader);
    }
    edge_obs::progress!("   holding {connections_held} idle keep-alive connections");

    // Foreground traffic while the herd sits idle on the interest lists.
    let mut client = Client::connect(addr).expect("connect");
    let refs_at = |i: usize| -> Vec<&str> {
        (0..BATCH).map(|j| texts[(i * BATCH + j) % texts.len()].as_str()).collect()
    };
    let warmup = texts.len() / BATCH + 10;
    for i in 0..warmup {
        let resp = client.predict_batch(&refs_at(i)).expect("predict_batch");
        assert_eq!(resp.status, 200);
    }
    let requests = 300;
    let mut latencies_us = Vec::with_capacity(requests);
    let started = Instant::now();
    for i in 0..requests {
        let t0 = Instant::now();
        let resp = client.predict_batch(&refs_at(i)).expect("predict_batch");
        assert_eq!(resp.status, 200, "traffic under connection load must succeed");
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let per_shard = scrape_shards(&mut client, &server);
    // Closing each child's stdin releases its herd slice; reap them
    // before tearing the server down.
    for child in &mut children {
        drop(child.stdin.take());
    }
    drop(readers);
    for mut child in children {
        child.wait().ok();
    }
    server.shutdown();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    HighConcurrency {
        target_connections: HIGH_CONC_TARGET,
        connections_held,
        requests,
        texts_per_sec: (requests * BATCH) as f64 / wall_secs,
        p50_us: percentile(&latencies_us, 50.0),
        p99_us: percentile(&latencies_us, 99.0),
        per_shard,
    }
}

fn render_stage_table(legs: &[LegRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n{:<16} {:>9} {:>9} {:>9} {:>12} {:>12}\n",
        "stage medians", "parse us", "queue us", "batch us", "inference us", "serialize us"
    ));
    for l in legs {
        let s = &l.stage_median_us;
        out.push_str(&format!(
            "{:<16} {:>9.1} {:>9.1} {:>9.1} {:>12.1} {:>12.1}\n",
            l.leg, s.parse_us, s.queue_us, s.batch_us, s.inference_us, s.serialize_us
        ));
    }
    out
}

fn render_table(legs: &[LegRecord], speedup: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>9} {:>7} {:>12} {:>10} {:>10} {:>10} {:>9}\n",
        "leg", "requests", "texts", "texts/sec", "p50 us", "p95 us", "p99 us", "hit rate"
    ));
    for l in legs {
        out.push_str(&format!(
            "{:<16} {:>9} {:>7} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>8.1}%\n",
            l.leg,
            l.requests,
            l.total_texts,
            l.texts_per_sec,
            l.p50_us,
            l.p95_us,
            l.p99_us,
            l.cache_hit_rate * 100.0
        ));
    }
    out.push_str(&format!(
        "\nbatched vs unbatched speedup (default config): {speedup:.2}x (texts/sec)\n"
    ));
    out
}

/// Median of raw microsecond samples.
fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Measures per-replica cold start for both formats: each sample loads a
/// fresh model from disk and answers one prediction (the serve pipeline's
/// replica spin-up path, minus the socket).
fn run_cold_start(legacy_path: &str, mmap_path: &str, text: &str, replicas: usize) -> ColdStart {
    let req = PredictRequest::text(text);
    let opts = PredictOptions::default();
    let mut legacy = Vec::with_capacity(replicas);
    let mut mapped = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let t0 = Instant::now();
        #[allow(deprecated)] // this leg exists to measure the legacy loader
        let m = EdgeModel::load(legacy_path).expect("legacy load");
        m.locate(&req, &opts).expect("first predict");
        legacy.push(t0.elapsed().as_secs_f64() * 1e6);

        let t0 = Instant::now();
        let m = ModelArtifact::open(mmap_path).expect("open").load_model().expect("load");
        m.locate(&req, &opts).expect("first predict");
        mapped.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let legacy_us = median_us(&mut legacy);
    let mmap_us = median_us(&mut mapped);
    ColdStart { replicas, legacy_us, mmap_us, speedup: legacy_us / mmap_us }
}

/// Saves the model under each quantization mode, reloads it, and scores
/// the full test split — the accuracy-drift gate for quantized serving.
fn run_quantization(model: &EdgeModel, test: &[edge_data::Tweet], mmap_path: &str) -> Quantization {
    let opts = PredictOptions::default();
    let mean_of = |m: &EdgeModel| {
        m.evaluate(test, &opts).report().expect("quant eval covers the test split").mean_km
    };
    let f32_mean_km = mean_of(model);
    let f32_artifact_bytes = std::fs::metadata(mmap_path).expect("stat f32").len();
    let modes = [QuantMode::F16, QuantMode::Int8]
        .into_iter()
        .map(|quant| {
            let path = std::env::temp_dir()
                .join(format!("edge_bench_serve_{}.{quant}", std::process::id()));
            model.save_artifact(&path, quant).expect("quantized save");
            let artifact_bytes = std::fs::metadata(&path).expect("stat").len();
            let loaded = ModelArtifact::open(&path).expect("open").load_model().expect("load");
            let mean_km = mean_of(&loaded);
            std::fs::remove_file(&path).ok();
            QuantLeg {
                mode: quant.to_string(),
                artifact_bytes,
                mean_km,
                drift_km: (mean_km - f32_mean_km).abs(),
            }
        })
        .collect();
    Quantization { f32_artifact_bytes, f32_mean_km, modes }
}

fn main() {
    if let Ok(spec) = std::env::var("EDGE_BENCH_HERD") {
        herd_child(&spec);
    }
    let (size, seeds) = edge_bench::parse_cli();
    let dataset = edge_data::nyma(size, seeds[0]);
    edge_obs::progress!(
        "== serve bench on {} ({} tweets, {} threads) ==",
        dataset.name,
        dataset.len(),
        edge_par::num_threads()
    );

    // One trained artifact shared by every leg, so all legs serve
    // bit-identical parameters.
    let (train, test) = dataset.paper_split();
    let mut cfg = edge_core::EdgeConfig::smoke();
    cfg.epochs = 2;
    let (model, _) = EdgeModel::train(
        train,
        edge_data::dataset_recognizer(&dataset),
        &dataset.bbox,
        cfg,
        &Default::default(),
    )
    .expect("train");
    let model_path =
        std::env::temp_dir().join(format!("edge_bench_serve_{}.edgemap", std::process::id()));
    model.save_artifact(&model_path, QuantMode::None).expect("save");
    let legacy_path =
        std::env::temp_dir().join(format!("edge_bench_serve_{}.model.json", std::process::id()));
    #[allow(deprecated)] // the cold-start leg measures the legacy loader
    model.save(&legacy_path).expect("legacy save");
    let model_path = model_path.to_string_lossy().into_owned();
    let legacy_path = legacy_path.to_string_lossy().into_owned();

    let covered: Vec<String> = test
        .iter()
        .filter(|t| !model.resolve_entities(&t.text).is_empty())
        .map(|t| t.text.clone())
        .collect();
    assert!(covered.len() >= BATCH, "corpus too small to fill one batch");
    edge_obs::progress!("   artifact {model_path}, {} covered texts", covered.len());

    // A fixed text pool shared by every leg, small enough that the warm
    // legs reach cache steady state during warmup.
    let pool: Vec<String> = covered.iter().take(256).cloned().collect();
    let warm = |max_batch: usize| ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_batch,
        max_delay_us: 200,
        ..ServeConfig::default()
    };
    let cold = |max_batch: usize| ServeConfig { cache_capacity: 0, ..warm(max_batch) };
    let single = |config: ServeConfig| {
        let path = model_path.clone();
        move || Server::start_from_artifact(&path, config.clone()).expect("server starts")
    };
    // Two shards off the same artifact: both gazetteers know every
    // entity, so affinity always ties and routing exercises the
    // consistent-hash path on every text.
    let multi = |config: ServeConfig| {
        let path = model_path.clone();
        move || {
            let east = EdgeModel::load_artifact(&path).expect("load");
            let west = EdgeModel::load_artifact(&path).expect("load");
            Server::start_shards(
                vec![("east".to_string(), east), ("west".to_string(), west)],
                config.clone(),
            )
            .expect("server starts")
        }
    };

    // Warm pair: identical default config, only the batching differs. The
    // warmup covers the pool at least once so the cache is populated.
    let unbatched = run_leg("unbatched", &single(warm(1)), &pool, 1, 2000, pool.len() + 50);
    edge_obs::progress!("   unbatched       {:>10.0} texts/sec", unbatched.texts_per_sec);
    let batched =
        run_leg("batched", &single(warm(BATCH)), &pool, BATCH, 400, pool.len() / BATCH + 10);
    edge_obs::progress!("   batched         {:>10.0} texts/sec", batched.texts_per_sec);

    // Cold pair: same comparison with the cache disabled (model-bound).
    let unbatched_cold = run_leg("unbatched-cold", &single(cold(1)), &pool, 1, 600, 60);
    edge_obs::progress!("   unbatched-cold  {:>10.0} texts/sec", unbatched_cold.texts_per_sec);
    let batched_cold = run_leg("batched-cold", &single(cold(BATCH)), &pool, BATCH, 200, 10);
    edge_obs::progress!("   batched-cold    {:>10.0} texts/sec", batched_cold.texts_per_sec);

    // Observability overhead: the warm batched leg with the metrics layer
    // on vs off. The ring and the stage cells stay on in both legs (they
    // are always-on by design); the comparison isolates the
    // counters/histograms/labels hot path. Reps are interleaved on/off and
    // each side takes its best, so slow machine-wide drift (thermal,
    // neighbors) hits both sides equally instead of biasing one.
    let obs_rep = |enable_metrics: bool| {
        let name = if enable_metrics { "obs-on" } else { "obs-off" };
        let config = ServeConfig { enable_metrics, ..warm(BATCH) };
        run_leg(name, &single(config), &pool, BATCH, 300, pool.len() / BATCH + 5).texts_per_sec
    };
    let (mut obs_on, mut obs_off) = (0.0f64, 0.0f64);
    for _ in 0..5 {
        obs_on = obs_on.max(obs_rep(true));
        obs_off = obs_off.max(obs_rep(false));
    }
    let obs_overhead = ObsOverhead {
        enabled_texts_per_sec: obs_on,
        disabled_texts_per_sec: obs_off,
        overhead_frac: (1.0 - obs_on / obs_off).max(0.0),
    };
    edge_obs::progress!(
        "   obs overhead    {:>9.2}% (on {:.0} vs off {:.0} texts/sec)",
        obs_overhead.overhead_frac * 100.0,
        obs_on,
        obs_off
    );

    // Robustness overhead: the warm batched leg with the robustness layer
    // on (server defaults: deadline budget armed, read/write socket
    // budgets, brownout controller ticking) vs off (all three disabled).
    // Same interleaved best-of discipline as the obs comparison. These
    // legs are measured but deliberately NOT appended to `legs`, whose
    // membership CI asserts exactly.
    let robust_rep = |enabled: bool| {
        let name = if enabled { "robust-on" } else { "robust-off" };
        let config = if enabled {
            warm(BATCH)
        } else {
            ServeConfig {
                default_deadline_us: 0,
                read_budget_us: 0,
                write_timeout_us: 0,
                brownout_enabled: false,
                ..warm(BATCH)
            }
        };
        run_leg(name, &single(config), &pool, BATCH, 300, pool.len() / BATCH + 5).texts_per_sec
    };
    let (mut robust_on, mut robust_off) = (0.0f64, 0.0f64);
    for _ in 0..7 {
        robust_on = robust_on.max(robust_rep(true));
        robust_off = robust_off.max(robust_rep(false));
    }
    let robustness_overhead = RobustnessOverhead {
        enabled_texts_per_sec: robust_on,
        disabled_texts_per_sec: robust_off,
        overhead_frac: (1.0 - robust_on / robust_off).max(0.0),
    };
    edge_obs::progress!(
        "   robust overhead {:>9.2}% (on {:.0} vs off {:.0} texts/sec)",
        robustness_overhead.overhead_frac * 100.0,
        robust_on,
        robust_off
    );

    // Router overhead: two-shard routed vs single-shard warm batched,
    // interleaved best-of-5. The single-model path short-circuits the
    // router entirely (the gate that it stays as fast as before is the
    // classic legs above); this measures what a *real* routing decision
    // costs when it cannot be skipped.
    let router_rep = |multi_shard: bool| {
        let name = if multi_shard { "router-multi" } else { "router-single" };
        if multi_shard {
            run_leg(name, &multi(warm(BATCH)), &pool, BATCH, 300, pool.len() / BATCH + 5)
                .texts_per_sec
        } else {
            run_leg(name, &single(warm(BATCH)), &pool, BATCH, 300, pool.len() / BATCH + 5)
                .texts_per_sec
        }
    };
    let (mut router_multi, mut router_single) = (0.0f64, 0.0f64);
    for _ in 0..5 {
        router_multi = router_multi.max(router_rep(true));
        router_single = router_single.max(router_rep(false));
    }
    let router_overhead = RouterOverhead {
        single_shard_texts_per_sec: router_single,
        multi_shard_texts_per_sec: router_multi,
        overhead_frac: (1.0 - router_multi / router_single).max(0.0),
    };
    edge_obs::progress!(
        "   router overhead {:>9.2}% (multi {:.0} vs single {:.0} texts/sec)",
        router_overhead.overhead_frac * 100.0,
        router_multi,
        router_single
    );

    // The routed leg proper, with per-shard decomposition.
    let multi_shard =
        run_leg("multi-shard", &multi(warm(BATCH)), &pool, BATCH, 400, pool.len() / BATCH + 10);
    edge_obs::progress!(
        "   multi-shard     {:>10.0} texts/sec ({} shards)",
        multi_shard.texts_per_sec,
        multi_shard.per_shard.len()
    );

    // 10k idle keep-alive connections under foreground traffic.
    let high_concurrency = run_high_concurrency(&model_path, &pool);
    edge_obs::progress!(
        "   high-conc       {:>10.0} texts/sec @ {} conns (p99 {:.0} us)",
        high_concurrency.texts_per_sec,
        high_concurrency.connections_held,
        high_concurrency.p99_us
    );

    // Replica cold start (legacy deserialize vs mmap open) and the
    // quantization accuracy-drift gate.
    let cold_start = run_cold_start(&legacy_path, &model_path, &pool[0], 5);
    edge_obs::progress!(
        "   cold-start      legacy {:>8.0} us  mmap {:>8.0} us  ({:.0}x)",
        cold_start.legacy_us,
        cold_start.mmap_us,
        cold_start.speedup
    );
    let quantization = run_quantization(&model, test, &model_path);
    for q in &quantization.modes {
        edge_obs::progress!(
            "   quant {:<9} {:>10} bytes  mean {:.2} km (drift {:.3} km)",
            q.mode,
            q.artifact_bytes,
            q.mean_km,
            q.drift_km
        );
    }

    let speedup = batched.texts_per_sec / unbatched.texts_per_sec;
    let cold_speedup = batched_cold.texts_per_sec / unbatched_cold.texts_per_sec;
    let legs = vec![unbatched, batched, unbatched_cold, batched_cold];
    let quant_lines: String = quantization
        .modes
        .iter()
        .map(|q| {
            format!(
                "quantization {}: {} bytes (f32 {}), mean {:.2} km, drift {:.3} km\n",
                q.mode, q.artifact_bytes, quantization.f32_artifact_bytes, q.mean_km, q.drift_km
            )
        })
        .collect();
    let text = format!(
        "Serve bench ({size:?} scale): closed-loop POST /predict over real sockets\n{}{}\nobs overhead (warm batched, metrics on vs off): {:.2}%\nrobustness overhead (warm batched, deadlines+budgets+brownout on vs off): {:.2}%\nrouter overhead (warm batched, two-shard routed vs single-shard): {:.2}%\nmulti-shard: {:.0} texts/sec across {} shards\nhigh-concurrency: {} idle keep-alive conns held, p50 {:.0} us, p99 {:.0} us\nreplica cold start: legacy {:.0} us vs mmap {:.0} us ({:.0}x, median of {})\n{}",
        render_table(&legs, speedup),
        render_stage_table(&legs),
        obs_overhead.overhead_frac * 100.0,
        robustness_overhead.overhead_frac * 100.0,
        router_overhead.overhead_frac * 100.0,
        multi_shard.texts_per_sec,
        multi_shard.per_shard.len(),
        high_concurrency.connections_held,
        high_concurrency.p50_us,
        high_concurrency.p99_us,
        cold_start.legacy_us,
        cold_start.mmap_us,
        cold_start.speedup,
        cold_start.replicas,
        quant_lines,
    );
    print!("{text}");
    let output = ServeBenchOutput {
        threads: edge_par::num_threads(),
        corpus: dataset.name.clone(),
        covered_texts: covered.len(),
        legs,
        speedup_batched_vs_unbatched: speedup,
        cold_speedup_batched_vs_unbatched: cold_speedup,
        obs_overhead,
        robustness_overhead,
        router_overhead,
        multi_shard,
        high_concurrency,
        cold_start,
        quantization,
    };
    edge_bench::write_results("BENCH_serve", &output, &text).expect("write results");
    std::fs::remove_file(&model_path).ok();
    std::fs::remove_file(&legacy_path).ok();
    edge_obs::progress!("wrote results/BENCH_serve.{{json,txt}}");
}
