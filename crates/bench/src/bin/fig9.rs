//! Regenerates **Figure 9** (use case 2b): predicted locations of tweets
//! mentioning the New Colossus Festival — a Lower-East-Side music festival
//! across seven venues — during the event (03/12–03/15) vs after it
//! (03/16–04/02). During the event predictions cluster at the venues;
//! afterwards they scatter.
//!
//! Usage: `cargo run --release -p edge-bench --bin fig9 [--size default]`

use serde::Serialize;

use edge_core::{EdgeConfig, EdgeModel, Geolocator, TrainOptions};
use edge_data::{dataset_recognizer, ny2020, PresetSize, SimDate};
use edge_geo::{Grid, Heatmap, Point};

#[derive(Serialize)]
struct Window {
    label: String,
    n_mentions: usize,
    predicted_points: Vec<Point>,
    heatmap: Vec<f64>,
    mean_km_to_venue_cluster: Option<f64>,
}

fn main() {
    let (size, seeds) = edge_bench::parse_cli();
    let dataset = ny2020(size, seeds[0]);
    let config = match size {
        PresetSize::Smoke => EdgeConfig::smoke(),
        _ => EdgeConfig::fast(),
    };
    let (train, _) = dataset.paper_split();
    let (model, _) = EdgeModel::train(
        train,
        dataset_recognizer(&dataset),
        &dataset.bbox,
        config,
        &TrainOptions::default(),
    )
    .expect("train");

    let venue_center = Point::new(40.7205, -73.9879);
    let grid = Grid::new(dataset.bbox, 60, 60);
    let windows = [
        ("03/12/2020-03/15/2020 (during)", SimDate::new(2020, 3, 12), SimDate::new(2020, 3, 16)),
        ("03/16/2020-04/02/2020 (after)", SimDate::new(2020, 3, 16), SimDate::new(2020, 4, 2)),
    ];

    let mut out = Vec::new();
    let mut text =
        String::from("Figure 9: predicted locations of New Colossus Festival mentions (NY)\n");
    for (label, start, end) in windows {
        let mentions: Vec<_> = dataset
            .window(start, end)
            .into_iter()
            .filter(|t| t.text.to_lowercase().contains("new colossus festival"))
            .collect();
        let predicted: Vec<Point> =
            mentions.iter().filter_map(|t| model.predict_point(&t.text)).collect();
        let mean_km = (!predicted.is_empty()).then(|| {
            predicted.iter().map(|p| p.haversine_km(&venue_center)).sum::<f64>()
                / predicted.len() as f64
        });
        let heat = Heatmap::from_points(grid.clone(), &predicted, 1.5);
        text.push_str(&format!(
            "\n-- {label}: {} mentions, mean distance to venue cluster {} km --\n{}",
            mentions.len(),
            mean_km.map_or("n/a".into(), |d| format!("{d:.2}")),
            heat.render_ascii(60)
        ));
        out.push(Window {
            label: label.to_string(),
            n_mentions: mentions.len(),
            heatmap: heat.values().to_vec(),
            mean_km_to_venue_cluster: mean_km,
            predicted_points: predicted,
        });
    }
    print!("{text}");
    edge_bench::write_results("fig9", &out, &text).expect("write results");
    edge_obs::progress!("wrote results/fig9.{{json,txt}}");
}
