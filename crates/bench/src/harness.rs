//! The experiment harness: trains every method on a dataset's chronological
//! split, evaluates the paper's metrics, and averages over seeds (the paper
//! repeats every experiment 3 times and reports means).

use std::path::Path;

use serde::{Deserialize, Serialize};

use edge_baselines::{
    GridCounts, HyperLocal, HyperLocalParams, KullbackLeibler, LocKde, LocKdeParams, NaiveBayes,
    UnicodeCnn, UnicodeCnnConfig,
};
use edge_core::{
    BowModel, EdgeConfig, EdgeModel, Geolocator, PredictOptions, Predictor, TrainOptions,
};
use edge_data::{dataset_recognizer, Dataset};
use edge_geo::{rdp, DistanceReport, GaussianMixture, Grid, Point};

/// Which methods a harness run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSet {
    /// The eight methods of Table III.
    Comparison,
    /// EDGE plus the four ablations of Table IV.
    Ablation,
}

/// Harness-wide knobs.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// EDGE configuration (ablations derive from it).
    pub edge: EdgeConfig,
    /// Grid resolution for the grid baselines (paper: 100×100).
    pub grid_cells: usize,
    /// kde2d smoothing bandwidth in cells.
    pub kde2d_bandwidth: f64,
    /// UnicodeCNN configuration.
    pub unicode: UnicodeCnnConfig,
    /// Hyper-local configuration.
    pub hyperlocal: HyperLocalParams,
    /// LocKDE configuration.
    pub lockde: LocKdeParams,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            edge: EdgeConfig::fast(),
            grid_cells: 100,
            kde2d_bandwidth: 1.5,
            unicode: UnicodeCnnConfig::default(),
            hyperlocal: HyperLocalParams::default(),
            lockde: LocKdeParams::default(),
        }
    }
}

impl HarnessConfig {
    /// A configuration small enough for tests.
    pub fn smoke() -> Self {
        Self {
            edge: EdgeConfig::smoke(),
            grid_cells: 40,
            unicode: UnicodeCnnConfig {
                n_components: 36,
                epochs: 2,
                seq_len: 48,
                channels: 16,
                char_dim: 8,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// One method's scores on one dataset (one row of Table III / IV).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method name as in the paper.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Averaged distance metrics.
    pub report: DistanceReport,
}

/// Averages reports field-wise (used for multi-seed runs).
pub fn average_reports(reports: &[DistanceReport]) -> DistanceReport {
    assert!(!reports.is_empty(), "nothing to average");
    let n = reports.len() as f64;
    DistanceReport {
        mean_km: reports.iter().map(|r| r.mean_km).sum::<f64>() / n,
        median_km: reports.iter().map(|r| r.median_km).sum::<f64>() / n,
        at_3km: reports.iter().map(|r| r.at_3km).sum::<f64>() / n,
        at_5km: reports.iter().map(|r| r.at_5km).sum::<f64>() / n,
        n: reports.iter().map(|r| r.n).sum::<usize>() / reports.len(),
        coverage: reports.iter().map(|r| r.coverage).sum::<f64>() / n,
    }
}

/// Evaluates one [`Geolocator`] on the test split — the single scoring
/// path every method (EDGE and BOW included, via the blanket `Predictor`
/// implementation) goes through.
fn eval_geolocator(g: &dyn Geolocator, test: &[edge_data::Tweet]) -> DistanceReport {
    let outcome = g.evaluate_points(test);
    outcome.report().unwrap_or(DistanceReport {
        mean_km: f64::NAN,
        median_km: f64::NAN,
        at_3km: 0.0,
        at_5km: 0.0,
        n: 0,
        coverage: outcome.coverage,
    })
}

/// Trains + evaluates EDGE (point metrics); also returns the mixture pairs
/// needed by RDP.
pub fn run_edge(
    dataset: &Dataset,
    config: &EdgeConfig,
) -> (DistanceReport, Vec<(GaussianMixture, Point)>) {
    let (train, test) = dataset.paper_split();
    let ner = dataset_recognizer(dataset);
    let (model, _) =
        EdgeModel::train(train, ner, &dataset.bbox, config.clone(), &TrainOptions::default())
            .expect("train");
    let outcome = model.evaluate(test, &PredictOptions::default());
    let report = outcome.report().expect("EDGE produced no predictions");
    let mixtures = outcome.pairs.into_iter().map(|(p, t)| (p.mixture, t)).collect();
    (report, mixtures)
}

/// Runs one method by name on one dataset. Method names match the paper's
/// tables exactly.
pub fn run_method(dataset: &Dataset, method: &str, config: &HarnessConfig) -> MethodResult {
    let (train, test) = dataset.paper_split();
    let grid = Grid::new(dataset.bbox, config.grid_cells, config.grid_cells);
    let scale_km = {
        let (ew, ns) = dataset.bbox.dims_km();
        (ew * ew + ns * ns).sqrt() / 2.0
    };
    let report = match method {
        "EDGE" => run_edge(dataset, &config.edge).0,
        "BOW" => {
            let model = BowModel::train(train, &dataset.bbox, &config.edge, 4000);
            eval_geolocator(&model, test)
        }
        "NoGCN" => run_edge(dataset, &config.edge.clone().ablation_no_gcn()).0,
        "SUM" => run_edge(dataset, &config.edge.clone().ablation_sum()).0,
        "NoMixture" => run_edge(dataset, &config.edge.clone().ablation_no_mixture()).0,
        "LocKDE" => {
            let m = LocKde::fit(train, grid, scale_km, config.lockde);
            eval_geolocator(&m, test)
        }
        "UnicodeCNN" => {
            let m = UnicodeCnn::fit(train, &dataset.bbox, config.unicode.clone());
            eval_geolocator(&m, test)
        }
        "NaiveBayes" => {
            let m = NaiveBayes::fit(train, grid);
            eval_geolocator(&m, test)
        }
        "Kullback-Leibler" => {
            let m = KullbackLeibler::fit(train, grid);
            eval_geolocator(&m, test)
        }
        "NaiveBayes_kde2d" | "Kullback-Leibler_kde2d" => {
            // Share the expensive smoothing when both are requested via
            // run_method_set; standalone calls pay it once.
            let counts = GridCounts::fit(train, grid).smoothed(config.kde2d_bandwidth);
            if method == "NaiveBayes_kde2d" {
                eval_geolocator(&NaiveBayes::from_counts(counts, method), test)
            } else {
                eval_geolocator(&KullbackLeibler::from_counts(counts, method), test)
            }
        }
        "Hyper-local" => {
            let m = HyperLocal::fit(train, config.hyperlocal);
            eval_geolocator(&m, test)
        }
        other => panic!("unknown method '{other}'"),
    };
    MethodResult { method: method.to_string(), dataset: dataset.name.clone(), report }
}

/// The method names of a set, in the paper's table order.
pub fn method_names(set: MethodSet) -> Vec<&'static str> {
    match set {
        MethodSet::Comparison => vec![
            "LocKDE",
            "UnicodeCNN",
            "NaiveBayes",
            "Kullback-Leibler",
            "NaiveBayes_kde2d",
            "Kullback-Leibler_kde2d",
            "Hyper-local",
            "EDGE",
        ],
        MethodSet::Ablation => vec!["BOW", "NoGCN", "SUM", "NoMixture", "EDGE"],
    }
}

/// Runs a whole method set on one dataset.
pub fn run_method_set(
    dataset: &Dataset,
    set: MethodSet,
    config: &HarnessConfig,
) -> Vec<MethodResult> {
    method_names(set).into_iter().map(|m| run_method(dataset, m, config)).collect()
}

/// Multi-seed wrapper: reruns one method with reseeded model configs and
/// averages. Data stays fixed (the paper's repetitions are over model
/// randomness; the crawl is one corpus).
pub fn run_method_seeds(
    dataset: &Dataset,
    method: &str,
    config: &HarnessConfig,
    seeds: &[u64],
) -> MethodResult {
    assert!(!seeds.is_empty());
    // The classical baselines are deterministic — reseeding changes nothing
    // — so burn only one run on them.
    let deterministic = matches!(
        method,
        "LocKDE"
            | "NaiveBayes"
            | "Kullback-Leibler"
            | "NaiveBayes_kde2d"
            | "Kullback-Leibler_kde2d"
            | "Hyper-local"
    );
    let seeds = if deterministic { &seeds[..1] } else { seeds };
    let reports: Vec<DistanceReport> = seeds
        .iter()
        .map(|&s| {
            let mut c = config.clone();
            c.edge.seed = s;
            c.edge.sgns.seed = s ^ 0xbeef;
            c.unicode.seed = s;
            run_method(dataset, method, &c).report
        })
        .collect();
    MethodResult {
        method: method.to_string(),
        dataset: dataset.name.clone(),
        report: average_reports(&reports),
    }
}

/// RDP sweep for EDGE on a dataset (Figure 5): returns `(r, RDP(r))` pairs.
pub fn edge_rdp_sweep(
    dataset: &Dataset,
    config: &EdgeConfig,
    radii_km: &[f64],
    samples_per_tweet: usize,
    seed: u64,
) -> Vec<(f64, f64)> {
    let (_, mixtures) = run_edge(dataset, config);
    radii_km.iter().map(|&r| (r, rdp(&mixtures, r, samples_per_tweet, seed))).collect()
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`).
/// Returns 0 where `/proc/self/status` is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One method's resource footprint in the end-to-end pipeline bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineBenchRecord {
    pub method: String,
    pub dataset: String,
    /// Worker threads the run fanned out to (`edge_par::num_threads()`).
    pub threads: usize,
    pub wall_secs: f64,
    /// Process peak RSS after the method ran. Peak RSS is monotone over the
    /// process lifetime, so per-method deltas show which stage grew it.
    pub peak_rss_mb: f64,
    pub mean_km: f64,
}

/// Times every method of `set` on `dataset`: wall time plus process peak RSS
/// after each method, for `results/BENCH_pipeline.json`.
pub fn run_pipeline_bench(
    dataset: &Dataset,
    set: MethodSet,
    config: &HarnessConfig,
) -> Vec<PipelineBenchRecord> {
    method_names(set)
        .into_iter()
        .map(|m| {
            let start = std::time::Instant::now();
            let r = run_method(dataset, m, config);
            PipelineBenchRecord {
                method: m.to_string(),
                dataset: dataset.name.clone(),
                threads: edge_par::num_threads(),
                wall_secs: start.elapsed().as_secs_f64(),
                peak_rss_mb: peak_rss_bytes() as f64 / (1024.0 * 1024.0),
                mean_km: r.report.mean_km,
            }
        })
        .collect()
}

/// One leg of the EDGE before/after speedup comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupLeg {
    /// Human-readable configuration label.
    pub label: String,
    /// Threads the leg ran with.
    pub threads: usize,
    /// End-to-end wall time (train + evaluate).
    pub wall_secs: f64,
    /// Seconds inside the optimization loop (sum of per-epoch wall times).
    pub train_secs: f64,
    /// Mean error — must agree across legs (accuracy parity).
    pub mean_km: f64,
    /// Steady-state heap allocations per training batch (minimum over all
    /// batches). `None` unless the `alloc-stats` counting allocator is
    /// compiled in. Zero for the arena legs; large for the fresh-alloc leg.
    #[serde(default)]
    pub allocs_per_batch: Option<u64>,
}

/// Before/after table for the training hot path: the same EDGE training run
/// under serial (1 thread), legacy spawn-per-call dispatch, the fresh-alloc
/// reference (no tape arena), the persistent pool with arena reuse, and the
/// pool with the SIMD kernels forced off.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeSpeedup {
    pub legs: Vec<SpeedupLeg>,
    /// `serial train_secs / pooled train_secs` — the headline number. ~1.0
    /// on a single-core host.
    pub train_speedup: f64,
    /// `fresh-alloc train_secs / pooled train_secs` — what the tape arena
    /// buys at identical thread count and dispatch mode.
    #[serde(default)]
    pub arena_speedup: f64,
    /// `scalar-kernel train_secs / pooled train_secs` — what the AVX2
    /// kernels buy end to end. ~1.0 when SIMD is unavailable or disabled.
    #[serde(default)]
    pub simd_speedup: f64,
    /// Whether the AVX2 kernels were active for the non-scalar legs (false
    /// under `EDGE_NO_SIMD` or on hardware without AVX2+FMA, in which case
    /// the scalar leg is an exact replica of the pooled leg).
    #[serde(default)]
    pub simd_active: bool,
}

fn run_edge_leg(
    dataset: &Dataset,
    config: &EdgeConfig,
    label: &str,
    opts: &TrainOptions,
) -> SpeedupLeg {
    let (train, test) = dataset.paper_split();
    let ner = dataset_recognizer(dataset);
    let start = std::time::Instant::now();
    let (model, report) =
        EdgeModel::train(train, ner, &dataset.bbox, config.clone(), opts).expect("train");
    let outcome = model.evaluate(test, &PredictOptions::default());
    let wall_secs = start.elapsed().as_secs_f64();
    let dist = outcome.report().expect("EDGE produced no predictions");
    SpeedupLeg {
        label: label.to_string(),
        threads: edge_par::num_threads(),
        wall_secs,
        train_secs: report.train_loop_secs(),
        mean_km: dist.mean_km,
        allocs_per_batch: report.steady_batch_allocs,
    }
}

/// Takes the per-leg minimum of two interleaved measurement rounds. The
/// runs are deterministic, so accuracy and allocation counts must agree;
/// only the timings are noise and the minimum is the robust estimator.
fn merge_best(best: SpeedupLeg, next: SpeedupLeg) -> SpeedupLeg {
    assert_eq!(best.label, next.label);
    assert!(
        best.mean_km.to_bits() == next.mean_km.to_bits(),
        "{}: nondeterministic across rounds: {} vs {}",
        best.label,
        best.mean_km,
        next.mean_km
    );
    SpeedupLeg {
        wall_secs: best.wall_secs.min(next.wall_secs),
        train_secs: best.train_secs.min(next.train_secs),
        ..best
    }
}

/// Measures the hot-path speedups on EDGE training: serial (pool clamped to
/// 1 thread) vs spawn-per-call dispatch vs fresh allocation (arena disabled)
/// vs the persistent pool with arena reuse vs the pool with scalar kernels
/// forced, all at identical seeds.
///
/// The first four legs run the bit-for-bit deterministic kernels, so their
/// `mean_km` must match exactly; the scalar-kernel leg swaps the geo vector
/// polynomials for libm and may drift by < 1e-6 km (and is exact too when
/// SIMD is off, since then it replicates the pooled leg).
///
/// Every leg is measured twice in interleaved rounds and the per-leg
/// minimum is kept: a single-shot ratio of two multi-second runs on a busy
/// CI host carries ±5% noise, which previously let `train_speedup` dip
/// below 1.0 even though the pooled leg executes strictly less work.
pub fn run_edge_speedup(dataset: &Dataset, config: &EdgeConfig) -> EdgeSpeedup {
    let opts = TrainOptions::default();
    let fresh_opts = TrainOptions { fresh_alloc: true, ..TrainOptions::default() };
    type Leg<'a> = (&'static str, Box<dyn Fn(&str) -> SpeedupLeg + 'a>);
    let legs_spec: Vec<Leg<'_>> = vec![
        (
            "serial (1 thread)",
            Box::new(|l: &str| {
                edge_par::with_max_threads(1, || run_edge_leg(dataset, config, l, &opts))
            }),
        ),
        (
            "spawn-per-call",
            Box::new(|l: &str| {
                let prev = edge_par::dispatch_mode();
                edge_par::set_dispatch_mode(edge_par::DispatchMode::Spawn);
                let leg = run_edge_leg(dataset, config, l, &opts);
                edge_par::set_dispatch_mode(prev);
                leg
            }),
        ),
        (
            "fresh-alloc (no arena)",
            Box::new(|l: &str| run_edge_leg(dataset, config, l, &fresh_opts)),
        ),
        ("persistent pool", Box::new(|l: &str| run_edge_leg(dataset, config, l, &opts))),
        (
            "scalar kernels",
            Box::new(|l: &str| {
                edge_tensor::with_scalar_kernels(|| {
                    edge_geo::with_scalar_kernels(|| run_edge_leg(dataset, config, l, &opts))
                })
            }),
        ),
    ];
    let mut best: Vec<Option<SpeedupLeg>> = (0..legs_spec.len()).map(|_| None).collect();
    for _round in 0..2 {
        for (slot, (label, run)) in best.iter_mut().zip(&legs_spec) {
            let leg = run(label);
            *slot = Some(match slot.take() {
                None => leg,
                Some(prev) => merge_best(prev, leg),
            });
        }
    }
    let legs: Vec<SpeedupLeg> = best.into_iter().map(|l| l.expect("measured")).collect();
    let pooled_secs = legs[3].train_secs.max(1e-9);
    EdgeSpeedup {
        train_speedup: legs[0].train_secs / pooled_secs,
        arena_speedup: legs[2].train_secs / pooled_secs,
        simd_speedup: legs[4].train_secs / pooled_secs,
        simd_active: edge_tensor::simd_active(),
        legs,
    }
}

/// Renders the EDGE speedup comparison as aligned text.
pub fn render_speedup_table(s: &EdgeSpeedup) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>8} {:>10} {:>11} {:>9} {:>12}\n",
        "Config", "Threads", "Wall(s)", "Train(s)", "Mean(km)", "Alloc/batch"
    ));
    for leg in &s.legs {
        let allocs = leg.allocs_per_batch.map_or_else(|| "-".to_string(), |a| a.to_string());
        out.push_str(&format!(
            "{:<22} {:>8} {:>10.2} {:>11.2} {:>9.2} {:>12}\n",
            leg.label, leg.threads, leg.wall_secs, leg.train_secs, leg.mean_km, allocs
        ));
    }
    out.push_str(&format!("train-loop speedup (serial / pooled): {:.2}x\n", s.train_speedup));
    out.push_str(&format!("arena speedup (fresh-alloc / pooled): {:.2}x\n", s.arena_speedup));
    out.push_str(&format!(
        "simd speedup (scalar kernels / pooled): {:.2}x (simd {})\n",
        s.simd_speedup,
        if s.simd_active { "on" } else { "off" }
    ));
    out
}

/// One microkernel's SIMD-vs-scalar throughput comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelLeg {
    /// Throughput with the vector kernels active (equals `scalar` when SIMD
    /// is unavailable or disabled).
    pub simd: f64,
    /// Throughput with the scalar reference kernels forced.
    pub scalar: f64,
    /// `simd / scalar`.
    pub speedup: f64,
}

/// The `simd_vs_scalar` section of `BENCH_pipeline.json`: single-thread
/// throughput of each vectorized microkernel against its scalar reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimdKernelBench {
    /// False under `EDGE_NO_SIMD` or without AVX2+FMA; the CI speedup gates
    /// only apply when true.
    pub simd_active: bool,
    /// Dense matmul GFLOP/s at (64×400)·(400×400) — the GCN-layer shape
    /// class. Bit-for-bit deterministic, so no FMA: the port-limited ceiling
    /// is ~2.3x the (SSE-autovectorized) scalar kernel, not the naive 8x.
    pub matmul_gflops: KernelLeg,
    /// Sparse×dense GFLOP/s at 1000×1000 (20k nnz) × 1000×256 — the
    /// diffusion-operator shape class. Also bit-for-bit deterministic.
    pub spmm_gflops: KernelLeg,
    /// Batched haversine throughput, millions of pairs/s. Accuracy-gated
    /// (vector polynomials vs libm), hence the larger headroom.
    pub haversine_mpairs: KernelLeg,
    /// Mixture-density evaluations (8 components), millions of pdf calls/s.
    /// Accuracy-gated like the haversine.
    pub mixture_pdf_meval: KernelLeg,
}

/// Runs `f` repeatedly for ~`budget` and returns the fastest per-iteration
/// time in seconds — the minimum is the standard noise-robust estimator for
/// a deterministic kernel.
fn best_iter_secs(budget: std::time::Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm caches, scratch buffers, and the pack-buffer pool
    let deadline = std::time::Instant::now() + budget;
    let mut best = f64::INFINITY;
    loop {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
        if std::time::Instant::now() >= deadline {
            return best;
        }
    }
}

fn kernel_leg(work_per_iter: f64, mut run: impl FnMut()) -> KernelLeg {
    const BUDGET: std::time::Duration = std::time::Duration::from_millis(200);
    let simd_secs = best_iter_secs(BUDGET, &mut run);
    let scalar_secs = edge_tensor::with_scalar_kernels(|| {
        edge_geo::with_scalar_kernels(|| best_iter_secs(BUDGET, &mut run))
    });
    let simd = work_per_iter / simd_secs;
    let scalar = work_per_iter / scalar_secs;
    KernelLeg { simd, scalar, speedup: simd / scalar }
}

/// Measures the `simd_vs_scalar` microkernel section: every kernel pair runs
/// single-threaded (the parallel dimension is covered by the speedup legs)
/// over the same inputs, SIMD first, then under the scalar-kernel override.
pub fn run_simd_kernel_bench() -> SimdKernelBench {
    use edge_tensor::{CsrMatrix, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x51_3D);

    edge_par::with_max_threads(1, || {
        let (n, k, m) = (64, 400, 400);
        let a = Matrix::random_uniform(n, k, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, m, 1.0, &mut rng);
        let mut out = Matrix::zeros(n, m);
        let matmul_gflops = kernel_leg(2.0 * (n * k * m) as f64 / 1e9, || {
            a.matmul_into(&b, &mut out);
        });

        let (rows, cols, nnz, width) = (1000, 1000, 20_000, 256);
        let triplets: Vec<(usize, usize, f32)> = (0..nnz)
            .map(|_| (rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen_range(-1.0f32..1.0)))
            .collect();
        let sparse = CsrMatrix::from_triplets(rows, cols, &triplets);
        let dense = Matrix::random_uniform(cols, width, 1.0, &mut rng);
        let mut sout = Matrix::zeros(rows, width);
        let spmm_gflops = kernel_leg(2.0 * (sparse.nnz() * width) as f64 / 1e9, || {
            sparse.matmul_dense_into(&dense, &mut sout);
        });

        let pairs: Vec<(edge_geo::Point, edge_geo::Point)> = (0..4096)
            .map(|_| {
                (
                    edge_geo::Point::new(rng.gen_range(-80.0..80.0), rng.gen_range(-179.0..179.0)),
                    edge_geo::Point::new(rng.gen_range(-80.0..80.0), rng.gen_range(-179.0..179.0)),
                )
            })
            .collect();
        let haversine_mpairs = kernel_leg(pairs.len() as f64 / 1e6, || {
            std::hint::black_box(edge_geo::haversine_km_batch(&pairs));
        });

        let mix = edge_geo::GaussianMixture::new(
            (0..8)
                .map(|_| {
                    (
                        rng.gen_range(0.1..1.0),
                        edge_geo::BivariateGaussian::new(
                            edge_geo::Point::new(
                                rng.gen_range(40.0..41.0),
                                rng.gen_range(-75.0..-74.0),
                            ),
                            rng.gen_range(0.01..0.2),
                            rng.gen_range(0.01..0.2),
                            rng.gen_range(-0.5..0.5),
                        ),
                    )
                })
                .collect(),
        );
        let queries: Vec<edge_geo::Point> = (0..1024)
            .map(|_| edge_geo::Point::new(rng.gen_range(40.0..41.0), rng.gen_range(-75.0..-74.0)))
            .collect();
        let mixture_pdf_meval = kernel_leg(queries.len() as f64 / 1e6, || {
            // The mode search's density loop: the SoA evaluator when the
            // vector kernels are active, the scalar pdf otherwise.
            match edge_geo::simd::MixtureEval::new(&mix) {
                Some(eval) => {
                    for q in &queries {
                        std::hint::black_box(eval.pdf(q));
                    }
                }
                None => {
                    for q in &queries {
                        std::hint::black_box(mix.pdf(q));
                    }
                }
            }
        });

        SimdKernelBench {
            simd_active: edge_tensor::simd_active(),
            matmul_gflops,
            spmm_gflops,
            haversine_mpairs,
            mixture_pdf_meval,
        }
    })
}

/// Renders the SIMD microkernel comparison as aligned text.
pub fn render_simd_table(s: &SimdKernelBench) -> String {
    let mut out = format!(
        "SIMD microkernels (single thread, simd {}):\n{:<28} {:>10} {:>10} {:>9}\n",
        if s.simd_active { "on" } else { "off" },
        "Kernel",
        "SIMD",
        "Scalar",
        "Speedup"
    );
    for (name, leg) in [
        ("matmul (GFLOP/s)", &s.matmul_gflops),
        ("spmm (GFLOP/s)", &s.spmm_gflops),
        ("haversine (Mpairs/s)", &s.haversine_mpairs),
        ("mixture pdf (Meval/s)", &s.mixture_pdf_meval),
    ] {
        out.push_str(&format!(
            "{:<28} {:>10.2} {:>10.2} {:>8.2}x\n",
            name, leg.simd, leg.scalar, leg.speedup
        ));
    }
    out
}

/// Renders the pipeline bench as aligned text.
pub fn render_pipeline_table(records: &[PipelineBenchRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<24} {:>7} {:>10} {:>13} {:>9}\n",
        "Dataset", "Algorithm", "Threads", "Wall(s)", "PeakRSS(MB)", "Mean(km)"
    ));
    for r in records {
        out.push_str(&format!(
            "{:<12} {:<24} {:>7} {:>10.2} {:>13.1} {:>9.2}\n",
            r.dataset, r.method, r.threads, r.wall_secs, r.peak_rss_mb, r.mean_km
        ));
    }
    out
}

/// Renders a `MethodResult` table as aligned text (the shape of Table III).
pub fn render_table(results: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<24} {:>9} {:>11} {:>8} {:>8} {:>9}\n",
        "Dataset", "Algorithm", "Mean(km)", "Median(km)", "@3km", "@5km", "coverage"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<12} {:<24} {:>9.2} {:>11.2} {:>8.4} {:>8.4} {:>8.1}%\n",
            r.dataset,
            r.method,
            r.report.mean_km,
            r.report.median_km,
            r.report.at_3km,
            r.report.at_5km,
            r.report.coverage * 100.0
        ));
    }
    out
}

/// Writes results JSON next to a text rendering under `results/`.
///
/// The directory is created if absent and both files go through the
/// crash-safe temp-file + fsync + rename path, so an interrupted run can
/// tear neither a previous result nor the one being written.
pub fn write_results(name: &str, json: &impl Serialize, text: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    edge_faults::fsio::atomic_write(
        dir.join(format!("{name}.json")),
        serde_json::to_string_pretty(json)?.as_bytes(),
    )?;
    edge_faults::fsio::atomic_write(dir.join(format!("{name}.txt")), text.as_bytes())?;
    Ok(())
}

/// Parses the common `--size` / `--seeds` CLI arguments of the table/figure
/// binaries. Defaults: smoke size (fast), 1 seed. Pass `--size default`
/// and `--seeds 3` for the EXPERIMENTS.md runs, `--size paper` for the
/// paper-scale corpus.
pub fn parse_cli() -> (edge_data::PresetSize, Vec<u64>) {
    let args: Vec<String> = std::env::args().collect();
    let mut size = edge_data::PresetSize::Smoke;
    let mut n_seeds = 1usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                i += 1;
                size = match args.get(i).map(String::as_str) {
                    Some("paper") => edge_data::PresetSize::Paper,
                    Some("default") => edge_data::PresetSize::Default,
                    Some("smoke") | None => edge_data::PresetSize::Smoke,
                    Some(other) => panic!("unknown --size '{other}'"),
                };
            }
            "--seeds" => {
                i += 1;
                n_seeds = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(1);
            }
            other => panic!("unknown argument '{other}' (expected --size/--seeds)"),
        }
        i += 1;
    }
    (size, (0..n_seeds as u64).map(|s| 42 + s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};

    #[test]
    fn average_reports_is_fieldwise_mean() {
        let a = DistanceReport {
            mean_km: 2.0,
            median_km: 1.0,
            at_3km: 0.5,
            at_5km: 0.6,
            n: 10,
            coverage: 1.0,
        };
        let b = DistanceReport {
            mean_km: 4.0,
            median_km: 3.0,
            at_3km: 0.7,
            at_5km: 0.8,
            n: 20,
            coverage: 0.8,
        };
        let avg = average_reports(&[a, b]);
        assert_eq!(avg.mean_km, 3.0);
        assert_eq!(avg.median_km, 2.0);
        assert!((avg.at_3km - 0.6).abs() < 1e-12);
        assert_eq!(avg.n, 15);
        assert!((avg.coverage - 0.9).abs() < 1e-12);
    }

    #[test]
    fn method_names_match_paper_tables() {
        let comparison = method_names(MethodSet::Comparison);
        assert_eq!(comparison.len(), 8);
        assert_eq!(*comparison.last().unwrap(), "EDGE");
        let ablation = method_names(MethodSet::Ablation);
        assert_eq!(ablation, vec!["BOW", "NoGCN", "SUM", "NoMixture", "EDGE"]);
    }

    #[test]
    fn run_method_produces_scores_for_every_method() {
        let d = nyma(PresetSize::Smoke, 51);
        let config = HarnessConfig::smoke();
        for m in ["NaiveBayes", "Hyper-local", "LocKDE"] {
            let r = run_method(&d, m, &config);
            assert_eq!(r.method, m);
            assert!(r.report.mean_km > 0.0, "{m}: {:?}", r.report);
            assert!(r.report.coverage > 0.2, "{m} coverage {}", r.report.coverage);
        }
    }

    #[test]
    #[should_panic(expected = "unknown method")]
    fn unknown_method_panics() {
        let d = nyma(PresetSize::Smoke, 52);
        let _ = run_method(&d, "Oracle", &HarnessConfig::smoke());
    }

    #[test]
    fn render_table_is_aligned() {
        let r = MethodResult {
            method: "EDGE".into(),
            dataset: "NYMA".into(),
            report: DistanceReport {
                mean_km: 6.21,
                median_km: 2.92,
                at_3km: 0.52,
                at_5km: 0.66,
                n: 100,
                coverage: 0.97,
            },
        };
        let txt = render_table(&[r]);
        assert!(txt.contains("EDGE"));
        assert!(txt.contains("6.21"));
        assert!(txt.lines().count() == 2);
    }
}
