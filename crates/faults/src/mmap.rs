//! Read-only memory-mapped files for zero-copy artifact loading.
//!
//! The workspace is offline (no `libc`, no `memmap2`), so `mmap`/`munmap`
//! are declared as `extern "C"` shims against the C library `std` already
//! links — the same precedent as the `epoll` shims in `edge-serve`'s
//! reactor. Errors surface as `io::Error::last_os_error()`, so `errno`
//! text comes through.
//!
//! On non-Unix targets (and as a portability escape hatch) [`Mmap::open`]
//! falls back to reading the whole file into an 8-byte-aligned heap
//! buffer: callers get the same `&[u8]` view either way, just without the
//! shared-page-cache economics.
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: the kernel shares the
//! physical pages between every process (and every in-process replica)
//! that maps the same artifact, which is what makes N-replica serving
//! cost one physical copy of the model.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: isize,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// How the bytes are held: a real kernel mapping or an owned fallback
/// buffer (non-Unix, or an empty file where `mmap` would reject `len 0`).
enum Backing {
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// `Vec<u64>` rather than `Vec<u8>` so the base pointer is 8-byte
    /// aligned like a page-aligned mapping (section offsets inside the
    /// artifact are page-multiples, so alignment of the base decides the
    /// alignment of every section).
    Owned { buf: Vec<u64>, len: usize },
}

/// A read-only view of a whole file, zero-copy where the platform allows.
pub struct Mmap {
    backing: Backing,
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ,
// never remapped), so shared references across threads are sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only. Returns the owned-buffer fallback on
    /// non-Unix targets and for empty files.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        Self::from_file(&file, len)
    }

    #[cfg(unix)]
    fn from_file(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Ok(Mmap { backing: Backing::Owned { buf: Vec::new(), len: 0 } });
        }
        // SAFETY: fd is a live file descriptor, len is the file's size,
        // and the constants request a read-only private mapping.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { backing: Backing::Mapped { ptr: ptr as *mut u8, len } })
    }

    #[cfg(not(unix))]
    fn from_file(file: &File, len: usize) -> io::Result<Mmap> {
        Ok(Self::read_aligned(file, len)?)
    }

    /// Fallback reader: the whole file in an 8-byte-aligned buffer.
    #[cfg_attr(unix, allow(dead_code))]
    fn read_aligned(mut file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let words = len.div_ceil(8);
        let mut buf: Vec<u64> = vec![0; words];
        // SAFETY: u64 has no invalid bit patterns; the byte view covers
        // exactly the allocation we just zeroed.
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, words * 8) };
        file.read_exact(&mut bytes[..len])?;
        Ok(Mmap { backing: Backing::Owned { buf, len } })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; it is unmapped only in Drop.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned { buf, len } => {
                // SAFETY: the buffer holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Owned { len, .. } => *len,
        }
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len came from a successful mmap and are
            // unmapped exactly once.
            unsafe { sys::munmap(ptr as *mut std::os::raw::c_void, len) };
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => "mapped",
            Backing::Owned { .. } => "owned",
        };
        f.debug_struct("Mmap").field("kind", &kind).field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("edge_mmap_{tag}_{}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_slice(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Mmap::open(Path::new("/nonexistent/edge_mmap_test")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn fallback_reader_matches_mapping() {
        let path = temp_path("fallback");
        let payload: Vec<u8> = (0..9_999u32).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let owned = Mmap::read_aligned(&file, payload.len()).unwrap();
        assert_eq!(owned.as_slice(), &payload[..]);
        // The fallback base pointer carries mapping-grade alignment.
        assert_eq!(owned.as_slice().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
