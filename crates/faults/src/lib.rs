//! # edge-faults: fault injection and crash-safe I/O
//!
//! A fail-rs-style failpoint layer plus the crash-safe file primitives the
//! rest of the workspace builds its durability story on.
//!
//! ## Failpoints
//!
//! A *failpoint* is a named hook compiled into library code:
//!
//! ```ignore
//! edge_faults::failpoint!("persist.save");   // inside a Result-returning fn
//! ```
//!
//! Inactive failpoints cost one relaxed atomic load and a branch — the same
//! disabled-path discipline as `edge-obs` (measured by the `faults_overhead`
//! criterion bench). When activated, a failpoint performs a configured
//! [`Action`]: return an injected I/O error, truncate a write, stall the
//! thread (`sleep(250)` — wedged-worker simulation), panic, or abort the
//! whole process — the crash/corruption repertoire the fault-injection test
//! suite drives.
//!
//! Activation is either programmatic ([`configure`], usually through a
//! [`FailScenario`] in tests) or via the `EDGE_FAILPOINTS` environment
//! variable parsed by [`init_from_env`] (the CLI calls it at startup):
//!
//! ```text
//! EDGE_FAILPOINTS='fsio.write=err;train.epoch_end=3*off->abort'
//! ```
//!
//! The spec grammar follows fail-rs: `;`-separated `name=spec` pairs, where
//! a spec is a `->`-chained sequence of terms, each an action with an
//! optional hit-count prefix. `3*off->abort` means "do nothing for the first
//! three hits, then abort the process" — how the CI kill-resume job dies
//! deterministically mid-training.
//!
//! ## Crash-safe I/O
//!
//! [`fsio::atomic_write`] writes temp-file + fsync + atomic rename (+
//! directory fsync), so a crash at any instant leaves either the old file or
//! the new file, never a torn hybrid. [`crc64::checksum`] (CRC-64/XZ) is the
//! integrity check `edge-core` embeds in every persisted artifact, and
//! [`mmap::Mmap`] is the read-only mapping the zero-copy artifact loader
//! borrows tensor sections from.

pub mod crc64;
pub mod fsio;
pub mod mmap;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an active failpoint does when hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Do nothing (useful with a count prefix to delay a later term).
    Off,
    /// Surface an injected error to the caller (an `Other`-kind
    /// `std::io::Error` from [`check`] / [`failpoint!`]).
    Err(Option<String>),
    /// Panic at the failpoint site.
    Panic(Option<String>),
    /// Abort the whole process — the programmable SIGKILL used by
    /// crash-recovery tests.
    Abort,
    /// For write sites: persist only the first `n` bytes, then fail — a
    /// torn-write simulation.
    Partial(usize),
    /// Stall the calling thread for `n` milliseconds, then continue
    /// normally — a wedged-worker / slow-dependency simulation. The sleep
    /// happens inside [`eval`]; `check` still returns `Ok`.
    Sleep(u64),
}

/// One term of a spec chain: an action that fires at most `remaining` times
/// (`None` = forever).
#[derive(Debug, Clone)]
struct Term {
    remaining: Option<u64>,
    action: Action,
}

/// Global on/off switch: true iff at least one failpoint is configured. The
/// only thing the inactive hot path ever reads.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Vec<Term>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Vec<Term>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, Vec<Term>>> {
    // A panic action poisons the lock by design; the registry data is still
    // consistent (we never unwind mid-mutation).
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// True when any failpoint is configured. The inactive fast path — a relaxed
/// load and a branch.
#[inline(always)]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Parses one spec chain, e.g. `"3*off->1*err(disk full)->abort"`.
fn parse_spec(spec: &str) -> Result<Vec<Term>, String> {
    spec.split("->").map(|term| parse_term(term.trim())).collect()
}

fn parse_term(term: &str) -> Result<Term, String> {
    let (remaining, action) = match term.split_once('*') {
        Some((count, action)) => {
            let n: u64 = count
                .trim()
                .parse()
                .map_err(|_| format!("bad hit count '{count}' in failpoint term '{term}'"))?;
            (Some(n), action.trim())
        }
        None => (None, term),
    };
    // Split `name(arg)` into the action name and the optional argument.
    let (name, arg) = match action.split_once('(') {
        Some((name, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed '(' in failpoint term '{term}'"))?;
            (name.trim(), Some(arg.to_string()))
        }
        None => (action, None),
    };
    let action = match name {
        "off" => Action::Off,
        "err" | "return" => Action::Err(arg),
        "panic" => Action::Panic(arg),
        "abort" => Action::Abort,
        "partial" => {
            let arg = arg.ok_or_else(|| format!("partial needs a byte count in '{term}'"))?;
            let n = arg
                .trim()
                .parse()
                .map_err(|_| format!("bad partial byte count '{arg}' in '{term}'"))?;
            Action::Partial(n)
        }
        "sleep" | "delay" => {
            let arg = arg.ok_or_else(|| format!("sleep needs milliseconds in '{term}'"))?;
            let ms = arg
                .trim()
                .parse()
                .map_err(|_| format!("bad sleep duration '{arg}' in '{term}'"))?;
            Action::Sleep(ms)
        }
        other => {
            return Err(format!(
                "unknown failpoint action '{other}' (off|err|panic|abort|partial|sleep)"
            ))
        }
    };
    Ok(Term { remaining, action })
}

/// Configures one failpoint from a spec string. Replaces any existing
/// configuration for `name`.
pub fn configure(name: &str, spec: &str) -> Result<(), String> {
    let terms = parse_spec(spec)?;
    let mut reg = lock_registry();
    reg.insert(name.to_string(), terms);
    ACTIVE.store(true, Ordering::Relaxed);
    Ok(())
}

/// Removes one failpoint.
pub fn remove(name: &str) {
    let mut reg = lock_registry();
    reg.remove(name);
    if reg.is_empty() {
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

/// Removes every configured failpoint and deactivates the layer.
pub fn clear() {
    let mut reg = lock_registry();
    reg.clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

/// The currently configured failpoint names (for diagnostics).
pub fn list() -> Vec<String> {
    let mut names: Vec<String> = lock_registry().keys().cloned().collect();
    names.sort();
    names
}

/// Applies a `name=spec;name=spec` configuration string (the
/// `EDGE_FAILPOINTS` format). Returns the number of failpoints configured.
pub fn apply_config_string(config: &str) -> Result<usize, String> {
    let mut n = 0;
    for pair in config.split(';') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, spec) =
            pair.split_once('=').ok_or_else(|| format!("expected name=spec, got '{pair}'"))?;
        configure(name.trim(), spec.trim())?;
        n += 1;
    }
    Ok(n)
}

/// Reads `EDGE_FAILPOINTS` and configures the named failpoints. A missing or
/// empty variable is a no-op. Returns the number of failpoints configured.
pub fn init_from_env() -> Result<usize, String> {
    match std::env::var("EDGE_FAILPOINTS") {
        Ok(config) if !config.trim().is_empty() => apply_config_string(&config),
        _ => Ok(0),
    }
}

/// Evaluates a failpoint by name: consumes one hit and returns the injected
/// action, or `None` when the failpoint is unconfigured/exhausted/`off`.
/// `Panic` and `Abort` actions execute here and do not return.
pub fn eval(name: &str) -> Option<Action> {
    if !enabled() {
        return None;
    }
    let action = {
        let mut reg = lock_registry();
        let terms = reg.get_mut(name)?;
        let mut hit = None;
        for term in terms.iter_mut() {
            match &mut term.remaining {
                Some(0) => continue,
                Some(n) => {
                    *n -= 1;
                    hit = Some(term.action.clone());
                    break;
                }
                None => {
                    hit = Some(term.action.clone());
                    break;
                }
            }
        }
        hit?
        // Lock dropped before any panic/abort below.
    };
    match action {
        Action::Off => None,
        Action::Panic(msg) => {
            panic!("failpoint '{name}': {}", msg.unwrap_or_else(|| "injected panic".to_string()))
        }
        Action::Abort => {
            eprintln!("failpoint '{name}': aborting process");
            std::process::abort();
        }
        Action::Sleep(ms) => {
            // The stall executes here so every hook style (check / fired /
            // eval) pays it; callers then proceed normally.
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Some(Action::Sleep(ms))
        }
        other => Some(other),
    }
}

/// Builds the injected `std::io::Error` for an `err` action at `name`.
pub fn injected_error(name: &str, msg: Option<String>) -> std::io::Error {
    std::io::Error::other(format!(
        "failpoint '{name}': {}",
        msg.unwrap_or_else(|| "injected error".to_string())
    ))
}

/// Evaluates a failpoint and converts an `err` action into an I/O error
/// (`partial` is treated as `err` here — only write sites honor the byte
/// budget). The typical call site is the [`failpoint!`] macro.
pub fn check(name: &str) -> std::io::Result<()> {
    match eval(name) {
        Some(Action::Err(msg)) => Err(injected_error(name, msg)),
        Some(Action::Partial(_)) => Err(injected_error(name, Some("partial write".to_string()))),
        _ => Ok(()),
    }
}

/// True when the failpoint fired with an `err`/`partial` action — for sites
/// that inject *state* corruption (e.g. a NaN gradient) rather than
/// returning an error.
pub fn fired(name: &str) -> bool {
    matches!(eval(name), Some(Action::Err(_)) | Some(Action::Partial(_)))
}

/// The failpoint hook: a no-op branch when the layer is inactive; when the
/// named failpoint is configured `err`, early-returns an injected
/// `std::io::Error` via `?` (the enclosing function's error type must be
/// `From<std::io::Error>`).
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::check($name)?;
        }
    };
}

fn scenario_lock() -> &'static Mutex<()> {
    static SCENARIO: OnceLock<Mutex<()>> = OnceLock::new();
    SCENARIO.get_or_init(|| Mutex::new(()))
}

/// Serializes fault-injection tests: holds a global lock for its lifetime,
/// starts from a clean registry (plus anything in `EDGE_FAILPOINTS`), and
/// clears all failpoints on drop. Mirrors fail-rs's `FailScenario`.
pub struct FailScenario {
    _guard: MutexGuard<'static, ()>,
}

impl FailScenario {
    /// Acquires the scenario lock and resets failpoint state.
    pub fn setup() -> Self {
        let guard = scenario_lock().lock().unwrap_or_else(|e| e.into_inner());
        clear();
        init_from_env().expect("EDGE_FAILPOINTS parses");
        Self { _guard: guard }
    }
}

impl Drop for FailScenario {
    fn drop(&mut self) {
        clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_failpoints_do_nothing() {
        let _s = FailScenario::setup();
        assert!(!enabled());
        assert!(eval("nope").is_none());
        assert!(check("nope").is_ok());
        assert!(!fired("nope"));
    }

    #[test]
    fn err_action_yields_io_error() {
        let _s = FailScenario::setup();
        configure("t.err", "err(disk is gone)").unwrap();
        let err = check("t.err").unwrap_err();
        assert!(err.to_string().contains("disk is gone"), "{err}");
        assert!(err.to_string().contains("t.err"));
    }

    #[test]
    fn count_prefix_limits_hits() {
        let _s = FailScenario::setup();
        configure("t.count", "2*err").unwrap();
        assert!(check("t.count").is_err());
        assert!(check("t.count").is_err());
        assert!(check("t.count").is_ok(), "third hit is exhausted");
    }

    #[test]
    fn chains_advance_through_terms() {
        let _s = FailScenario::setup();
        configure("t.chain", "2*off->1*err(now)->off").unwrap();
        assert!(check("t.chain").is_ok());
        assert!(check("t.chain").is_ok());
        assert!(check("t.chain").is_err(), "third hit errs");
        assert!(check("t.chain").is_ok(), "then the trailing off term holds");
        assert!(check("t.chain").is_ok());
    }

    #[test]
    fn partial_action_carries_byte_budget() {
        let _s = FailScenario::setup();
        configure("t.partial", "partial(17)").unwrap();
        assert_eq!(eval("t.partial"), Some(Action::Partial(17)));
    }

    #[test]
    fn sleep_action_stalls_then_continues() {
        let _s = FailScenario::setup();
        configure("t.sleep", "sleep(30)").unwrap();
        let start = std::time::Instant::now();
        // check() must sleep but still succeed: the caller continues.
        assert!(check("t.sleep").is_ok());
        assert!(start.elapsed() >= std::time::Duration::from_millis(25), "{:?}", start.elapsed());
        assert!(!fired("t.sleep"), "sleep is not an err-style firing");
        assert!(apply_config_string("a=sleep").is_err(), "sleep needs a duration");
        assert!(apply_config_string("a=delay(5)").is_ok(), "delay is an alias");
    }

    #[test]
    fn config_string_sets_many_and_reports_errors() {
        let _s = FailScenario::setup();
        assert_eq!(apply_config_string("a=err; b=2*off->abort ;").unwrap(), 2);
        let mut names = list();
        names.sort();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
        assert!(apply_config_string("broken").is_err());
        assert!(apply_config_string("a=explode").is_err());
        assert!(apply_config_string("a=partial").is_err(), "partial needs a byte count");
        assert!(apply_config_string("a=err(unclosed").is_err());
        assert!(apply_config_string("a=x*err").is_err());
    }

    #[test]
    fn remove_and_clear_deactivate() {
        let _s = FailScenario::setup();
        configure("t.rm", "err").unwrap();
        assert!(enabled());
        remove("t.rm");
        assert!(!enabled());
        configure("t.rm", "err").unwrap();
        clear();
        assert!(!enabled());
        assert!(check("t.rm").is_ok());
    }

    #[test]
    fn panic_action_panics_at_site() {
        let _s = FailScenario::setup();
        configure("t.panic", "panic(boom)").unwrap();
        let caught = std::panic::catch_unwind(|| {
            let _ = eval("t.panic");
        });
        let err = caught.unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom"), "{msg}");
        // The registry survives a panicking failpoint.
        clear();
        assert!(!enabled());
    }

    #[test]
    fn failpoint_macro_early_returns() {
        let _s = FailScenario::setup();
        fn site() -> std::io::Result<u32> {
            crate::failpoint!("t.macro");
            Ok(7)
        }
        assert_eq!(site().unwrap(), 7);
        configure("t.macro", "err").unwrap();
        assert!(site().is_err());
    }
}
