//! CRC-64/XZ (reflected, poly `0x42F0E1EBA9EA3693`): the checksum embedded
//! in persisted EDGE artifacts so the loader can tell a bit-flipped or
//! truncated file from a valid one.

use std::sync::OnceLock;

/// The reflected form of the CRC-64/XZ polynomial.
const POLY_REFLECTED: u64 = 0xC96C_5795_D787_0F42;

fn table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ POLY_REFLECTED } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-64/XZ of `bytes` (init `!0`, xorout `!0`).
pub fn checksum(bytes: &[u8]) -> u64 {
    let table = table();
    let mut crc = !0u64;
    for &b in bytes {
        crc = table[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The CRC-64/XZ catalogue check value.
        assert_eq!(checksum(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = checksum(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(checksum(&flipped), reference, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = vec![0xABu8; 256];
        let reference = checksum(&data);
        for len in 0..data.len() {
            assert_ne!(checksum(&data[..len]), reference, "missed truncation to {len}");
        }
    }
}
