//! Crash-safe file writes: temp-file + fsync + atomic rename + directory
//! fsync. A crash (or SIGKILL) at any instant leaves either the previous
//! file contents or the complete new contents at the target path — never a
//! truncated hybrid, which is what a plain `std::fs::write` risks.
//!
//! Failpoints (see the crate docs for activation):
//!
//! | name | effect |
//! |---|---|
//! | `fsio.write` | `err` fails the data write; `partial(n)` persists only the first `n` bytes of the temp file, then fails (the rename never happens) |
//! | `fsio.fsync` | fail the file fsync |
//! | `fsio.rename` | fail the atomic rename |

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{eval, failpoint, injected_error, Action};

/// Distinguishes temp files across threads of one process (the pid alone is
/// not enough — parallel tests write concurrently).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_path_for(path: &Path, dir: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("artifact");
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!(".{name}.tmp.{}.{seq}", std::process::id()))
}

/// Writes `bytes` to `path` atomically: parent directories are created if
/// absent, the data goes to a temp file in the target directory, is fsynced,
/// and is renamed over the target; finally the directory entry is fsynced.
/// On any failure the temp file is removed and the target is untouched.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let tmp = tmp_path_for(path, &dir);
    let result = write_and_rename(&tmp, path, &dir, bytes);
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn write_and_rename(tmp: &Path, path: &Path, dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(tmp)?;
    if crate::enabled() {
        match eval("fsio.write") {
            Some(Action::Err(msg)) => return Err(injected_error("fsio.write", msg)),
            Some(Action::Partial(n)) => {
                // A torn write: some bytes land, then the "crash".
                file.write_all(&bytes[..n.min(bytes.len())])?;
                let _ = file.sync_all();
                return Err(injected_error("fsio.write", Some("partial write".to_string())));
            }
            _ => {}
        }
    }
    file.write_all(bytes)?;
    failpoint!("fsio.fsync");
    file.sync_all()?;
    drop(file);
    failpoint!("fsio.rename");
    fs::rename(tmp, path)?;
    // Persist the rename itself: fsync the containing directory so the new
    // directory entry survives power loss (best-effort on non-Unix).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{configure, FailScenario};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edge_fsio_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_temp_litter(dir: &Path) -> bool {
        fs::read_dir(dir)
            .unwrap()
            .all(|e| !e.unwrap().file_name().to_string_lossy().contains(".tmp."))
    }

    #[test]
    fn writes_bytes_and_creates_parents() {
        let dir = tmp_dir("ok");
        let path = dir.join("nested/deeper/out.bin");
        atomic_write(&path, b"payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert!(no_temp_litter(path.parent().unwrap()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_replaces_whole_file() {
        let dir = tmp_dir("overwrite");
        let path = dir.join("out.bin");
        atomic_write(&path, b"a much longer original payload").unwrap();
        atomic_write(&path, b"short").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"short");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_error_leaves_target_untouched() {
        let _s = FailScenario::setup();
        let dir = tmp_dir("err");
        let path = dir.join("out.bin");
        atomic_write(&path, b"original").unwrap();
        configure("fsio.write", "err(no space)").unwrap();
        let err = atomic_write(&path, b"replacement").unwrap_err();
        assert!(err.to_string().contains("no space"));
        assert_eq!(fs::read(&path).unwrap(), b"original", "target must keep old contents");
        assert!(no_temp_litter(&dir), "failed write must clean its temp file");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_write_never_reaches_target() {
        let _s = FailScenario::setup();
        let dir = tmp_dir("partial");
        let path = dir.join("out.bin");
        atomic_write(&path, b"original").unwrap();
        configure("fsio.write", "partial(3)").unwrap();
        assert!(atomic_write(&path, b"replacement").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"original");
        assert!(no_temp_litter(&dir));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_and_rename_failpoints_are_typed_errors() {
        let _s = FailScenario::setup();
        let dir = tmp_dir("late");
        let path = dir.join("out.bin");
        for fp in ["fsio.fsync", "fsio.rename"] {
            configure(fp, "1*err").unwrap();
            let err = atomic_write(&path, b"data").unwrap_err();
            assert!(err.to_string().contains(fp), "{err}");
            assert!(!path.exists(), "{fp} failure must not surface a file");
            assert!(no_temp_litter(&dir));
        }
        fs::remove_dir_all(&dir).ok();
    }
}
