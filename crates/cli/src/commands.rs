//! Subcommand implementations for `edge-cli`.
//!
//! Human-facing progress goes to stderr via [`edge_obs::progress!`]; stdout
//! carries only the command's machine-parseable result (predictions, metric
//! lines, profile tables).

use std::collections::HashMap;
use std::path::Path;

use edge_core::{
    inspect_artifact, upgrade_artifact, ArtifactInfo, ArtifactLoad, EdgeConfig, EdgeModel,
    PredictError, PredictOptions, PredictRequest, Predictor, QuantMode, TrainError, TrainOptions,
};
use edge_data::{dataset_recognizer, Dataset, PresetSize};

/// The help text.
pub const USAGE: &str = "\
edge-cli - interpretable tweet geolocation (EDGE, ICDE 2021 reproduction)

USAGE:
    edge-cli <COMMAND> [OPTIONS]

COMMANDS:
    generate   create a synthetic corpus
                 --preset nyma|lama|ny2020|covid19   (default nyma)
                 --size smoke|default|paper          (default default)
                 --seed <u64>                        (default 42)
                 --out <path>                        (required)
    train      train EDGE on a corpus's 75% chronological split
                 --data <path>                       (required)
                 --profile smoke|fast|paper          (default fast)
                 --epochs <n>                        (override profile)
                 --components <M>                    (override profile)
                 --seed <u64>                        (default 42)
                 --threads <n>                       (worker threads; default: all
                                                      cores, or EDGE_NUM_THREADS)
                 --out <path>                        (required)
                 --checkpoint-dir <dir>              (write crash-safe checkpoints)
                 --checkpoint-every <n>              (epochs between checkpoints;
                                                      default 1)
                 --resume                            (continue from the newest
                                                      checkpoint in --checkpoint-dir)
                 --fresh-alloc                       (disable the tape arena; allocate
                                                      every batch fresh — bit-identical,
                                                      for A/B timing)
                 --trace <path>                      (dump span trace as JSONL)
                 --metrics-out <path>                (dump metrics snapshot as JSON)
                 --telemetry-out <dir>               (write per-epoch telemetry JSONL)
                 --quantize none|f16|int8            (smoothed-table encoding of the
                                                      saved artifact; default none)
                 --format mmap|legacy                (artifact layout; default mmap,
                                                      the zero-copy mapped format)
    predict    predict one tweet's location mixture
                 --model <path>                      (required)
                 --text <tweet text>                 (required)
                 --fallback-prior                    (answer zero-entity tweets with
                                                      the training-split prior)
    evaluate   score a model on a corpus's 25% test split
                 --model <path>                      (required)
                 --data <path>                       (required)
                 --fallback-prior                    (score zero-entity tweets with
                                                      the training-split prior)
                 --threads <n>                       (worker threads)
                 --trace <path>                      (dump span trace as JSONL)
                 --metrics-out <path>                (dump metrics snapshot as JSON)
    serve      run the event-loop HTTP inference server on saved model(s)
                 --model <path>                      (required; repeat as
                                                      --model NAME=PATH to load
                                                      one shard per metro and
                                                      route by resolved entities)
                 --addr <host:port>                  (default 127.0.0.1:7878)
                 --event-loops <n>                   (epoll loop threads; default 2)
                 --replicas <n>                      (scheduler threads per shard;
                                                      default 1)
                 --max-batch <n>                     (default 32)
                 --max-delay-us <n>                  (batching window; default 500)
                 --queue-capacity <n>                (shed beyond this, per shard;
                                                      default 256)
                 --cache-capacity <n>                (0 disables; default 4096)
                 --cache-lsh-bits <n>                (SimHash signature width of the
                                                      approximate cache tier; default 16)
                 --cache-hamming-max <n>             (serve cached answers of entity
                                                      sets within this Hamming distance;
                                                      0 = exact only; default 0)
                 --fallback-prior                    (default zero-entity policy)
                 --threads <n>                       (worker threads)
                 --slo-p99-us <n>                    (SLO latency target; default 100000)
                 --slo-max-shed-rate <f>             (SLO shed budget; default 0.01)
                 --slo-window-secs <n>               (SLO rolling window; default 60)
                 --ring-capacity <n>                 (request ring size; default 1024)
                 --slow-request-us <n>               (log requests slower than this
                                                      as JSONL on stderr; 0 = off)
                 --default-deadline-us <n>           (deadline for requests without
                                                      X-Deadline-Us; 0 = unbounded;
                                                      default 30000000)
                 --max-body-bytes <n>                (413 beyond this; default 1048576)
                 --brownout-p99-us <n>               (latency target driving brownout
                                                      escalation; default 100000)
                 --no-brownout                       (disable the degradation ladder)
                 --reload-breaker-threshold <n>      (consecutive /reload failures
                                                      before the breaker opens;
                                                      0 = off; default 3)
                 --reload-breaker-cooldown-secs <n>  (open-breaker cooldown; default 10)
    top        live dashboard for a running server (polls /metrics; prints
               one row per model shard plus a total row)
                 --addr <host:port>                  (default 127.0.0.1:7878)
                 --interval-ms <n>                   (poll interval; default 1000)
                 --iters <n>                         (samples to print; 0 = forever)
                 --max-errors <n>                    (exit non-zero after this many
                                                      consecutive failed polls;
                                                      default 5)
    fsck       verify an artifact (model or checkpoint) without loading it;
               mapped models print their section table and quant mode
                 <path>                              (positional, required)
                 --upgrade                           (rewrite a legacy envelope in
                                                      the zero-copy mapped layout,
                                                      atomically)
                 --quantize none|f16|int8            (with --upgrade: re-encode the
                                                      smoothed table; default none)
                 --out <path>                        (with --upgrade: write here
                                                      instead of in place)
    profile    train under full tracing and print a self-time profile table
                 --preset nyma|lama|ny2020|covid19   (default nyma)
                 --size smoke|default|paper          (default smoke)
                 --seed <u64>                        (default 42)
                 --threads <n>                       (worker threads)
                 --out <dir>                         (default results; telemetry
                                                      JSONL lands in <dir>/telemetry)
                 --trace <path>                      (also dump raw span trace JSONL)
";

/// Flags that take no value; present maps to `"true"`.
const BOOL_FLAGS: &[&str] = &["resume", "fallback-prior", "fresh-alloc", "no-brownout", "upgrade"];

/// Parses `--key value` pairs plus the valueless [`BOOL_FLAGS`].
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        if BOOL_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing required --{key}"))
}

fn parse_size(s: &str) -> Result<PresetSize, String> {
    match s {
        "smoke" => Ok(PresetSize::Smoke),
        "default" => Ok(PresetSize::Default),
        "paper" => Ok(PresetSize::Paper),
        other => Err(format!("unknown size '{other}' (smoke|default|paper)")),
    }
}

/// The cross-cutting `--threads <n>` flag: pins the `edge-par` pool width
/// for everything the command runs (overrides `EDGE_NUM_THREADS`).
fn apply_threads(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(t) = flags.get("threads") {
        let n: usize = t.parse().map_err(|_| format!("bad --threads '{t}'"))?;
        if n == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        edge_par::set_num_threads(n);
    }
    Ok(())
}

/// Turns a [`TrainError`] into an actionable user-facing message.
fn describe_train_error(e: TrainError) -> String {
    match &e {
        TrainError::EmptyCorpus => format!("{e}; generate a corpus first (edge-cli generate)"),
        TrainError::NoEntities(_) => {
            format!("{e}; the corpus and recognizer share no vocabulary")
        }
        TrainError::Diverged { .. } => {
            format!("{e}; lower the learning rate or enable --checkpoint-dir for rollback")
        }
        TrainError::Interrupted(_) => {
            format!("{e}; rerun with --resume to continue from the last checkpoint")
        }
        TrainError::InvalidConfig(_) | TrainError::Checkpoint(_) => e.to_string(),
    }
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn build_preset(preset: &str, size: PresetSize, seed: u64) -> Result<Dataset, String> {
    match preset {
        "nyma" => Ok(edge_data::nyma(size, seed)),
        "lama" => Ok(edge_data::lama(size, seed)),
        "ny2020" => Ok(edge_data::ny2020(size, seed)),
        "covid19" => Ok(edge_data::covid19(size, seed)),
        other => Err(format!("unknown preset '{other}' (nyma|lama|ny2020|covid19)")),
    }
}

/// The cross-cutting `--trace <path>` / `--metrics-out <path>` flags: the
/// constructor turns the subsystems on so the command body is observed, and
/// [`ObsOutputs::finish`] dumps what was collected.
struct ObsOutputs {
    trace: Option<String>,
    metrics: Option<String>,
}

fn obs_from_flags(flags: &HashMap<String, String>) -> ObsOutputs {
    let trace = flags.get("trace").cloned();
    let metrics = flags.get("metrics-out").cloned();
    if trace.is_some() {
        edge_obs::set_trace_enabled(true);
    }
    if metrics.is_some() {
        edge_obs::set_metrics_enabled(true);
    }
    ObsOutputs { trace, metrics }
}

impl ObsOutputs {
    fn finish(self) -> Result<(), String> {
        if let Some(path) = self.trace {
            std::fs::write(&path, edge_obs::trace::dump_jsonl())
                .map_err(|e| format!("writing trace {path}: {e}"))?;
            edge_obs::progress!("wrote span trace to {path}");
        }
        if let Some(path) = self.metrics {
            let json = serde_json::to_string_pretty(&edge_obs::metrics::snapshot())
                .map_err(|e| e.to_string())?;
            std::fs::write(&path, json).map_err(|e| format!("writing metrics {path}: {e}"))?;
            edge_obs::progress!("wrote metrics snapshot to {path}");
        }
        Ok(())
    }
}

/// `edge-cli generate`.
pub fn generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let out = required(&flags, "out")?;
    let size = parse_size(flags.get("size").map_or("default", String::as_str))?;
    let seed: u64 =
        flags.get("seed").map_or(Ok(42), |s| s.parse().map_err(|_| format!("bad --seed '{s}'")))?;
    let preset = flags.get("preset").map_or("nyma", String::as_str);
    let dataset = build_preset(preset, size, seed)?;
    let json = serde_json::to_string(&dataset).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    edge_obs::progress!(
        "wrote {} ({} tweets, {} gazetteer entries, timeline {}-{})",
        out,
        dataset.len(),
        dataset.gazetteer.len(),
        dataset.timeline.0.format_us(),
        dataset.timeline.1.format_us()
    );
    Ok(())
}

/// `edge-cli train`.
pub fn train(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let data = required(&flags, "data")?;
    let out = required(&flags, "out")?;
    let mut config = match flags.get("profile").map_or("fast", String::as_str) {
        "smoke" => EdgeConfig::smoke(),
        "fast" => EdgeConfig::fast(),
        "paper" => EdgeConfig::paper(),
        other => return Err(format!("unknown profile '{other}' (smoke|fast|paper)")),
    };
    if let Some(e) = flags.get("epochs") {
        config.epochs = e.parse().map_err(|_| format!("bad --epochs '{e}'"))?;
    }
    if let Some(m) = flags.get("components") {
        config.n_components = m.parse().map_err(|_| format!("bad --components '{m}'"))?;
    }
    if let Some(s) = flags.get("seed") {
        config.seed = s.parse().map_err(|_| format!("bad --seed '{s}'"))?;
    }
    apply_threads(&flags)?;
    let obs = obs_from_flags(&flags);
    let telemetry_dir = flags.get("telemetry-out").cloned();
    if telemetry_dir.is_some() {
        // Run name = the model file's stem, so telemetry pairs with the model.
        let stem =
            Path::new(out).file_stem().and_then(|s| s.to_str()).unwrap_or("train").to_string();
        edge_obs::telemetry::start_run(&stem);
    }

    let mut opts = TrainOptions::default();
    if let Some(dir) = flags.get("checkpoint-dir") {
        opts.checkpoint_dir = Some(dir.into());
    }
    if let Some(n) = flags.get("checkpoint-every") {
        opts.checkpoint_every = n.parse().map_err(|_| format!("bad --checkpoint-every '{n}'"))?;
    }
    if flags.contains_key("resume") {
        if opts.checkpoint_dir.is_none() {
            return Err("--resume needs --checkpoint-dir".to_string());
        }
        opts.resume = true;
    }
    // Escape hatch: disable the tape arena and allocate every batch fresh
    // (bit-identical results; for A/B timing and allocator debugging).
    if flags.contains_key("fresh-alloc") {
        opts.fresh_alloc = true;
    }

    let dataset = load_dataset(data)?;
    let (train_split, _) = dataset.paper_split();
    edge_obs::progress!(
        "training EDGE on {} tweets (d={}, M={}, {} epochs) ...",
        train_split.len(),
        config.embed_dim,
        config.n_components,
        config.epochs
    );
    let started = std::time::Instant::now();
    let (model, report) =
        EdgeModel::train(train_split, dataset_recognizer(&dataset), &dataset.bbox, config, &opts)
            .map_err(describe_train_error)?;
    if report.start_epoch > 0 {
        edge_obs::progress!("resumed from checkpoint at epoch {}", report.start_epoch);
    }
    edge_obs::progress!(
        "done in {:.1?}: {} entities, NLL {:.3} -> {:.3}{}",
        started.elapsed(),
        model.entity_index().len(),
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap(),
        if report.rollbacks > 0 {
            format!(" ({} divergence rollback(s))", report.rollbacks)
        } else {
            String::new()
        }
    );
    let quant: QuantMode = flags.get("quantize").map_or(Ok(QuantMode::None), |q| q.parse())?;
    match flags.get("format").map_or("mmap", String::as_str) {
        "mmap" => {
            model.save_artifact(out, quant).map_err(|e| e.to_string())?;
            edge_obs::progress!("saved model to {out} (mmap, quant={quant})");
        }
        "legacy" => {
            if quant != QuantMode::None {
                return Err("--format legacy cannot quantize (use --format mmap)".to_string());
            }
            // The legacy JSON envelope stays producible for compatibility
            // tests and older readers.
            #[allow(deprecated)]
            model.save(out).map_err(|e| e.to_string())?;
            edge_obs::progress!("saved model to {out} (legacy envelope)");
        }
        other => return Err(format!("unknown format '{other}' (mmap|legacy)")),
    }
    if let Some(dir) = &telemetry_dir {
        if let Some(path) =
            edge_obs::telemetry::write_to_dir(dir).map_err(|e| format!("writing telemetry: {e}"))?
        {
            edge_obs::progress!("wrote telemetry to {}", path.display());
        }
        edge_obs::telemetry::stop();
    }
    obs.finish()
}

/// `edge-cli predict`.
pub fn predict(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let model_path = required(&flags, "model")?;
    let text = required(&flags, "text")?;
    let model = EdgeModel::load_artifact(model_path).map_err(|e| e.to_string())?;
    let opts = PredictOptions::default().with_fallback_prior(flags.contains_key("fallback-prior"));
    match model.locate(&PredictRequest::text(text), &opts) {
        Err(PredictError::NoEntities) => {
            println!("not covered: no entity of this tweet appears in the training graph")
        }
        Err(e) => return Err(e.to_string()),
        Ok(resp) => {
            let p = &resp.prediction;
            if resp.from_fallback {
                println!("(answered with the training-split prior: no recognized entity)");
            }
            println!("point estimate (Eq. 14): ({:.5}, {:.5})", p.point.lat, p.point.lon);
            if !p.attention.is_empty() {
                println!("attention:");
                for (entity, w) in &p.attention {
                    println!("  {entity:<28} {w:.4}");
                }
            }
            println!("mixture:");
            for (pi, g) in p.mixture.iter() {
                println!(
                    "  pi={pi:.4} mu=({:.5}, {:.5}) sigma=({:.5}, {:.5}) rho={:+.3}",
                    g.mu.lat, g.mu.lon, g.sigma_lat, g.sigma_lon, g.rho
                );
            }
        }
    }
    Ok(())
}

/// `edge-cli evaluate`.
pub fn evaluate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let model_path = required(&flags, "model")?;
    let data = required(&flags, "data")?;
    apply_threads(&flags)?;
    let obs = obs_from_flags(&flags);
    let model = EdgeModel::load_artifact(model_path).map_err(|e| e.to_string())?;
    let opts = PredictOptions::default().with_fallback_prior(flags.contains_key("fallback-prior"));
    let dataset = load_dataset(data)?;
    let (_, test) = dataset.paper_split();
    let outcome = model.evaluate(test, &opts);
    let report = outcome.report().ok_or("the model covered no test tweet")?;
    println!(
        "test tweets {:>6}   covered {:>6} ({:.1}%)",
        test.len(),
        report.n,
        report.coverage * 100.0
    );
    println!("mean     {:>8.2} km", report.mean_km);
    println!("median   {:>8.2} km", report.median_km);
    println!("@3km     {:>8.4}", report.at_3km);
    println!("@5km     {:>8.4}", report.at_5km);
    // The complement of coverage: tweets whose entities all missed the
    // training graph (satellite of the paper's coverage discussion).
    println!("ner-miss {:>8.1} %", (1.0 - report.coverage) * 100.0);
    obs.finish()
}

/// `edge-cli profile`: trains a (by default smoke-sized) preset under full
/// tracing + metrics + telemetry, prints the self-time profile table and the
/// metrics snapshot on stdout, and writes per-epoch telemetry JSONL under
/// `<out>/telemetry/`.
pub fn profile(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut preset = flags.get("preset").map_or("nyma", String::as_str);
    let mut size_name = flags.get("size").map_or("smoke", String::as_str);
    // `--preset smoke|default|paper` is accepted as a size shorthand: the
    // profile of interest is the scale, not the corpus flavor.
    if matches!(preset, "smoke" | "default" | "paper") {
        size_name = preset;
        preset = "nyma";
    }
    let size = parse_size(size_name)?;
    let seed: u64 =
        flags.get("seed").map_or(Ok(42), |s| s.parse().map_err(|_| format!("bad --seed '{s}'")))?;
    let out_dir = flags.get("out").map_or("results", String::as_str);
    apply_threads(&flags)?;

    edge_obs::set_metrics_enabled(true);
    edge_obs::set_trace_enabled(true);
    edge_obs::metrics::reset();
    edge_obs::trace::reset();
    let run = format!("profile-{preset}-{size_name}");
    edge_obs::telemetry::start_run(&run);

    let dataset = build_preset(preset, size, seed)?;
    let (train_split, _) = dataset.paper_split();
    let mut config = match size {
        PresetSize::Smoke => EdgeConfig::smoke(),
        _ => EdgeConfig::fast(),
    };
    config.seed = seed;
    edge_obs::progress!(
        "profiling EDGE training on {} tweets ({} epochs) ...",
        train_split.len(),
        config.epochs
    );
    let started = std::time::Instant::now();
    let (model, report) = EdgeModel::train(
        train_split,
        dataset_recognizer(&dataset),
        &dataset.bbox,
        config,
        &TrainOptions::default(),
    )
    .map_err(describe_train_error)?;
    edge_obs::progress!(
        "trained in {:.1?}: {} entities, final NLL {:.3}",
        started.elapsed(),
        model.entity_index().len(),
        report.epoch_losses.last().unwrap()
    );

    let profile = edge_obs::trace::profile();
    print!("{}", profile.render());
    // The phases the paper's pipeline decomposes into; self-times partition
    // the root span, so this should sit at (or very near) 100%.
    let named = [
        "train",
        "entity2vec",
        "graph.build",
        "epoch",
        "gcn",
        "attention",
        "mdn",
        "backward",
        "adam.step",
        "matmul",
        "sgns",
    ];
    println!("named-span coverage: {:.1}%", 100.0 * profile.coverage(&named));
    println!();
    print!("{}", edge_obs::metrics::snapshot().render());

    let telemetry_dir = Path::new(out_dir).join("telemetry");
    if let Some(path) = edge_obs::telemetry::write_to_dir(&telemetry_dir)
        .map_err(|e| format!("writing telemetry: {e}"))?
    {
        edge_obs::progress!("wrote telemetry to {}", path.display());
    }
    edge_obs::telemetry::stop();
    if let Some(path) = flags.get("trace") {
        std::fs::write(path, edge_obs::trace::dump_jsonl())
            .map_err(|e| format!("writing trace {path}: {e}"))?;
        edge_obs::progress!("wrote span trace to {path}");
    }
    Ok(())
}

/// `edge-cli fsck <path>`: verifies an artifact's envelope (magic, length,
/// CRC64) and payload (schema + internal consistency) without instantiating
/// a model, and prints what it found.
pub fn serve(args: &[String]) -> Result<(), String> {
    // `--model` is repeatable (one shard per metro); pre-extract every
    // occurrence, since `parse_flags` keeps only the last repeat.
    let mut models: Vec<String> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--model" {
            let v = args.get(i + 1).ok_or("--model needs a value")?;
            models.push(v.clone());
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    let flags = parse_flags(&rest)?;
    apply_threads(&flags)?;
    if models.is_empty() {
        return Err("missing required --model".to_string());
    }

    let mut config = edge_serve::ServeConfig { handle_signals: true, ..Default::default() };
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.clone();
    }
    fn numeric<T: std::str::FromStr>(
        flags: &HashMap<String, String>,
        key: &str,
        slot: &mut T,
    ) -> Result<(), String> {
        if let Some(v) = flags.get(key) {
            *slot = v.parse().map_err(|_| format!("bad --{key} '{v}'"))?;
        }
        Ok(())
    }
    numeric(&flags, "max-batch", &mut config.max_batch)?;
    numeric(&flags, "max-delay-us", &mut config.max_delay_us)?;
    numeric(&flags, "queue-capacity", &mut config.queue_capacity)?;
    numeric(&flags, "cache-capacity", &mut config.cache_capacity)?;
    numeric(&flags, "cache-lsh-bits", &mut config.cache_lsh_bits)?;
    numeric(&flags, "cache-hamming-max", &mut config.cache_hamming_max)?;
    numeric(&flags, "slo-p99-us", &mut config.slo_target_p99_us)?;
    numeric(&flags, "slo-max-shed-rate", &mut config.slo_max_shed_rate)?;
    numeric(&flags, "slo-window-secs", &mut config.slo_window_secs)?;
    numeric(&flags, "ring-capacity", &mut config.ring_capacity)?;
    numeric(&flags, "slow-request-us", &mut config.slow_request_us)?;
    numeric(&flags, "default-deadline-us", &mut config.default_deadline_us)?;
    numeric(&flags, "max-body-bytes", &mut config.max_body_bytes)?;
    numeric(&flags, "brownout-p99-us", &mut config.brownout_p99_us)?;
    numeric(&flags, "reload-breaker-threshold", &mut config.reload_breaker_threshold)?;
    numeric(&flags, "reload-breaker-cooldown-secs", &mut config.reload_breaker_cooldown_secs)?;
    numeric(&flags, "event-loops", &mut config.event_loops)?;
    numeric(&flags, "replicas", &mut config.replicas)?;
    config.brownout_enabled = !flags.contains_key("no-brownout");
    config.fallback_prior = flags.contains_key("fallback-prior");

    // A bare path is the classic single-model server; any NAME=PATH spec
    // switches to the routed multi-shard form (all specs must then name
    // their shard).
    let server = if models.len() == 1 && !models[0].contains('=') {
        edge_serve::Server::start_from_artifact(&models[0], config)?
    } else {
        let specs: Vec<(String, String)> = models
            .iter()
            .map(|spec| match spec.split_once('=') {
                Some((name, path)) if !name.is_empty() && !path.is_empty() => {
                    Ok((name.to_string(), path.to_string()))
                }
                _ => Err(format!("bad --model '{spec}' (want NAME=PATH when multi-shard)")),
            })
            .collect::<Result<_, _>>()?;
        edge_serve::Server::start_from_artifacts(&specs, config)?
    };
    edge_obs::progress!(
        "serving {} ({} shard{}) on http://{}",
        models.join(", "),
        server.shard_names().len(),
        if server.shard_names().len() == 1 { "" } else { "s" },
        server.addr()
    );
    edge_obs::progress!(
        "endpoints: POST /predict, GET /healthz, GET /metrics, POST /reload, GET /debug/requests"
    );
    server.wait();
    edge_obs::progress!("drained; bye");
    Ok(())
}

/// `edge-cli top`: polls a running server's `/metrics` and prints one
/// rate/latency/SLO row per interval — a terminal dashboard for the serve
/// pipeline. `--iters 1` doubles as a CI check that the exposition parses.
/// Transient poll failures reconnect and keep going; `--max-errors`
/// consecutive failures exit non-zero so a supervisor notices a server
/// that is actually gone, not just restarting.
pub fn top(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7878");
    let sock: std::net::SocketAddr =
        addr.parse().map_err(|_| format!("bad --addr '{addr}' (want host:port)"))?;
    let iters: u64 = match flags.get("iters") {
        Some(v) => v.parse().map_err(|_| format!("bad --iters '{v}'"))?,
        None => 0, // poll until interrupted
    };
    let interval_ms: u64 = match flags.get("interval-ms") {
        Some(v) => v.parse().map_err(|_| format!("bad --interval-ms '{v}'"))?,
        None => 1_000,
    };
    let max_errors: u32 = match flags.get("max-errors") {
        Some(v) => v.parse().map_err(|_| format!("bad --max-errors '{v}'"))?,
        None => 5,
    };
    let mut client =
        edge_serve::Client::connect(sock).map_err(|e| format!("connect {addr}: {e}"))?;

    println!(
        "{:>12} {:>8} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>10}",
        "shard", "qps", "p50_ms", "p95_ms", "p99_ms", "shed%", "hit%", "queue", "mode"
    );
    // Previous-scrape counters per row (total + one per shard), for rates.
    type RowCounters = HashMap<String, (f64, f64, f64, f64)>;
    // One dashboard row: the unlabeled whole-server rollup ("total") or
    // one shard's `serve_shard_*` family values.
    struct TopRow {
        name: String,
        requests: f64,
        /// A shed *counter* for the total row, a shed-rate *gauge* for
        /// shard rows (`shed_is_counter` says which).
        shed: f64,
        hits: f64,
        misses: f64,
        latency_us: [f64; 3],
        queue: f64,
        mode: f64,
        shed_is_counter: bool,
    }
    let mut prev: Option<(std::time::Instant, RowCounters)> = None;
    let mut i = 0u64;
    let mut consecutive_errors = 0u32;
    loop {
        let polled = client
            .request("GET", "/metrics", b"")
            .map_err(|e| format!("GET /metrics: {e}"))
            .and_then(|resp| {
                if resp.status != 200 {
                    return Err(format!("GET /metrics returned {}", resp.status));
                }
                edge_obs::openmetrics::parse(resp.text())
                    .map_err(|e| format!("/metrics is not valid OpenMetrics: {e}"))
            });
        let scrape = match polled {
            Ok(scrape) => {
                consecutive_errors = 0;
                scrape
            }
            Err(msg) => {
                consecutive_errors += 1;
                if max_errors > 0 && consecutive_errors >= max_errors {
                    return Err(format!(
                        "{msg} ({consecutive_errors} consecutive failed polls; giving up)"
                    ));
                }
                edge_obs::progress!(
                    "edge-cli top: {msg} (retry {consecutive_errors}/{max_errors})"
                );
                // The old connection may be torn mid-frame; redial it.
                if let Ok(fresh) = edge_serve::Client::connect(sock) {
                    client = fresh;
                }
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                continue;
            }
        };
        let now = std::time::Instant::now();
        let val = |name: &str, labels: &[(&str, &str)]| scrape.value(name, labels).unwrap_or(0.0);
        let mode_name = |m: f64| match m as i64 {
            0 => "full",
            1 => "cache_only",
            2 => "prior_only",
            3 => "shed",
            _ => "?",
        };
        // Shard rows come from the `serve_shard_*` labeled families; the
        // total row keeps the unlabeled whole-server rollups.
        let mut shard_names: Vec<String> = scrape
            .samples()
            .filter(|s| s.name == "serve_shard_requests_total")
            .filter_map(|s| s.labels.iter().find(|(k, _)| k == "shard").map(|(_, v)| v.clone()))
            .collect();
        shard_names.sort();
        shard_names.dedup();

        let mut rows = vec![TopRow {
            name: "total".to_string(),
            requests: val("serve_requests_total", &[]),
            shed: val("serve_shed_total", &[]),
            hits: val("serve_cache_stats_hits", &[]),
            misses: val("serve_cache_stats_misses", &[]),
            latency_us: [
                val("serve_request_us_p50", &[]),
                val("serve_request_us_p95", &[]),
                val("serve_request_us_p99", &[]),
            ],
            queue: val("serve_queue_depth", &[]),
            mode: val("serve_mode", &[]),
            shed_is_counter: true,
        }];
        for name in &shard_names {
            let l: &[(&str, &str)] = &[("shard", name)];
            rows.push(TopRow {
                name: name.clone(),
                requests: val("serve_shard_requests_total", l),
                shed: val("serve_shard_shed_rate", l),
                hits: val("serve_shard_cache_hits", l),
                misses: val("serve_shard_cache_misses", l),
                latency_us: [
                    val("serve_shard_request_us_p50", l),
                    val("serve_shard_request_us_p95", l),
                    val("serve_shard_request_us_p99", l),
                ],
                queue: val("serve_shard_queue_depth", l),
                mode: val("serve_shard_mode", l),
                shed_is_counter: false,
            });
        }

        let mut next_prev: RowCounters = HashMap::new();
        for row in &rows {
            let base = prev
                .as_ref()
                .and_then(|(t, m)| m.get(&row.name).map(|&(r0, s0, h0, m0)| (*t, r0, s0, h0, m0)));
            let (qps, shed_rate, hit_rate) = match base {
                Some((t, r0, s0, h0, m0)) => {
                    let dt = now.duration_since(t).as_secs_f64().max(1e-9);
                    let dr = (row.requests - r0).max(0.0);
                    let ds = (row.shed - s0).max(0.0);
                    let dh = (row.hits - h0).max(0.0);
                    let dm = (row.misses - m0).max(0.0);
                    let lookups = dh + dm;
                    (
                        dr / dt,
                        if row.shed_is_counter {
                            if dr > 0.0 {
                                ds / dr
                            } else {
                                0.0
                            }
                        } else {
                            row.shed // per-shard shed rate is already a gauge
                        },
                        if lookups > 0.0 { dh / lookups } else { 0.0 },
                    )
                }
                // First sample has no rate base; lifetime ratios stand in.
                None => {
                    let lookups = row.hits + row.misses;
                    (
                        0.0,
                        if row.shed_is_counter {
                            if row.requests > 0.0 {
                                row.shed / row.requests
                            } else {
                                0.0
                            }
                        } else {
                            row.shed
                        },
                        if lookups > 0.0 { row.hits / lookups } else { 0.0 },
                    )
                }
            };
            println!(
                "{:>12.12} {:>8.1} {:>9.2} {:>9.2} {:>9.2} {:>7.2} {:>7.2} {:>6.0} {:>10}",
                row.name,
                qps,
                row.latency_us[0] / 1_000.0,
                row.latency_us[1] / 1_000.0,
                row.latency_us[2] / 1_000.0,
                shed_rate * 100.0,
                hit_rate * 100.0,
                row.queue,
                mode_name(row.mode),
            );
            next_prev.insert(row.name.clone(), (row.requests, row.shed, row.hits, row.misses));
        }
        prev = Some((now, next_prev));
        i += 1;
        if iters > 0 && i >= iters {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

pub fn fsck(args: &[String]) -> Result<(), String> {
    // One positional <path> plus the optional --upgrade/--quantize/--out.
    let mut path: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            rest.push(args[i].clone());
            i += 1;
            if !BOOL_FLAGS.contains(&key) {
                if let Some(v) = args.get(i) {
                    rest.push(v.clone());
                    i += 1;
                }
            }
        } else {
            if path.is_some() {
                return Err("fsck takes exactly one artifact path".to_string());
            }
            path = Some(args[i].clone());
            i += 1;
        }
    }
    let flags = parse_flags(&rest)?;
    let path = path.ok_or(
        "usage: edge-cli fsck <artifact> [--upgrade] [--quantize none|f16|int8] [--out <path>]",
    )?;

    if flags.contains_key("upgrade") {
        let quant: QuantMode = flags.get("quantize").map_or(Ok(QuantMode::None), |q| q.parse())?;
        let out = flags.get("out").map_or(path.as_str(), String::as_str);
        let info = upgrade_artifact(&path, out, quant).map_err(|e| format!("{path}: {e}"))?;
        edge_obs::progress!("upgraded {path} -> {out} (quant={quant})");
        print_artifact_info(out, &info);
        return Ok(());
    }
    if flags.contains_key("quantize") || flags.contains_key("out") {
        return Err("--quantize/--out only apply together with --upgrade".to_string());
    }
    let info = inspect_artifact(&path).map_err(|e| format!("{path}: {e}"))?;
    print_artifact_info(&path, &info);
    Ok(())
}

/// Renders one verified artifact for `fsck`: the envelope summary, and for
/// mapped artifacts the quant mode plus the full section table (every CRC
/// shown here was re-verified by the inspection that produced `info`).
fn print_artifact_info(path: &str, info: &ArtifactInfo) {
    println!("{path}: OK");
    println!("  kind             {}", info.kind);
    println!("  envelope version {}", info.envelope_version);
    println!("  payload          {} bytes, crc64 {}", info.payload_bytes, info.crc64);
    println!("  payload version  {}", info.payload_version);
    if let Some(quant) = &info.quant {
        println!("  quant            {quant}");
    }
    if !info.sections.is_empty() {
        println!(
            "  {:<10} {:>5} {:>10} {:>10} {:>13}  {:<16} status",
            "section", "dtype", "offset", "bytes", "shape", "crc64"
        );
        for s in &info.sections {
            let shape = if s.rows > 0 { format!("{}x{}", s.rows, s.cols) } else { "-".to_string() };
            println!(
                "  {:<10} {:>5} {:>10} {:>10} {:>13}  {:<16} OK",
                s.tag, s.dtype, s.offset, s.bytes, shape, s.crc64
            );
        }
    }
    println!("  {}", info.detail);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing_round_trip() {
        let flags = parse_flags(&strs(&["--preset", "nyma", "--seed", "7"])).unwrap();
        assert_eq!(flags["preset"], "nyma");
        assert_eq!(flags["seed"], "7");
    }

    #[test]
    fn flag_parsing_rejects_bad_shapes() {
        assert!(parse_flags(&strs(&["preset", "nyma"])).is_err());
        assert!(parse_flags(&strs(&["--preset"])).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let flags = parse_flags(&strs(&["--resume", "--checkpoint-dir", "ck", "--fallback-prior"]))
            .unwrap();
        assert_eq!(flags["resume"], "true");
        assert_eq!(flags["fallback-prior"], "true");
        assert_eq!(flags["checkpoint-dir"], "ck");
    }

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size("smoke").unwrap(), PresetSize::Smoke);
        assert_eq!(parse_size("paper").unwrap(), PresetSize::Paper);
        assert!(parse_size("tiny").is_err());
    }

    #[test]
    fn threads_flag_is_validated() {
        assert!(apply_threads(&parse_flags(&strs(&["--threads", "abc"])).unwrap()).is_err());
        assert!(apply_threads(&parse_flags(&strs(&["--threads", "0"])).unwrap()).is_err());
        // A valid count applies without error (pool width is global state;
        // the pool spawns lazily, so nothing is created here).
        apply_threads(&parse_flags(&strs(&["--threads", "2"])).unwrap()).unwrap();
        assert_eq!(edge_par::num_threads(), 2);
    }

    #[test]
    fn required_flag_errors_name_the_flag() {
        let flags = HashMap::new();
        let err = required(&flags, "out").unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn full_cli_round_trip_in_tempdir() {
        let dir = std::env::temp_dir().join("edge_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("corpus.json").to_string_lossy().to_string();
        let model = dir.join("model.json").to_string_lossy().to_string();

        generate(&strs(&["--preset", "nyma", "--size", "smoke", "--seed", "3", "--out", &corpus]))
            .expect("generate");
        train(&strs(&["--data", &corpus, "--profile", "smoke", "--epochs", "2", "--out", &model]))
            .expect("train");
        predict(&strs(&["--model", &model, "--text", "lunch near the Majestic Theatre"]))
            .expect("predict");
        predict(&strs(&[
            "--model",
            &model,
            "--text",
            "no entities whatsoever",
            "--fallback-prior",
        ]))
        .expect("predict with prior fallback");
        evaluate(&strs(&["--model", &model, "--data", &corpus, "--fallback-prior"]))
            .expect("evaluate");
        fsck(&strs(&[&model])).expect("fsck accepts a healthy model");
        assert!(fsck(&strs(&[&corpus])).is_err(), "a raw corpus is not an artifact");

        std::fs::remove_file(&corpus).ok();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn quantized_and_legacy_formats_round_trip_through_the_cli() {
        let dir = std::env::temp_dir().join("edge_cli_quant_test");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("corpus.json").to_string_lossy().to_string();
        let legacy = dir.join("legacy.json").to_string_lossy().to_string();
        let int8 = dir.join("model.int8").to_string_lossy().to_string();

        generate(&strs(&["--preset", "nyma", "--size", "smoke", "--seed", "9", "--out", &corpus]))
            .expect("generate");
        let base = ["--data", &corpus, "--profile", "smoke", "--epochs", "2"];

        // int8-quantized mapped artifact: trains, predicts, fscks.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--out", &int8, "--quantize", "int8"]);
        train(&strs(&args)).expect("train int8");
        predict(&strs(&["--model", &int8, "--text", "lunch near the Majestic Theatre"]))
            .expect("predict from int8 artifact");
        fsck(&strs(&[&int8])).expect("fsck understands quantized artifacts");

        // The legacy envelope is still writable, refuses to quantize, and
        // upgrades in place via fsck --upgrade.
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--out", &legacy, "--format", "legacy"]);
        train(&strs(&args)).expect("train legacy");
        let mut bad: Vec<&str> = base.to_vec();
        bad.extend(["--out", &legacy, "--format", "legacy", "--quantize", "f16"]);
        assert!(train(&strs(&bad)).unwrap_err().contains("legacy"));
        fsck(&strs(&[&legacy, "--upgrade"])).expect("upgrade in place");
        predict(&strs(&["--model", &legacy, "--text", "lunch near the Majestic Theatre"]))
            .expect("predict from upgraded artifact");
        // --quantize without --upgrade is a usage error.
        assert!(fsck(&strs(&[&legacy, "--quantize", "f16"])).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_with_checkpoints_and_resume() {
        let dir = std::env::temp_dir().join("edge_cli_resume_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("corpus.json").to_string_lossy().to_string();
        let model = dir.join("model.json").to_string_lossy().to_string();
        let ckpt = dir.join("ckpt").to_string_lossy().to_string();

        generate(&strs(&["--preset", "nyma", "--size", "smoke", "--seed", "5", "--out", &corpus]))
            .expect("generate");
        let base = ["--data", &corpus, "--profile", "smoke", "--epochs", "3", "--out", &model];
        let mut with_ckpt: Vec<&str> = base.to_vec();
        with_ckpt.extend(["--checkpoint-dir", &ckpt, "--checkpoint-every", "1"]);
        train(&strs(&with_ckpt)).expect("train with checkpoints");
        assert!(
            std::fs::read_dir(&ckpt).unwrap().count() > 0,
            "checkpoints should have been written"
        );
        // Resuming a finished run is a no-op retrain from the last
        // checkpoint's final state; it must succeed and re-save the model.
        let mut resumed: Vec<&str> = with_ckpt.clone();
        resumed.push("--resume");
        train(&strs(&resumed)).expect("resume");
        // --resume without --checkpoint-dir is a usage error.
        let mut bad: Vec<&str> = base.to_vec();
        bad.push("--resume");
        assert!(train(&strs(&bad)).unwrap_err().contains("--checkpoint-dir"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_gives_up_after_consecutive_failures() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept-and-drop server: every poll sees a torn connection, so
        // `top` reconnects, retries, and finally exits non-zero.
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                drop(stream);
            }
        });
        let err =
            top(&strs(&["--addr", &addr, "--interval-ms", "5", "--max-errors", "3"])).unwrap_err();
        assert!(err.contains("consecutive"), "{err}");
    }

    #[test]
    fn unknown_preset_is_reported() {
        let err = generate(&strs(&["--preset", "mars", "--out", "/tmp/x.json"])).unwrap_err();
        assert!(err.contains("mars"));
    }

    #[test]
    fn profile_smoke_writes_telemetry_jsonl() {
        let dir = std::env::temp_dir().join("edge_cli_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.to_string_lossy().to_string();
        profile(&strs(&["--size", "smoke", "--seed", "11", "--out", &out])).expect("profile");
        let telemetry = dir.join("telemetry").join("profile-nyma-smoke.jsonl");
        let text = std::fs::read_to_string(&telemetry).expect("telemetry file");
        // Concurrent tests may also train while the run is active, so only
        // require the records to exist and parse.
        let records = edge_obs::telemetry::from_jsonl(&text).expect("parses");
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.nll.is_finite() && r.wall_secs >= 0.0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
