//! Subcommand implementations for `edge-cli`.

use std::collections::HashMap;

use edge_core::{EdgeConfig, EdgeModel};
use edge_data::{dataset_recognizer, Dataset, PresetSize};
use edge_geo::{DistanceReport, Point};

/// The help text.
pub const USAGE: &str = "\
edge-cli - interpretable tweet geolocation (EDGE, ICDE 2021 reproduction)

USAGE:
    edge-cli <COMMAND> [OPTIONS]

COMMANDS:
    generate   create a synthetic corpus
                 --preset nyma|lama|ny2020|covid19   (default nyma)
                 --size smoke|default|paper          (default default)
                 --seed <u64>                        (default 42)
                 --out <path>                        (required)
    train      train EDGE on a corpus's 75% chronological split
                 --data <path>                       (required)
                 --profile smoke|fast|paper          (default fast)
                 --epochs <n>                        (override profile)
                 --components <M>                    (override profile)
                 --seed <u64>                        (default 42)
                 --out <path>                        (required)
    predict    predict one tweet's location mixture
                 --model <path>                      (required)
                 --text <tweet text>                 (required)
    evaluate   score a model on a corpus's 25% test split
                 --model <path>                      (required)
                 --data <path>                       (required)
";

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing required --{key}"))
}

fn parse_size(s: &str) -> Result<PresetSize, String> {
    match s {
        "smoke" => Ok(PresetSize::Smoke),
        "default" => Ok(PresetSize::Default),
        "paper" => Ok(PresetSize::Paper),
        other => Err(format!("unknown size '{other}' (smoke|default|paper)")),
    }
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

/// `edge-cli generate`.
pub fn generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let out = required(&flags, "out")?;
    let size = parse_size(flags.get("size").map_or("default", String::as_str))?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(42), |s| s.parse().map_err(|_| format!("bad --seed '{s}'")))?;
    let preset = flags.get("preset").map_or("nyma", String::as_str);
    let dataset = match preset {
        "nyma" => edge_data::nyma(size, seed),
        "lama" => edge_data::lama(size, seed),
        "ny2020" => edge_data::ny2020(size, seed),
        "covid19" => edge_data::covid19(size, seed),
        other => return Err(format!("unknown preset '{other}' (nyma|lama|ny2020|covid19)")),
    };
    let json = serde_json::to_string(&dataset).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} ({} tweets, {} gazetteer entries, timeline {}-{})",
        out,
        dataset.len(),
        dataset.gazetteer.len(),
        dataset.timeline.0.format_us(),
        dataset.timeline.1.format_us()
    );
    Ok(())
}

/// `edge-cli train`.
pub fn train(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let data = required(&flags, "data")?;
    let out = required(&flags, "out")?;
    let mut config = match flags.get("profile").map_or("fast", String::as_str) {
        "smoke" => EdgeConfig::smoke(),
        "fast" => EdgeConfig::fast(),
        "paper" => EdgeConfig::paper(),
        other => return Err(format!("unknown profile '{other}' (smoke|fast|paper)")),
    };
    if let Some(e) = flags.get("epochs") {
        config.epochs = e.parse().map_err(|_| format!("bad --epochs '{e}'"))?;
    }
    if let Some(m) = flags.get("components") {
        config.n_components = m.parse().map_err(|_| format!("bad --components '{m}'"))?;
    }
    if let Some(s) = flags.get("seed") {
        config.seed = s.parse().map_err(|_| format!("bad --seed '{s}'"))?;
    }

    let dataset = load_dataset(data)?;
    let (train_split, _) = dataset.paper_split();
    println!(
        "training EDGE on {} tweets (d={}, M={}, {} epochs) ...",
        train_split.len(),
        config.embed_dim,
        config.n_components,
        config.epochs
    );
    let started = std::time::Instant::now();
    let (model, report) =
        EdgeModel::train(train_split, dataset_recognizer(&dataset), &dataset.bbox, config);
    println!(
        "done in {:.1?}: {} entities, NLL {:.3} -> {:.3}",
        started.elapsed(),
        model.entity_index().len(),
        report.epoch_losses.first().unwrap(),
        report.epoch_losses.last().unwrap()
    );
    model.save(out).map_err(|e| e.to_string())?;
    println!("saved model to {out}");
    Ok(())
}

/// `edge-cli predict`.
pub fn predict(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let model_path = required(&flags, "model")?;
    let text = required(&flags, "text")?;
    let model = EdgeModel::load(model_path).map_err(|e| e.to_string())?;
    match model.predict(text) {
        None => println!("not covered: no entity of this tweet appears in the training graph"),
        Some(p) => {
            println!("point estimate (Eq. 14): ({:.5}, {:.5})", p.point.lat, p.point.lon);
            if !p.attention.is_empty() {
                println!("attention:");
                for (entity, w) in &p.attention {
                    println!("  {entity:<28} {w:.4}");
                }
            }
            println!("mixture:");
            for (pi, g) in p.mixture.iter() {
                println!(
                    "  pi={pi:.4} mu=({:.5}, {:.5}) sigma=({:.5}, {:.5}) rho={:+.3}",
                    g.mu.lat, g.mu.lon, g.sigma_lat, g.sigma_lon, g.rho
                );
            }
        }
    }
    Ok(())
}

/// `edge-cli evaluate`.
pub fn evaluate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let model_path = required(&flags, "model")?;
    let data = required(&flags, "data")?;
    let model = EdgeModel::load(model_path).map_err(|e| e.to_string())?;
    let dataset = load_dataset(data)?;
    let (_, test) = dataset.paper_split();
    let (preds, coverage) = model.evaluate(test);
    let pairs: Vec<(Point, Point)> = preds.iter().map(|(p, t)| (p.point, *t)).collect();
    let report = DistanceReport::from_pairs_with_coverage(&pairs, coverage)
        .ok_or("the model covered no test tweet")?;
    println!(
        "test tweets {:>6}   covered {:>6} ({:.1}%)",
        test.len(),
        report.n,
        report.coverage * 100.0
    );
    println!("mean   {:>8.2} km", report.mean_km);
    println!("median {:>8.2} km", report.median_km);
    println!("@3km   {:>8.4}", report.at_3km);
    println!("@5km   {:>8.4}", report.at_5km);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing_round_trip() {
        let flags = parse_flags(&strs(&["--preset", "nyma", "--seed", "7"])).unwrap();
        assert_eq!(flags["preset"], "nyma");
        assert_eq!(flags["seed"], "7");
    }

    #[test]
    fn flag_parsing_rejects_bad_shapes() {
        assert!(parse_flags(&strs(&["preset", "nyma"])).is_err());
        assert!(parse_flags(&strs(&["--preset"])).is_err());
    }

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size("smoke").unwrap(), PresetSize::Smoke);
        assert_eq!(parse_size("paper").unwrap(), PresetSize::Paper);
        assert!(parse_size("tiny").is_err());
    }

    #[test]
    fn required_flag_errors_name_the_flag() {
        let flags = HashMap::new();
        let err = required(&flags, "out").unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn full_cli_round_trip_in_tempdir() {
        let dir = std::env::temp_dir().join("edge_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("corpus.json").to_string_lossy().to_string();
        let model = dir.join("model.json").to_string_lossy().to_string();

        generate(&strs(&["--preset", "nyma", "--size", "smoke", "--seed", "3", "--out", &corpus]))
            .expect("generate");
        train(&strs(&[
            "--data", &corpus, "--profile", "smoke", "--epochs", "2", "--out", &model,
        ]))
        .expect("train");
        predict(&strs(&["--model", &model, "--text", "lunch near the Majestic Theatre"]))
            .expect("predict");
        evaluate(&strs(&["--model", &model, "--data", &corpus])).expect("evaluate");

        std::fs::remove_file(&corpus).ok();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn unknown_preset_is_reported() {
        let err = generate(&strs(&["--preset", "mars", "--out", "/tmp/x.json"])).unwrap_err();
        assert!(err.contains("mars"));
    }
}
