//! `edge-cli` — the command-line face of the EDGE reproduction.
//!
//! ```text
//! edge-cli generate --preset nyma --size default --seed 42 --out corpus.json
//! edge-cli train    --data corpus.json --profile fast --out model.json
//! edge-cli predict  --model model.json --text "Tonight at the Majestic Theatre!"
//! edge-cli evaluate --model model.json --data corpus.json
//! edge-cli profile  --preset nyma --size smoke
//! edge-cli serve    --model model.json --addr 127.0.0.1:7878
//! ```
//!
//! `generate` writes a synthetic corpus; `train` fits EDGE on its 75%
//! chronological training split and persists the model; `predict` prints
//! the mixture, point estimate and attention weights for one tweet;
//! `evaluate` scores the model on the corpus's test split with the paper's
//! metrics; `profile` trains under full tracing and prints a self-time
//! profile table plus a metrics snapshot; `fsck` verifies a saved artifact
//! (model or checkpoint) end to end without loading it.
//!
//! Setting `EDGE_FAILPOINTS` (e.g. `fsio.fsync=err`) arms the `edge-faults`
//! failpoints for the whole invocation — the fault-injection harness works
//! against the real binary, not just the library tests.

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    if let Err(msg) = edge_faults::init_from_env() {
        eprintln!("error: bad EDGE_FAILPOINTS: {msg}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => commands::generate(&args[1..]),
        Some("train") => commands::train(&args[1..]),
        Some("predict") => commands::predict(&args[1..]),
        Some("evaluate") => commands::evaluate(&args[1..]),
        Some("profile") => commands::profile(&args[1..]),
        Some("serve") => commands::serve(&args[1..]),
        Some("top") => commands::top(&args[1..]),
        Some("fsck") => commands::fsck(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{}", commands::USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
