//! The tweet synthesizer: turns a metro area, a POI gazetteer and a topic
//! set into a chronological corpus of geo-tagged tweets.
//!
//! Each tweet follows the generative story the paper's observations
//! describe:
//!
//! 1. pick a posting date, then either a **topic tweet** (about a non-geo
//!    entity, posted near one of its latent anchors and often co-mentioning
//!    it — Observation 2), a **plain tweet** (posted wherever people are,
//!    often mentioning a nearby fine- or coarse-grained geo entity), or a
//!    **noise tweet** (pure filler, no entities — the ~5.5% the paper
//!    excludes);
//! 2. render the text from filler words plus entity surface forms, with a
//!    configurable fraction of *distorted* mentions the NER cannot resolve
//!    (reproducing the recognizer's ~87–95% recognition band).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use edge_geo::Point;
use edge_text::EntityCategory;

use crate::dataset::{Dataset, Tweet};
use crate::date::SimDate;
use crate::metro::MetroArea;
use crate::names::{pick, FILLER};
use crate::poi::{sample_near_poi, Granularity, Poi};
use crate::topics::{Topic, TopicStyle};

/// Generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of tweets to produce.
    pub n_tweets: usize,
    /// Timeline `[start, end)`.
    pub start: SimDate,
    /// Timeline end (exclusive).
    pub end: SimDate,
    /// Probability a tweet is a topic tweet.
    pub p_topic: f64,
    /// Probability a topic tweet *also* mentions the nearest POI to where
    /// it was actually posted (beyond any anchor co-mention) — the
    /// "hospital this morning during the #covid19 pandemic" pattern.
    /// Defaults to 0: enabling it floods hub topics with co-occurrence
    /// edges, which measurably *hurts* graph-diffusion models on
    /// keyword-filtered subsets (see EXPERIMENTS.md, deviation 6) — kept as
    /// a knob for studying that effect.
    pub p_topic_local_poi: f64,
    /// Probability a plain tweet mentions a nearby geo entity.
    pub p_geo_mention: f64,
    /// Probability of a second geo mention (given a first).
    pub p_second_poi: f64,
    /// Probability of a pure-filler noise tweet (checked first).
    pub p_noise: f64,
    /// Probability a tweet with entities also name-drops its neighbourhood
    /// (a coarse `Geolocation` entity) — the "Brooklyn" mentions that drive
    /// the paper's location-entity statistics.
    pub p_hood: f64,
    /// Probability an entity surface is distorted beyond NER recovery.
    pub p_distort: f64,
    /// Probability a plain tweet's geo mention refers to a *remote* place
    /// ("wish I was at Majestic Theatre") instead of a nearby one. This is
    /// the label noise real corpora carry — people constantly name places
    /// they are not at — and it is what keeps point estimators from being
    /// oracle-precise on venue names.
    pub p_remote: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            n_tweets: 10_000,
            start: SimDate::new(2020, 3, 12),
            end: SimDate::new(2020, 4, 2),
            p_topic: 0.50,
            p_topic_local_poi: 0.0,
            p_geo_mention: 0.52,
            p_second_poi: 0.35,
            p_noise: 0.055,
            p_hood: 0.30,
            p_distort: 0.07,
            p_remote: 0.20,
            seed: 42,
        }
    }
}

/// Generates a dataset. The returned tweets are sorted chronologically and
/// the gazetteer lists every POI and topic surface (the NER's "trained
/// knowledge").
pub fn generate(
    name: &str,
    metro: &MetroArea,
    pois: &[Poi],
    topics: &[Topic],
    config: &GeneratorConfig,
) -> Dataset {
    assert!(!pois.is_empty(), "need at least one POI");
    assert!(config.start < config.end, "timeline inverted");
    for t in topics {
        for &(a, w) in &t.anchors {
            assert!(a < pois.len(), "topic '{}' anchor {a} out of range", t.name);
            assert!(w > 0.0, "topic '{}' anchor weight must be positive", t.name);
        }
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_days = config.start.days_until(config.end);
    assert!(n_days > 0);

    let mut tweets: Vec<Tweet> = (0..config.n_tweets)
        .map(|_| {
            let date = config.start.plus_days(rng.gen_range(0..n_days));
            synthesize_tweet(date, metro, pois, topics, config, &mut rng)
        })
        .collect();
    tweets.sort_by_key(|t| t.date);
    for (i, t) in tweets.iter_mut().enumerate() {
        t.id = i as u64;
    }

    let mut gazetteer: Vec<(String, EntityCategory)> =
        pois.iter().map(|p| (p.name.clone(), p.category)).collect();
    for t in topics {
        let entry = (t.name.clone(), EntityCategory::Other);
        if !gazetteer.contains(&entry) {
            gazetteer.push(entry);
        }
    }

    Dataset {
        name: name.to_string(),
        bbox: metro.bbox,
        timeline: (config.start, config.end),
        tweets,
        gazetteer,
    }
}

fn synthesize_tweet(
    date: SimDate,
    metro: &MetroArea,
    pois: &[Poi],
    topics: &[Topic],
    config: &GeneratorConfig,
    rng: &mut StdRng,
) -> Tweet {
    // Mentions to render: (surface, canonical id, distorted?).
    let mut mentions: Vec<(String, String, bool)> = Vec::new();
    let location: Point;

    if rng.gen::<f64>() < config.p_noise {
        // Noise tweet: anywhere, no entities.
        location = metro.sample_location(rng);
    } else if !topics.is_empty() && rng.gen::<f64>() < config.p_topic {
        // Topic tweet.
        let topic = pick_topic(topics, date, rng);
        let anchored = !topic.anchors.is_empty() && rng.gen::<f64>() < topic.locality;
        if anchored {
            let anchor = pick_anchor(topic, rng);
            let poi = &pois[anchor];
            location = sample_near_poi(poi, metro, rng);
            push_topic_mention(topic, config, rng, &mut mentions);
            if rng.gen::<f64>() < topic.co_mention {
                push_poi_mention(poi, config, rng, &mut mentions);
            }
        } else {
            location = metro.sample_location(rng);
            push_topic_mention(topic, config, rng, &mut mentions);
        }
        // People tweet about a topic from somewhere — and often name that
        // somewhere too. The draw is guarded so the default (0) leaves the
        // RNG stream untouched and corpora stay bit-identical.
        if config.p_topic_local_poi > 0.0 && rng.gen::<f64>() < config.p_topic_local_poi {
            let local = nearest_poi_weighted(pois, &location, rng);
            if mentions.iter().all(|(_, id, _)| *id != local.id()) {
                push_poi_mention(local, config, rng, &mut mentions);
            }
        }
    } else {
        // Plain tweet.
        location = metro.sample_location(rng);
        if rng.gen::<f64>() < config.p_geo_mention {
            let poi = if rng.gen::<f64>() < config.p_remote {
                // Remote reference: any POI, regardless of where we are.
                &pois[rng.gen_range(0..pois.len())]
            } else {
                nearest_poi_weighted(pois, &location, rng)
            };
            push_poi_mention(poi, config, rng, &mut mentions);
            if rng.gen::<f64>() < config.p_second_poi {
                let second = nearest_poi_weighted(pois, &location, rng);
                if second.name != poi.name {
                    push_poi_mention(second, config, rng, &mut mentions);
                }
            }
        } else if !topics.is_empty() && rng.gen::<f64>() < 0.8 {
            // No geo mention, but real tweets rarely mention *nothing* (the
            // paper finds only ~5.5% entity-free tweets): drop a topic name
            // without any spatial anchoring.
            let topic = pick_topic(topics, date, rng);
            push_topic_mention(topic, config, rng, &mut mentions);
        }
    }

    // Neighbourhood name-drop: tweets with entities often also mention the
    // coarse Geolocation entity they sit in ("… in Brooklyn"), which is what
    // the paper's location-entity percentages measure.
    if !mentions.is_empty() && rng.gen::<f64>() < config.p_hood {
        if let Some(hood) = nearest_coarse(pois, &location) {
            if mentions.iter().all(|(_, id, _)| *id != hood.id()) {
                push_poi_mention(hood, config, rng, &mut mentions);
            }
        }
    }

    let gold_entities: Vec<String> = {
        let mut ids: Vec<String> = mentions.iter().map(|(_, id, _)| id.clone()).collect();
        ids.sort();
        ids.dedup();
        ids
    };
    let text = render_text(&mentions, rng);
    Tweet { id: 0, text, location, date, gold_entities }
}

fn pick_topic<'a>(topics: &'a [Topic], date: SimDate, rng: &mut StdRng) -> &'a Topic {
    let volumes: Vec<f64> = topics.iter().map(|t| t.volume_on(date)).collect();
    let total: f64 = volumes.iter().sum();
    if total <= 0.0 {
        return &topics[rng.gen_range(0..topics.len())];
    }
    let mut u = rng.gen::<f64>() * total;
    for (t, &v) in topics.iter().zip(&volumes) {
        if u <= v {
            return t;
        }
        u -= v;
    }
    topics.last().expect("non-empty")
}

fn pick_anchor(topic: &Topic, rng: &mut StdRng) -> usize {
    let total: f64 = topic.anchors.iter().map(|&(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for &(idx, w) in &topic.anchors {
        if u <= w {
            return idx;
        }
        u -= w;
    }
    topic.anchors.last().expect("non-empty").0
}

/// Picks a POI near `location`: softmax over footprint-scaled distances of
/// the 5 closest candidates, so fine POIs right next door beat coarse
/// neighbourhoods unless nothing fine is close.
fn nearest_poi_weighted<'a>(pois: &'a [Poi], location: &Point, rng: &mut StdRng) -> &'a Poi {
    let mut scored: Vec<(usize, f64)> = pois
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let dlat = p.location.lat - location.lat;
            let dlon = p.location.lon - location.lon;
            let d2 = dlat * dlat + dlon * dlon;
            // Normalize by footprint: inside your neighbourhood counts as
            // close even when its centre is far.
            (i, d2 / (p.sigma_deg * p.sigma_deg))
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored.truncate(5);
    let weights: Vec<f64> = scored.iter().map(|&(_, s)| (-s / 2.0).exp().max(1e-12)).collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (&(idx, _), &w) in scored.iter().zip(&weights) {
        if u <= w {
            return &pois[idx];
        }
        u -= w;
    }
    &pois[scored[0].0]
}

/// The coarse POI whose footprint-scaled distance to `location` is
/// smallest (`None` when the gazetteer has no coarse entities).
fn nearest_coarse<'a>(pois: &'a [Poi], location: &Point) -> Option<&'a Poi> {
    pois.iter().filter(|p| p.granularity == Granularity::Coarse).min_by(|a, b| {
        let score = |p: &Poi| {
            let dlat = p.location.lat - location.lat;
            let dlon = p.location.lon - location.lon;
            (dlat * dlat + dlon * dlon) / (p.sigma_deg * p.sigma_deg)
        };
        score(a).total_cmp(&score(b))
    })
}

fn push_topic_mention(
    topic: &Topic,
    _config: &GeneratorConfig,
    _rng: &mut StdRng,
    mentions: &mut Vec<(String, String, bool)>,
) {
    // Topic surfaces (hashtags/handles/phrases) are never distorted: they are
    // canonical strings people copy, and hashtag recognition is trivially
    // reliable for the NER.
    let id = edge_text::canonical_id(&topic.name);
    mentions.push((topic.surface(), id, false));
    let _ = topic.style == TopicStyle::Phrase;
}

fn push_poi_mention(
    poi: &Poi,
    config: &GeneratorConfig,
    rng: &mut StdRng,
    mentions: &mut Vec<(String, String, bool)>,
) {
    let id = poi.id();
    let distorted = rng.gen::<f64>() < config.p_distort;
    let surface = if distorted {
        distort(&poi.name, rng)
    } else if rng.gen::<f64>() < 0.30 && poi.granularity == Granularity::Fine {
        // Casual lowercase mention — still caught by the gazetteer pass.
        poi.name.to_lowercase()
    } else {
        poi.name.clone()
    };
    mentions.push((surface, id, distorted));
}

/// Distorts a surface form beyond gazetteer recovery: lowercases and strips
/// the vowels of the final word ("Majestic Theatre" → "majestic thtr").
fn distort(name: &str, rng: &mut StdRng) -> String {
    let mut words: Vec<String> = name.split_whitespace().map(str::to_lowercase).collect();
    if let Some(last) = words.last_mut() {
        let squeezed: String = last
            .chars()
            .enumerate()
            .filter(|&(i, c)| i == 0 || !"aeiou".contains(c))
            .map(|(_, c)| c)
            .collect();
        *last =
            if squeezed.len() >= 2 { squeezed } else { format!("{last}{}", rng.gen_range(0..10)) };
    }
    words.join(" ")
}

fn render_text(mentions: &[(String, String, bool)], rng: &mut StdRng) -> String {
    let n_filler = rng.gen_range(3..=8);
    let mut words: Vec<String> = (0..n_filler).map(|_| pick(FILLER, rng).to_string()).collect();
    for (surface, _, _) in mentions {
        let pos = rng.gen_range(0..=words.len());
        words.insert(pos, surface.clone());
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poi::generate_pois;

    fn setup() -> (MetroArea, Vec<Poi>, Vec<Topic>) {
        let metro = MetroArea::new_york_like();
        let pois = generate_pois(&metro, 60, 12, 5);
        let topics = vec![
            Topic::steady("covid19", TopicStyle::Hashtag, vec![(0, 1.0), (1, 0.5)], 0.8, 0.6, 2.0),
            Topic::steady("quarantine", TopicStyle::Phrase, vec![(2, 1.0)], 0.5, 0.4, 1.5),
            Topic::steady("phantomopera", TopicStyle::Handle, vec![(3, 1.0)], 0.9, 0.7, 1.0),
        ];
        (metro, pois, topics)
    }

    fn small_dataset() -> Dataset {
        let (metro, pois, topics) = setup();
        generate(
            "TEST",
            &metro,
            &pois,
            &topics,
            &GeneratorConfig { n_tweets: 2000, ..Default::default() },
        )
    }

    #[test]
    fn dataset_shape_and_order() {
        let d = small_dataset();
        assert_eq!(d.len(), 2000);
        assert!(d.tweets.windows(2).all(|w| w[0].date <= w[1].date), "not chronological");
        assert!(d.tweets.iter().enumerate().all(|(i, t)| t.id == i as u64));
        for t in &d.tweets {
            assert!(d.bbox.contains(&t.location), "tweet outside bbox");
            assert!(t.date >= d.timeline.0 && t.date < d.timeline.1);
            assert!(!t.text.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (metro, pois, topics) = setup();
        let c = GeneratorConfig { n_tweets: 300, ..Default::default() };
        let a = generate("A", &metro, &pois, &topics, &c);
        let b = generate("B", &metro, &pois, &topics, &c);
        assert_eq!(a.tweets, b.tweets);
    }

    #[test]
    fn noise_fraction_matches_config() {
        let d = small_dataset();
        let no_entity =
            d.tweets.iter().filter(|t| t.gold_entities.is_empty()).count() as f64 / d.len() as f64;
        // p_noise 0.055 plus plain tweets that rolled no geo mention.
        assert!(no_entity > 0.03, "no-entity fraction {no_entity}");
        assert!(no_entity < 0.45, "no-entity fraction {no_entity}");
    }

    #[test]
    fn topic_tweets_cluster_near_anchors() {
        let (metro, pois, topics) = setup();
        let d = generate(
            "T",
            &metro,
            &pois,
            &topics,
            &GeneratorConfig { n_tweets: 4000, ..Default::default() },
        );
        // Tweets mentioning the heavily anchored handle should sit near its
        // anchor POI far more often than chance.
        let anchor_loc = pois[3].location;
        let mentioning: Vec<&Tweet> = d
            .tweets
            .iter()
            .filter(|t| t.gold_entities.iter().any(|e| e == "phantomopera"))
            .collect();
        assert!(mentioning.len() > 50, "too few topic tweets: {}", mentioning.len());
        let near = mentioning.iter().filter(|t| t.location.haversine_km(&anchor_loc) < 3.0).count()
            as f64
            / mentioning.len() as f64;
        assert!(near > 0.6, "only {near} of topic tweets near anchor");
    }

    #[test]
    fn cooccurrence_bridge_exists() {
        // Topic tweets co-mention their anchors — the Observation-2 signal.
        let (metro, pois, topics) = setup();
        let d = generate(
            "T",
            &metro,
            &pois,
            &topics,
            &GeneratorConfig { n_tweets: 4000, ..Default::default() },
        );
        let anchor_id = pois[3].id();
        let both = d
            .tweets
            .iter()
            .filter(|t| {
                t.gold_entities.iter().any(|e| e == "phantomopera")
                    && t.gold_entities.contains(&anchor_id)
            })
            .count();
        assert!(both > 30, "only {both} co-mentions");
    }

    #[test]
    fn gazetteer_covers_pois_and_topics() {
        let d = small_dataset();
        let names: Vec<&str> = d.gazetteer.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"covid19"));
        assert!(names.contains(&"quarantine"));
        assert!(names.len() > 70);
    }

    #[test]
    fn distortion_produces_ner_misses() {
        let (metro, pois, topics) = setup();
        let d = generate(
            "T",
            &metro,
            &pois,
            &topics,
            &GeneratorConfig { n_tweets: 3000, p_distort: 0.3, ..Default::default() },
        );
        let ner = edge_text::EntityRecognizer::with_gazetteer(
            d.gazetteer.iter().map(|(n, c)| (n.as_str(), *c)),
        );
        let mut total = 0.0;
        let mut n = 0;
        for t in d.tweets.iter().filter(|t| !t.gold_entities.is_empty()).take(500) {
            total += ner.recognition_rate(&t.text, &t.gold_entities);
            n += 1;
        }
        let rate = total / n as f64;
        assert!(rate < 0.99, "distortion should cause misses, rate {rate}");
        assert!(rate > 0.70, "rate collapsed: {rate}");
    }

    #[test]
    fn default_distortion_hits_papers_recognition_band() {
        let d = small_dataset();
        let ner = edge_text::EntityRecognizer::with_gazetteer(
            d.gazetteer.iter().map(|(n, c)| (n.as_str(), *c)),
        );
        let with_entities: Vec<&Tweet> =
            d.tweets.iter().filter(|t| !t.gold_entities.is_empty()).collect();
        let rate: f64 = with_entities
            .iter()
            .map(|t| ner.recognition_rate(&t.text, &t.gold_entities))
            .sum::<f64>()
            / with_entities.len() as f64;
        assert!((0.85..=0.99).contains(&rate), "recognition rate {rate} outside paper band");
    }

    #[test]
    fn distort_examples() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = distort("Majestic Theatre", &mut rng);
        assert_eq!(d, "majestic thtr");
        // Single short word falls back to a digit suffix rather than vanish.
        let d2 = distort("Ao", &mut rng);
        assert!(d2.starts_with("ao"));
    }

    #[test]
    #[should_panic(expected = "anchor")]
    fn bad_anchor_index_panics() {
        let (metro, pois, _) = setup();
        let bad = vec![Topic::steady("x", TopicStyle::Phrase, vec![(9999, 1.0)], 0.5, 0.5, 1.0)];
        let _ = generate("X", &metro, &pois, &bad, &GeneratorConfig::default());
    }
}
