//! Dataset statistics: the Table II overview and the Section IV-A entity
//! audit.

use serde::{Deserialize, Serialize};

use edge_text::{EntityCategory, EntityRecognizer};

use crate::dataset::Dataset;

/// One row of Table II: timeline plus the train/test entity distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableTwoRow {
    /// Dataset name.
    pub dataset: String,
    /// Timeline in `MM/DD/YYYY-MM/DD/YYYY` form.
    pub timeline: String,
    /// Tweets in the training split.
    pub train_tweets: usize,
    /// Tweets in the test split.
    pub test_tweets: usize,
    /// Distinct entities recognized in the training split.
    pub train_entities: usize,
    /// Distinct entities recognized in the test split.
    pub test_entities: usize,
}

/// Computes the Table II row for a dataset under the paper's 75/25 split.
pub fn table_two_row(dataset: &Dataset, ner: &EntityRecognizer) -> TableTwoRow {
    let (train, test) = dataset.paper_split();
    let distinct = |tweets: &[crate::dataset::Tweet]| {
        let mut set = std::collections::HashSet::new();
        for t in tweets {
            for m in ner.recognize(&t.text) {
                set.insert(m.id);
            }
        }
        set.len()
    };
    TableTwoRow {
        dataset: dataset.name.clone(),
        timeline: format!("{}-{}", dataset.timeline.0.format_us(), dataset.timeline.1.format_us()),
        train_tweets: train.len(),
        test_tweets: test.len(),
        train_entities: distinct(train),
        test_entities: distinct(test),
    }
}

/// The Section IV-A audit of a dataset: recognition rate against gold
/// entities, and the location-mention percentages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntityAudit {
    /// Mean fraction of gold entities recovered per tweet (tweets with
    /// entities only) — the paper reports 86.99–94.47% on 100-tweet samples.
    pub recognition_rate: f64,
    /// Fraction of tweets with no recognized entity (paper: ~5.5%).
    pub no_entity_fraction: f64,
    /// Fraction of tweets mentioning at least one location entity
    /// (paper: 30.61% / 45.23% / 43.48%).
    pub location_fraction: f64,
    /// Fraction mentioning both a location and a non-location entity
    /// (paper: 29.86% / 33.25% / 39.68%).
    pub location_and_other_fraction: f64,
    /// Number of tweets audited.
    pub n: usize,
}

/// Runs the audit over (a sample of) the dataset. `sample` bounds the number
/// of tweets inspected (0 = all).
pub fn audit_entities(dataset: &Dataset, ner: &EntityRecognizer, sample: usize) -> EntityAudit {
    audit_entities_offset(dataset, ner, sample, 0)
}

/// Like [`audit_entities`] but starting the stride sample at `offset` —
/// the paper repeats its 100-tweet manual audits three times on different
/// samples; distinct offsets reproduce that.
pub fn audit_entities_offset(
    dataset: &Dataset,
    ner: &EntityRecognizer,
    sample: usize,
    offset: usize,
) -> EntityAudit {
    let tweets: Vec<&crate::dataset::Tweet> = if sample == 0 || sample >= dataset.len() {
        dataset.tweets.iter().collect()
    } else {
        // Deterministic stride sample, phase-shifted by `offset`.
        let stride = dataset.len() / sample;
        dataset
            .tweets
            .iter()
            .skip(offset % stride.max(1))
            .step_by(stride.max(1))
            .take(sample)
            .collect()
    };
    let mut rec_sum = 0.0;
    let mut rec_n = 0usize;
    let mut none = 0usize;
    let mut with_loc = 0usize;
    let mut with_both = 0usize;
    for t in &tweets {
        let mentions = ner.recognize(&t.text);
        if !t.gold_entities.is_empty() {
            rec_sum += {
                let found: Vec<&str> = mentions.iter().map(|m| m.id.as_str()).collect();
                t.gold_entities.iter().filter(|g| found.contains(&g.as_str())).count() as f64
                    / t.gold_entities.len() as f64
            };
            rec_n += 1;
        }
        if mentions.is_empty() {
            none += 1;
        }
        let has_loc = mentions.iter().any(|m| m.category == EntityCategory::Geolocation);
        let has_other = mentions.iter().any(|m| m.category != EntityCategory::Geolocation);
        if has_loc {
            with_loc += 1;
        }
        if has_loc && has_other {
            with_both += 1;
        }
    }
    let n = tweets.len();
    EntityAudit {
        recognition_rate: if rec_n > 0 { rec_sum / rec_n as f64 } else { 1.0 },
        no_entity_fraction: none as f64 / n as f64,
        location_fraction: with_loc as f64 / n as f64,
        location_and_other_fraction: with_both as f64 / n as f64,
        n,
    }
}

/// Builds the dataset's NER (gazetteer from the dataset's entity inventory —
/// the stand-in for the recognizer's trained knowledge; see DESIGN.md §1).
pub fn dataset_recognizer(dataset: &Dataset) -> EntityRecognizer {
    EntityRecognizer::with_gazetteer(dataset.gazetteer.iter().map(|(n, c)| (n.as_str(), *c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{lama, nyma, PresetSize};

    #[test]
    fn table_two_row_counts() {
        let d = nyma(PresetSize::Smoke, 1);
        let ner = dataset_recognizer(&d);
        let row = table_two_row(&d, &ner);
        assert_eq!(row.dataset, "NYMA");
        assert_eq!(row.timeline, "08/01/2014-12/01/2014");
        assert_eq!(row.train_tweets + row.test_tweets, d.len());
        assert_eq!(row.train_tweets, 3000);
        assert!(row.train_entities > 100, "train entities {}", row.train_entities);
        // Train split sees more distinct entities than the shorter test split.
        assert!(row.train_entities >= row.test_entities);
    }

    #[test]
    fn audit_matches_paper_bands() {
        let d = lama(PresetSize::Smoke, 2);
        let ner = dataset_recognizer(&d);
        let audit = audit_entities(&d, &ner, 0);
        assert!(
            (0.85..=0.99).contains(&audit.recognition_rate),
            "recognition {}",
            audit.recognition_rate
        );
        assert!(
            (0.02..=0.30).contains(&audit.no_entity_fraction),
            "no-entity {}",
            audit.no_entity_fraction
        );
        assert!(
            (0.15..=0.70).contains(&audit.location_fraction),
            "location {}",
            audit.location_fraction
        );
        assert!(audit.location_and_other_fraction <= audit.location_fraction);
        assert!(audit.location_and_other_fraction > 0.05);
    }

    #[test]
    fn sampled_audit_is_close_to_full() {
        let d = lama(PresetSize::Smoke, 3);
        let ner = dataset_recognizer(&d);
        let full = audit_entities(&d, &ner, 0);
        let sampled = audit_entities(&d, &ner, 500);
        assert_eq!(sampled.n, 500);
        assert!((full.location_fraction - sampled.location_fraction).abs() < 0.08);
    }
}
