//! Metro-area specifications: study region plus a population-density model.
//!
//! Tweets in a real metro area are not uniform — they cluster in boroughs
//! and commercial centres. Each synthetic metro area carries a mixture of
//! isotropic Gaussians ("population centres") from which base tweet
//! locations are drawn, truncated to the study bounding box.

use rand::Rng;
use serde::{Deserialize, Serialize};

use edge_geo::{BBox, BivariateGaussian, Point};

/// One population centre: a Gaussian blob of tweet activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationCenter {
    /// Centre of the blob.
    pub center: Point,
    /// Spatial standard deviation in degrees (~0.01° ≈ 1.1 km).
    pub sigma_deg: f64,
    /// Relative share of tweet volume.
    pub weight: f64,
}

/// A synthetic metropolitan area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetroArea {
    /// Human-readable name.
    pub name: String,
    /// Study region.
    pub bbox: BBox,
    /// Population-density mixture (weights need not be normalized).
    pub centers: Vec<PopulationCenter>,
}

impl MetroArea {
    /// A New-York-like metro: a compact, dense core with several boroughs.
    /// Coordinates match the real NYMA so distance metrics are on the
    /// paper's scale.
    pub fn new_york_like() -> Self {
        Self {
            name: "New York Metropolitan Area".to_string(),
            bbox: BBox::new(40.49, 40.92, -74.27, -73.68),
            centers: vec![
                PopulationCenter {
                    center: Point::new(40.758, -73.985),
                    sigma_deg: 0.030,
                    weight: 0.32,
                }, // Manhattan core
                PopulationCenter {
                    center: Point::new(40.650, -73.950),
                    sigma_deg: 0.045,
                    weight: 0.24,
                }, // Brooklyn
                PopulationCenter {
                    center: Point::new(40.730, -73.800),
                    sigma_deg: 0.050,
                    weight: 0.18,
                }, // Queens
                PopulationCenter {
                    center: Point::new(40.850, -73.880),
                    sigma_deg: 0.040,
                    weight: 0.14,
                }, // Bronx
                PopulationCenter {
                    center: Point::new(40.580, -74.150),
                    sigma_deg: 0.055,
                    weight: 0.12,
                }, // Staten Island / NJ
            ],
        }
    }

    /// A Los-Angeles-like metro: sprawling, polycentric, larger spreads —
    /// which is why LAMA errors in Table III are roughly double NYMA's.
    pub fn los_angeles_like() -> Self {
        Self {
            name: "Los Angeles Metropolitan Area".to_string(),
            bbox: BBox::new(33.70, 34.34, -118.67, -117.95),
            centers: vec![
                PopulationCenter {
                    center: Point::new(34.045, -118.250),
                    sigma_deg: 0.050,
                    weight: 0.26,
                }, // Downtown
                PopulationCenter {
                    center: Point::new(34.020, -118.480),
                    sigma_deg: 0.045,
                    weight: 0.18,
                }, // Westside
                PopulationCenter {
                    center: Point::new(33.770, -118.190),
                    sigma_deg: 0.055,
                    weight: 0.18,
                }, // Long Beach
                PopulationCenter {
                    center: Point::new(34.150, -118.140),
                    sigma_deg: 0.050,
                    weight: 0.14,
                }, // Pasadena
                PopulationCenter {
                    center: Point::new(33.990, -118.280),
                    sigma_deg: 0.050,
                    weight: 0.14,
                }, // South LA
                PopulationCenter {
                    center: Point::new(34.180, -118.450),
                    sigma_deg: 0.060,
                    weight: 0.10,
                }, // Valley
            ],
        }
    }

    /// The characteristic size of the region in km (diagonal scale), used
    /// to calibrate adaptive KDE bandwidths.
    pub fn scale_km(&self) -> f64 {
        let (ew, ns) = self.bbox.dims_km();
        (ew * ew + ns * ns).sqrt() / 2.0
    }

    /// Draws one location from the population-density mixture, truncated to
    /// the bounding box (rejection with a clamp fallback).
    pub fn sample_location<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        assert!(!self.centers.is_empty(), "metro area needs population centres");
        let total: f64 = self.centers.iter().map(|c| c.weight).sum();
        let mut u = rng.gen::<f64>() * total;
        let mut chosen = &self.centers[self.centers.len() - 1];
        for c in &self.centers {
            if u <= c.weight {
                chosen = c;
                break;
            }
            u -= c.weight;
        }
        let g = BivariateGaussian::isotropic(chosen.center, chosen.sigma_deg);
        for _ in 0..16 {
            let p = g.sample(rng);
            if self.bbox.contains(&p) {
                return p;
            }
        }
        self.bbox.clamp(&g.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn presets_are_well_formed() {
        for metro in [MetroArea::new_york_like(), MetroArea::los_angeles_like()] {
            assert!(!metro.centers.is_empty());
            for c in &metro.centers {
                assert!(metro.bbox.contains(&c.center), "{} centre outside bbox", metro.name);
                assert!(c.sigma_deg > 0.0 && c.weight > 0.0);
            }
        }
    }

    #[test]
    fn la_is_larger_than_ny() {
        assert!(MetroArea::los_angeles_like().scale_km() > MetroArea::new_york_like().scale_km());
    }

    #[test]
    fn samples_stay_in_bbox() {
        let metro = MetroArea::new_york_like();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..2000 {
            assert!(metro.bbox.contains(&metro.sample_location(&mut rng)));
        }
    }

    #[test]
    fn samples_cluster_near_centres() {
        let metro = MetroArea::new_york_like();
        let mut rng = StdRng::seed_from_u64(1);
        let near_any_centre = (0..2000)
            .map(|_| metro.sample_location(&mut rng))
            .filter(|p| {
                metro.centers.iter().any(|c| p.haversine_km(&c.center) < c.sigma_deg * 3.0 * 111.0)
            })
            .count();
        assert!(near_any_centre > 1800, "only {near_any_centre}/2000 near centres");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let metro = MetroArea::new_york_like();
        let a = metro.sample_location(&mut StdRng::seed_from_u64(9));
        let b = metro.sample_location(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
