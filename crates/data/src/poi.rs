//! Geo-indicative entity generation: fine-grained POIs (theatres,
//! hospitals, streets) and coarse-grained neighbourhoods.
//!
//! The paper distinguishes "fine-grained geo-indicative entities" (William
//! Street) from "coarse-grained" ones (Brooklyn); the attention mechanism is
//! designed to prefer the former. The synthetic gazetteer reproduces both
//! granularities with ground-truth spatial footprints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use edge_geo::Point;
use edge_text::EntityCategory;

use crate::metro::MetroArea;
use crate::names::{kind_is_location, pick, HOOD_FIRST, HOOD_SECOND, POI_FIRST, POI_KIND};

/// The spatial granularity of a geo entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// A point-like venue or street: σ well under a kilometre.
    Fine,
    /// A neighbourhood or borough: σ of several kilometres.
    Coarse,
}

/// One geo-indicative entity with its ground-truth spatial footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Display name, e.g. "Majestic Theatre".
    pub name: String,
    /// NER category.
    pub category: EntityCategory,
    /// Footprint centre.
    pub location: Point,
    /// Footprint standard deviation in degrees.
    pub sigma_deg: f64,
    /// Granularity class.
    pub granularity: Granularity,
}

impl Poi {
    /// Canonical entity id (`majestic_theatre`).
    pub fn id(&self) -> String {
        edge_text::canonical_id(&self.name)
    }
}

/// Generates a gazetteer of `n_fine` fine POIs and `n_coarse` coarse
/// neighbourhoods over `metro`, deterministically from `seed`. Names are
/// unique within the returned list.
pub fn generate_pois(metro: &MetroArea, n_fine: usize, n_coarse: usize, seed: u64) -> Vec<Poi> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut used = std::collections::HashSet::new();
    let mut pois = Vec::with_capacity(n_fine + n_coarse);

    while pois.len() < n_fine {
        let first = pick(POI_FIRST, &mut rng);
        let kind = pick(POI_KIND, &mut rng);
        let name = format!("{first} {kind}");
        if !used.insert(name.clone()) {
            continue;
        }
        let category = if kind_is_location(kind) {
            EntityCategory::Geolocation
        } else {
            EntityCategory::Facility
        };
        pois.push(Poi {
            name,
            category,
            location: metro.sample_location(&mut rng),
            // Fine footprint: 150 m – 700 m.
            sigma_deg: rng.gen_range(0.0015..0.0065),
            granularity: Granularity::Fine,
        });
    }

    let mut hood_attempts = 0;
    while pois.len() < n_fine + n_coarse {
        hood_attempts += 1;
        assert!(hood_attempts < 10_000, "neighbourhood name space exhausted");
        let name = format!("{} {}", pick(HOOD_FIRST, &mut rng), pick(HOOD_SECOND, &mut rng));
        if !used.insert(name.clone()) {
            continue;
        }
        pois.push(Poi {
            name,
            category: EntityCategory::Geolocation,
            location: metro.sample_location(&mut rng),
            // Coarse footprint: 2.2 km – 6.7 km.
            sigma_deg: rng.gen_range(0.02..0.06),
            granularity: Granularity::Coarse,
        });
    }
    pois
}

/// Samples a tweet location near a POI (its footprint Gaussian, clamped to
/// the metro box).
pub fn sample_near_poi<R: Rng + ?Sized>(poi: &Poi, metro: &MetroArea, rng: &mut R) -> Point {
    let g = edge_geo::BivariateGaussian::isotropic(poi.location, poi.sigma_deg);
    for _ in 0..16 {
        let p = g.sample(rng);
        if metro.bbox.contains(&p) {
            return p;
        }
    }
    metro.bbox.clamp(&g.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pois() -> Vec<Poi> {
        generate_pois(&MetroArea::new_york_like(), 120, 25, 7)
    }

    #[test]
    fn generates_requested_counts() {
        let p = pois();
        assert_eq!(p.len(), 145);
        assert_eq!(p.iter().filter(|x| x.granularity == Granularity::Fine).count(), 120);
        assert_eq!(p.iter().filter(|x| x.granularity == Granularity::Coarse).count(), 25);
    }

    #[test]
    fn names_are_unique() {
        let p = pois();
        let ids: std::collections::HashSet<String> = p.iter().map(Poi::id).collect();
        assert_eq!(ids.len(), p.len());
    }

    #[test]
    fn fine_pois_are_tighter_than_coarse() {
        let p = pois();
        let max_fine = p
            .iter()
            .filter(|x| x.granularity == Granularity::Fine)
            .map(|x| x.sigma_deg)
            .fold(0.0f64, f64::max);
        let min_coarse = p
            .iter()
            .filter(|x| x.granularity == Granularity::Coarse)
            .map(|x| x.sigma_deg)
            .fold(f64::INFINITY, f64::min);
        assert!(max_fine < min_coarse);
    }

    #[test]
    fn coarse_pois_are_locations() {
        for p in pois().iter().filter(|x| x.granularity == Granularity::Coarse) {
            assert_eq!(p.category, EntityCategory::Geolocation);
        }
    }

    #[test]
    fn locations_inside_metro() {
        let metro = MetroArea::new_york_like();
        for p in pois() {
            assert!(metro.bbox.contains(&p.location), "{}", p.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let metro = MetroArea::new_york_like();
        assert_eq!(generate_pois(&metro, 30, 5, 1), generate_pois(&metro, 30, 5, 1));
        assert_ne!(generate_pois(&metro, 30, 5, 1), generate_pois(&metro, 30, 5, 2));
    }

    #[test]
    fn sample_near_poi_is_near() {
        let metro = MetroArea::new_york_like();
        let p = &pois()[0];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let loc = sample_near_poi(p, &metro, &mut rng);
            assert!(loc.haversine_km(&p.location) < p.sigma_deg * 111.0 * 6.0);
        }
    }

    #[test]
    fn canonical_ids_are_snake_case() {
        let p = pois();
        assert!(p.iter().all(|x| x.id().chars().all(|c| c.is_lowercase() || c == '_')));
    }
}
