//! Non-geo-indicative entities ("topics"): hashtags, handles and phrases
//! whose *latent* spatial structure comes from anchoring to geo entities.
//!
//! This is the statistical heart of the substitution (DESIGN.md §1): the
//! paper's Observation 2 is that non-geo entities like `#covid19` or
//! `@PhantomOpera` co-occur with geo entities (Presbyterian Hospital,
//! Majestic Theatre) and thereby *become* location evidence. Each synthetic
//! topic therefore carries a small set of anchor POIs: tweets about the
//! topic tend to be posted near an anchor and tend to co-mention it —
//! exactly the correlation EDGE's entity diffusion is built to exploit.

use serde::{Deserialize, Serialize};

use crate::date::SimDate;

/// How a topic's name is rendered in tweet text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopicStyle {
    /// `#name` hashtag.
    Hashtag,
    /// `@Name` handle.
    Handle,
    /// A plain lowercase phrase ("quarantine").
    Phrase,
}

/// A non-geo-indicative entity with latent geo anchors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topic {
    /// Canonical name (no sigil), e.g. `covid19`, `phantomopera`.
    pub name: String,
    /// Rendering style.
    pub style: TopicStyle,
    /// Indices into the dataset's POI list, with mixture weights. Empty for
    /// truly place-less topics.
    pub anchors: Vec<(usize, f64)>,
    /// Probability that a tweet about this topic is posted near an anchor
    /// (vs. anywhere in the metro). Multi-anchor topics with high
    /// `locality` produce the multi-modal posting distributions of
    /// Observation 1.
    pub locality: f64,
    /// Probability that the tweet also *mentions* the anchor it was posted
    /// near (the co-occurrence bridge of Observation 2).
    pub co_mention: f64,
    /// Relative tweet volume.
    pub weight: f64,
    /// Optional activity window (inclusive); outside it the topic's volume
    /// is multiplied by `off_window_factor`.
    pub window: Option<(SimDate, SimDate)>,
    /// Volume multiplier outside the window (0 = silent off-window).
    pub off_window_factor: f64,
}

impl Topic {
    /// A topic active for the whole timeline.
    pub fn steady(
        name: &str,
        style: TopicStyle,
        anchors: Vec<(usize, f64)>,
        locality: f64,
        co_mention: f64,
        weight: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&locality) && (0.0..=1.0).contains(&co_mention));
        assert!(weight > 0.0);
        Self {
            name: name.to_string(),
            style,
            anchors,
            locality,
            co_mention,
            weight,
            window: None,
            off_window_factor: 1.0,
        }
    }

    /// An event topic: full volume inside `[start, end]`, damped outside.
    #[allow(clippy::too_many_arguments)]
    pub fn event(
        name: &str,
        style: TopicStyle,
        anchors: Vec<(usize, f64)>,
        locality: f64,
        co_mention: f64,
        weight: f64,
        window: (SimDate, SimDate),
        off_window_factor: f64,
    ) -> Self {
        assert!(window.0 <= window.1, "event window inverted");
        assert!((0.0..=1.0).contains(&off_window_factor));
        let mut t = Self::steady(name, style, anchors, locality, co_mention, weight);
        t.window = Some(window);
        t.off_window_factor = off_window_factor;
        t
    }

    /// The topic's effective volume on `date`.
    pub fn volume_on(&self, date: SimDate) -> f64 {
        match self.window {
            Some((start, end)) if date < start || date > end => {
                self.weight * self.off_window_factor
            }
            _ => self.weight,
        }
    }

    /// The rendered surface form, with sigil.
    pub fn surface(&self) -> String {
        match self.style {
            TopicStyle::Hashtag => format!("#{}", self.name),
            TopicStyle::Handle => {
                // Handles render in CamelCase-ish form: capitalize first letter.
                let mut chars = self.name.chars();
                match chars.next() {
                    Some(f) => format!("@{}{}", f.to_uppercase(), chars.as_str()),
                    None => "@".to_string(),
                }
            }
            TopicStyle::Phrase => self.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_topic_volume_is_constant() {
        let t = Topic::steady("quarantine", TopicStyle::Phrase, vec![], 0.0, 0.0, 2.0);
        assert_eq!(t.volume_on(SimDate::new(2020, 3, 12)), 2.0);
        assert_eq!(t.volume_on(SimDate::new(2020, 4, 2)), 2.0);
    }

    #[test]
    fn event_topic_damps_outside_window() {
        let window = (SimDate::new(2020, 3, 12), SimDate::new(2020, 3, 15));
        let t = Topic::event(
            "new_colossus_festival",
            TopicStyle::Phrase,
            vec![(0, 1.0)],
            0.9,
            0.7,
            1.0,
            window,
            0.1,
        );
        assert_eq!(t.volume_on(SimDate::new(2020, 3, 13)), 1.0);
        assert_eq!(t.volume_on(SimDate::new(2020, 3, 12)), 1.0, "window inclusive");
        assert_eq!(t.volume_on(SimDate::new(2020, 3, 15)), 1.0, "window inclusive");
        assert!((t.volume_on(SimDate::new(2020, 3, 20)) - 0.1).abs() < 1e-12);
        assert!((t.volume_on(SimDate::new(2020, 3, 11)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn surfaces_render_with_sigils() {
        assert_eq!(
            Topic::steady("covid19", TopicStyle::Hashtag, vec![], 0.5, 0.5, 1.0).surface(),
            "#covid19"
        );
        assert_eq!(
            Topic::steady("phantomopera", TopicStyle::Handle, vec![], 0.5, 0.5, 1.0).surface(),
            "@Phantomopera"
        );
        assert_eq!(
            Topic::steady("quarantine", TopicStyle::Phrase, vec![], 0.5, 0.5, 1.0).surface(),
            "quarantine"
        );
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_panics() {
        let _ = Topic::event(
            "x",
            TopicStyle::Phrase,
            vec![],
            0.5,
            0.5,
            1.0,
            (SimDate::new(2020, 3, 15), SimDate::new(2020, 3, 12)),
            0.0,
        );
    }

    #[test]
    #[should_panic]
    fn bad_probability_panics() {
        let _ = Topic::steady("x", TopicStyle::Phrase, vec![], 1.5, 0.5, 1.0);
    }
}
