//! Synthetic metro-area tweet corpora — the stand-in for the paper's
//! proprietary Twitter crawls (DESIGN.md §1).
//!
//! The generator reproduces the statistical structures EDGE's mechanisms
//! depend on: entity co-occurrence correlated with space (Observation 2),
//! multi-modal posting distributions (Observation 1), fine- vs
//! coarse-grained geo entities, NER-imperfect surface forms, and the
//! time-windowed events behind the paper's use-case figures.

pub mod dataset;
pub mod date;
pub mod generator;
pub mod metro;
pub mod names;
pub mod poi;
pub mod presets;
pub mod stats;
pub mod topics;

pub use dataset::{Dataset, Tweet, COVID_KEYWORDS};
pub use date::SimDate;
pub use generator::{generate, GeneratorConfig};
pub use metro::{MetroArea, PopulationCenter};
pub use poi::{generate_pois, Granularity, Poi};
pub use presets::{covid19, lama, ny2020, nyma, PresetSize};
pub use stats::{
    audit_entities, audit_entities_offset, dataset_recognizer, table_two_row, EntityAudit,
    TableTwoRow,
};
pub use topics::{Topic, TopicStyle};
