//! Minimal calendar dates for dataset timelines.
//!
//! The paper's datasets are defined by date ranges (NYMA: 08/01/2014 –
//! 12/01/2014; LAMA and COVID-19: 03/12/2020 – 04/02/2020) and the use
//! cases slice tweets by date windows. This module provides just enough
//! calendar arithmetic for that — proleptic Gregorian, no time zones.

use serde::{Deserialize, Serialize};

/// A calendar date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDate {
    /// Four-digit year.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

impl SimDate {
    /// Creates a date, validating month and day ranges (including leap
    /// years).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} invalid for {year}-{month}"
        );
        Self { year, month, day }
    }

    /// Days since the civil epoch 1970-01-01 (may be negative). Uses the
    /// standard days-from-civil algorithm.
    pub fn to_ordinal(self) -> i64 {
        let y = if self.month <= 2 { self.year - 1 } else { self.year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`SimDate::to_ordinal`].
    pub fn from_ordinal(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = if m <= 2 { y + 1 } else { y } as i32;
        Self { year, month: m, day: d }
    }

    /// The date `n` days later.
    pub fn plus_days(self, n: i64) -> Self {
        Self::from_ordinal(self.to_ordinal() + n)
    }

    /// Signed number of days from `self` to `other`.
    pub fn days_until(self, other: SimDate) -> i64 {
        other.to_ordinal() - self.to_ordinal()
    }

    /// `MM/DD/YYYY`, the paper's timeline format.
    pub fn format_us(self) -> String {
        format!("{:02}/{:02}/{}", self.month, self.day, self.year)
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("validated"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimDate::new(1970, 1, 1).to_ordinal(), 0);
    }

    #[test]
    fn ordinal_round_trips_across_years() {
        for &(y, m, d) in &[
            (2014, 8, 1),
            (2014, 12, 1),
            (2020, 3, 12),
            (2020, 4, 2),
            (2020, 2, 29),
            (1999, 12, 31),
        ] {
            let date = SimDate::new(y, m, d);
            assert_eq!(SimDate::from_ordinal(date.to_ordinal()), date, "{date:?}");
        }
    }

    #[test]
    fn paper_timelines_have_expected_lengths() {
        let nyma = SimDate::new(2014, 8, 1).days_until(SimDate::new(2014, 12, 1));
        assert_eq!(nyma, 122);
        let covid = SimDate::new(2020, 3, 12).days_until(SimDate::new(2020, 4, 2));
        assert_eq!(covid, 21);
    }

    #[test]
    fn leap_year_handling() {
        assert_eq!(SimDate::new(2020, 2, 28).plus_days(1), SimDate::new(2020, 2, 29));
        assert_eq!(SimDate::new(2020, 2, 29).plus_days(1), SimDate::new(2020, 3, 1));
        assert_eq!(SimDate::new(2019, 2, 28).plus_days(1), SimDate::new(2019, 3, 1));
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn invalid_day_panics() {
        let _ = SimDate::new(2019, 2, 29);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimDate::new(2020, 3, 12) < SimDate::new(2020, 3, 22));
        assert!(SimDate::new(2014, 12, 1) < SimDate::new(2020, 1, 1));
    }

    #[test]
    fn us_format() {
        assert_eq!(SimDate::new(2020, 3, 12).format_us(), "03/12/2020");
    }

    #[test]
    fn plus_days_negative() {
        assert_eq!(SimDate::new(2020, 3, 1).plus_days(-1), SimDate::new(2020, 2, 29));
    }
}
