//! Tweet and dataset types, chronological splitting, and filters.

use serde::{Deserialize, Serialize};

use edge_geo::{BBox, Point};
use edge_text::EntityCategory;

use crate::date::SimDate;

/// One geo-tagged tweet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tweet {
    /// Stable id within the dataset.
    pub id: u64,
    /// Rendered text.
    pub text: String,
    /// Ground-truth geotag.
    pub location: Point,
    /// Posting date.
    pub date: SimDate,
    /// Ground-truth canonical entity ids actually rendered into `text`.
    ///
    /// **Audit-only field**: models must recover entities through the NER;
    /// this list exists so the Section IV-A recognition audit has labels,
    /// playing the role of the paper's manual annotation passes.
    pub gold_entities: Vec<String>,
}

/// A complete dataset: chronologically ordered tweets plus the entity
/// inventory (the "trained knowledge" the NER gazetteer is built from).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (e.g. "NYMA").
    pub name: String,
    /// Study region.
    pub bbox: BBox,
    /// Timeline `[start, end)`.
    pub timeline: (SimDate, SimDate),
    /// Tweets in chronological order.
    pub tweets: Vec<Tweet>,
    /// Entity inventory: `(surface form, category)`.
    pub gazetteer: Vec<(String, EntityCategory)>,
}

impl Dataset {
    /// Splits chronologically: "the first 75% of tweets in the timeline …
    /// for training and the remaining for test". Returns `(train, test)`
    /// slices.
    pub fn chronological_split(&self, train_fraction: f64) -> (&[Tweet], &[Tweet]) {
        assert!((0.0..=1.0).contains(&train_fraction), "train fraction must be in [0,1]");
        debug_assert!(self.tweets.windows(2).all(|w| w[0].date <= w[1].date), "tweets not sorted");
        let cut = (self.tweets.len() as f64 * train_fraction).round() as usize;
        self.tweets.split_at(cut.min(self.tweets.len()))
    }

    /// The paper's 75/25 split.
    pub fn paper_split(&self) -> (&[Tweet], &[Tweet]) {
        self.chronological_split(0.75)
    }

    /// Tweets whose text contains any of `keywords` (case-insensitive
    /// substring match — the paper's COVID-19 dataset is built exactly this
    /// way from keyword filters).
    pub fn filter_keywords(&self, keywords: &[&str]) -> Vec<&Tweet> {
        let lowered: Vec<String> = keywords.iter().map(|k| k.to_lowercase()).collect();
        self.tweets
            .iter()
            .filter(|t| {
                let text = t.text.to_lowercase();
                lowered.iter().any(|k| text.contains(k.as_str()))
            })
            .collect()
    }

    /// A new dataset containing only the keyword-matching tweets (ids and
    /// order preserved), renamed to `name`.
    pub fn keyword_subset(&self, name: &str, keywords: &[&str]) -> Dataset {
        Dataset {
            name: name.to_string(),
            bbox: self.bbox,
            timeline: self.timeline,
            tweets: self.filter_keywords(keywords).into_iter().cloned().collect(),
            gazetteer: self.gazetteer.clone(),
        }
    }

    /// Tweets posted in `[start, end)` — the windowing used by every
    /// use-case figure.
    pub fn window(&self, start: SimDate, end: SimDate) -> Vec<&Tweet> {
        self.tweets.iter().filter(|t| t.date >= start && t.date < end).collect()
    }

    /// Number of tweets.
    pub fn len(&self) -> usize {
        self.tweets.len()
    }

    /// True when the dataset has no tweets.
    pub fn is_empty(&self) -> bool {
        self.tweets.is_empty()
    }
}

/// The COVID-19 keyword set of the paper's third dataset.
pub const COVID_KEYWORDS: &[&str] = &[
    "coronavirus",
    "covid",
    "pandemic",
    "quarantine",
    "wuhan",
    "masks",
    "vaccine",
    "stayhome",
    "toilet paper",
    "social distance",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet(id: u64, day: u8, text: &str) -> Tweet {
        Tweet {
            id,
            text: text.to_string(),
            location: Point::new(40.7, -74.0),
            date: SimDate::new(2020, 3, day),
            gold_entities: vec![],
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            name: "test".into(),
            bbox: BBox::new(40.0, 41.0, -75.0, -74.0),
            timeline: (SimDate::new(2020, 3, 12), SimDate::new(2020, 4, 2)),
            tweets: vec![
                tweet(0, 12, "lockdown begins #covid19"),
                tweet(1, 14, "nice walk in the park"),
                tweet(2, 16, "Quarantine day four"),
                tweet(3, 20, "toilet paper run"),
                tweet(4, 22, "concert tonight"),
                tweet(5, 25, "masks everywhere"),
                tweet(6, 28, "spring is here"),
                tweet(7, 30, "still in QUARANTINE"),
            ],
            gazetteer: vec![],
        }
    }

    #[test]
    fn chronological_split_ratios() {
        let d = dataset();
        let (train, test) = d.paper_split();
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 2);
        // Train strictly precedes test in time.
        assert!(train.last().unwrap().date <= test.first().unwrap().date);
    }

    #[test]
    fn split_edge_fractions() {
        let d = dataset();
        assert_eq!(d.chronological_split(0.0).0.len(), 0);
        assert_eq!(d.chronological_split(1.0).1.len(), 0);
    }

    #[test]
    fn keyword_filter_is_case_insensitive_substring() {
        let d = dataset();
        let hits = d.filter_keywords(COVID_KEYWORDS);
        let ids: Vec<u64> = hits.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 2, 3, 5, 7]);
    }

    #[test]
    fn keyword_subset_preserves_order_and_metadata() {
        let d = dataset();
        let sub = d.keyword_subset("COVID-19", &["quarantine"]);
        assert_eq!(sub.name, "COVID-19");
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.tweets[0].id, 2);
        assert_eq!(sub.bbox, d.bbox);
    }

    #[test]
    fn window_is_half_open() {
        let d = dataset();
        let w = d.window(SimDate::new(2020, 3, 14), SimDate::new(2020, 3, 22));
        let ids: Vec<u64> = w.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn covid_keywords_match_paper_list() {
        assert_eq!(COVID_KEYWORDS.len(), 10);
        assert!(COVID_KEYWORDS.contains(&"toilet paper"));
        assert!(COVID_KEYWORDS.contains(&"social distance"));
    }
}
