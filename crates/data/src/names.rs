//! Synthetic naming: POI names, neighbourhood names, topic handles and the
//! filler vocabulary tweets are rendered with.

use rand::Rng;

/// Adjective-like first components of POI names.
pub const POI_FIRST: &[&str] = &[
    "Majestic",
    "Imperial",
    "Liberty",
    "Union",
    "Grand",
    "Riverside",
    "Sunset",
    "Harbor",
    "Crescent",
    "Golden",
    "Silver",
    "Summit",
    "Meridian",
    "Pioneer",
    "Cobalt",
    "Willow",
    "Magnolia",
    "Granite",
    "Beacon",
    "Cedar",
    "Falcon",
    "Horizon",
    "Juniper",
    "Keystone",
    "Lakeside",
    "Monarch",
    "Northgate",
    "Orchard",
    "Paramount",
    "Quarry",
    "Redwood",
    "Sterling",
    "Tidewater",
    "Uptown",
    "Vanguard",
    "Westbrook",
    "Yellowstone",
    "Zephyr",
    "Atlas",
    "Bluebird",
];

/// Facility-type second components of POI names (with their coarse class).
pub const POI_KIND: &[&str] = &[
    "Theatre", "Hospital", "Park", "Market", "Stadium", "Square", "Street", "Bridge", "Cafe",
    "Museum", "Plaza", "Station", "Gallery", "Arena", "Library", "Pier", "Garden", "Tower", "Hall",
    "Avenue",
];

/// Whether a POI kind is a pure location (`Geolocation` category) rather
/// than a venue (`Facility`).
pub fn kind_is_location(kind: &str) -> bool {
    matches!(kind, "Park" | "Square" | "Street" | "Bridge" | "Plaza" | "Pier" | "Avenue" | "Garden")
}

/// First components of coarse neighbourhood names.
pub const HOOD_FIRST: &[&str] =
    &["North", "South", "East", "West", "Old", "New", "Upper", "Lower", "Mid", "Fort"];

/// Second components of coarse neighbourhood names.
pub const HOOD_SECOND: &[&str] = &[
    "Haven", "Ridge", "Field", "Crossing", "Heights", "Village", "Shore", "Hollow", "Commons",
    "Landing", "Point", "Glen", "Borough", "Flats", "Gate", "Row",
];

/// Filler words used to pad tweet text around entity mentions. Chosen to
/// overlap heavily with the stop-word list so bag-of-words baselines get the
/// realistic amount of lexical noise.
pub const FILLER: &[&str] = &[
    "just",
    "really",
    "love",
    "this",
    "place",
    "today",
    "great",
    "time",
    "with",
    "friends",
    "amazing",
    "vibes",
    "best",
    "day",
    "ever",
    "cant",
    "wait",
    "back",
    "again",
    "soon",
    "beautiful",
    "morning",
    "night",
    "weekend",
    "finally",
    "here",
    "good",
    "everyone",
    "thanks",
    "happy",
    "feeling",
    "blessed",
    "life",
    "city",
    "walk",
    "coffee",
    "dinner",
    "show",
    "music",
];

/// Draws a random element of a non-empty slice.
pub fn pick<'a, R: Rng + ?Sized>(items: &'a [&'a str], rng: &mut R) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn name_parts_are_nonempty_and_unique() {
        for list in [POI_FIRST, POI_KIND, HOOD_FIRST, HOOD_SECOND, FILLER] {
            assert!(!list.is_empty());
            let set: std::collections::HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len(), "duplicates in name list");
        }
    }

    #[test]
    fn poi_name_space_is_large_enough() {
        // Enough combinations for the default gazetteer sizes without
        // collisions being common.
        assert!(POI_FIRST.len() * POI_KIND.len() >= 500);
    }

    #[test]
    fn kind_classification() {
        assert!(kind_is_location("Street"));
        assert!(kind_is_location("Park"));
        assert!(!kind_is_location("Theatre"));
        assert!(!kind_is_location("Hospital"));
    }

    #[test]
    fn pick_is_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(pick(POI_KIND, &mut rng));
        }
        assert!(seen.len() > POI_KIND.len() / 2);
    }

    #[test]
    fn filler_is_lowercase() {
        assert!(FILLER.iter().all(|w| w.chars().all(|c| c.is_lowercase() || !c.is_alphabetic())));
    }
}
