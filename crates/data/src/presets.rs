//! Dataset presets mirroring the paper's three corpora (plus the unfiltered
//! NY-2020 crawl the COVID-19 subset and the festival use case draw from).
//!
//! | Preset | Paper counterpart | Timeline |
//! |---|---|---|
//! | [`nyma`] | 367,259 NYC tweets (2014) | 08/01/2014 – 12/01/2014 |
//! | [`lama`] | 17,025 LA tweets (2020) | 03/12/2020 – 04/02/2020 |
//! | [`ny2020`] | the NY 2020 crawl | 03/12/2020 – 04/02/2020 |
//! | [`covid19`] | keyword-filtered NY 2020 subset | 03/12/2020 – 04/02/2020 |
//!
//! Sizes are configurable: the paper's NYMA has 367k tweets, which a CPU
//! training run does not need — [`PresetSize`] selects between the paper
//! count, a default experiment scale, and a smoke-test scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use edge_geo::Point;
use edge_text::EntityCategory;

use crate::dataset::{Dataset, COVID_KEYWORDS};
use crate::date::SimDate;
use crate::generator::{generate, GeneratorConfig};
use crate::metro::MetroArea;
use crate::poi::{generate_pois, Granularity, Poi};
use crate::topics::{Topic, TopicStyle};

/// Corpus-size profile for a preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresetSize {
    /// The paper's tweet counts (NYMA 367,259 / LAMA 17,025 / NY2020 48,000).
    Paper,
    /// A CPU-friendly scale preserving all statistical structure
    /// (NYMA 24,000 / LAMA 17,025 / NY2020 30,000).
    Default,
    /// A fast scale for tests (NYMA 4,000 / LAMA 3,000 / NY2020 5,000).
    Smoke,
}

/// Generic steady-topic names (hashtags/handles/phrases) shared by all
/// presets: city-life chatter with venue anchors.
const GENERIC_TOPICS: &[(&str, TopicStyle)] = &[
    ("jazznight", TopicStyle::Hashtag),
    ("foodfest", TopicStyle::Hashtag),
    ("artwalk", TopicStyle::Hashtag),
    ("citymarathon", TopicStyle::Hashtag),
    ("fashionweek", TopicStyle::Hashtag),
    ("bookfair", TopicStyle::Hashtag),
    ("winterlights", TopicStyle::Hashtag),
    ("streetfood", TopicStyle::Hashtag),
    ("openmic", TopicStyle::Hashtag),
    ("gallerynight", TopicStyle::Hashtag),
    ("brunchclub", TopicStyle::Handle),
    ("nightowls", TopicStyle::Handle),
    ("localeats", TopicStyle::Handle),
    ("transitalerts", TopicStyle::Handle),
    ("parksdept", TopicStyle::Handle),
    ("indieband", TopicStyle::Handle),
    ("improvcrew", TopicStyle::Handle),
    ("rooftop party", TopicStyle::Phrase),
    ("farmers market", TopicStyle::Phrase),
    ("poetry slam", TopicStyle::Phrase),
    ("craft beer", TopicStyle::Phrase),
    ("salsa night", TopicStyle::Phrase),
    ("trivia night", TopicStyle::Phrase),
    ("food truck", TopicStyle::Phrase),
];

/// Builds the generic steady topics, anchoring each to 1–3 fine POIs.
fn generic_topics(pois: &[Poi], seed: u64) -> Vec<Topic> {
    let fine: Vec<usize> = pois
        .iter()
        .enumerate()
        .filter(|(_, p)| p.granularity == Granularity::Fine)
        .map(|(i, _)| i)
        .collect();
    assert!(fine.len() >= 3, "need at least 3 fine POIs for topic anchors");
    let mut rng = StdRng::seed_from_u64(seed);
    GENERIC_TOPICS
        .iter()
        .map(|&(name, style)| {
            let n_anchors = rng.gen_range(1..=3usize);
            let anchors: Vec<(usize, f64)> = (0..n_anchors)
                .map(|_| (fine[rng.gen_range(0..fine.len())], rng.gen_range(0.4..1.0)))
                .collect();
            Topic::steady(
                name,
                style,
                anchors,
                rng.gen_range(0.60..0.90),
                rng.gen_range(0.45..0.75),
                rng.gen_range(0.5..1.5),
            )
        })
        .collect()
}

/// Appends a named signature POI and returns its index.
fn push_signature(
    pois: &mut Vec<Poi>,
    name: &str,
    cat: EntityCategory,
    loc: Point,
    sigma: f64,
    g: Granularity,
) -> usize {
    pois.push(Poi {
        name: name.to_string(),
        category: cat,
        location: loc,
        sigma_deg: sigma,
        granularity: g,
    });
    pois.len() - 1
}

/// NYMA: the 2014 New York crawl. Includes the paper's running-example
/// structure — a `@phantomopera`-like handle anchored at a Majestic
/// Theatre / Broadway pair.
pub fn nyma(size: PresetSize, seed: u64) -> Dataset {
    let metro = MetroArea::new_york_like();
    let mut pois = generate_pois(&metro, 220, 40, seed ^ 0x11);
    let majestic = push_signature(
        &mut pois,
        "Majestic Theatre",
        EntityCategory::Facility,
        Point::new(40.7571, -73.9885),
        0.002,
        Granularity::Fine,
    );
    let broadway = push_signature(
        &mut pois,
        "Broadway",
        EntityCategory::Geolocation,
        Point::new(40.7590, -73.9875),
        0.012,
        Granularity::Coarse,
    );
    let presbyterian = push_signature(
        &mut pois,
        "Presbyterian Hospital",
        EntityCategory::Facility,
        Point::new(40.8404, -73.9423),
        0.003,
        Granularity::Fine,
    );

    let mut topics = generic_topics(&pois, seed ^ 0x22);
    topics.push(Topic::steady(
        "phantomopera",
        TopicStyle::Handle,
        vec![(majestic, 1.0), (broadway, 0.5)],
        0.88,
        0.70,
        1.2,
    ));
    topics.push(Topic::steady(
        "health fair",
        TopicStyle::Phrase,
        vec![(presbyterian, 1.0)],
        0.75,
        0.60,
        0.8,
    ));

    let n_tweets = match size {
        PresetSize::Paper => 367_259,
        PresetSize::Default => 24_000,
        PresetSize::Smoke => 4_000,
    };
    generate(
        "NYMA",
        &metro,
        &pois,
        &topics,
        &GeneratorConfig {
            n_tweets,
            start: SimDate::new(2014, 8, 1),
            end: SimDate::new(2014, 12, 1),
            seed,
            ..Default::default()
        },
    )
}

/// The COVID-era topic block shared by the 2020 presets. Anchors pandemic
/// topics to hospitals/markets; `quarantine` is modelled as two same-name
/// event topics so its spatial footprint *spreads* between the paper's two
/// Figure-1 windows (tight around early hotspots before 03/22, metro-wide
/// after).
fn covid_topics(pois: &[Poi], hospital_anchors: &[usize], market_anchors: &[usize]) -> Vec<Topic> {
    assert!(!hospital_anchors.is_empty() && !market_anchors.is_empty());
    let h = |i: usize| hospital_anchors[i % hospital_anchors.len()];
    let m = |i: usize| market_anchors[i % market_anchors.len()];
    let early = (SimDate::new(2020, 3, 12), SimDate::new(2020, 3, 21));
    let late = (SimDate::new(2020, 3, 22), SimDate::new(2020, 4, 1));
    let _ = pois;
    vec![
        Topic::steady(
            "covid19",
            TopicStyle::Hashtag,
            vec![(h(0), 1.0), (h(1), 0.7)],
            0.72,
            0.62,
            2.5,
        ),
        Topic::steady(
            "coronavirus",
            TopicStyle::Phrase,
            vec![(h(0), 1.0), (h(2), 0.6)],
            0.65,
            0.55,
            2.0,
        ),
        Topic::steady("pandemic", TopicStyle::Phrase, vec![(h(1), 1.0)], 0.55, 0.50, 1.5),
        // Quarantine spreads: early = two tight hotspots, late = many anchors.
        Topic::event(
            "quarantine",
            TopicStyle::Phrase,
            vec![(h(0), 1.0), (m(0), 0.8)],
            0.85,
            0.55,
            2.0,
            early,
            0.0,
        ),
        Topic::event(
            "quarantine",
            TopicStyle::Phrase,
            vec![(h(0), 0.6), (h(1), 0.8), (h(2), 0.8), (m(0), 0.7), (m(1), 1.0), (m(2), 0.9)],
            0.55,
            0.45,
            2.4,
            late,
            0.0,
        ),
        Topic::steady("wuhan", TopicStyle::Phrase, vec![(h(2), 1.0)], 0.40, 0.35, 0.6),
        Topic::steady("masks", TopicStyle::Phrase, vec![(m(0), 1.0), (h(0), 0.5)], 0.60, 0.50, 1.4),
        Topic::steady("vaccine", TopicStyle::Phrase, vec![(h(1), 1.0)], 0.62, 0.55, 0.9),
        Topic::steady("stayhome", TopicStyle::Hashtag, vec![(m(1), 1.0)], 0.35, 0.30, 1.2),
        Topic::steady(
            "toilet paper",
            TopicStyle::Phrase,
            vec![(m(0), 1.0), (m(2), 0.8)],
            0.70,
            0.60,
            1.0,
        ),
        Topic::steady("social distance", TopicStyle::Phrase, vec![(m(1), 0.7)], 0.38, 0.32, 1.1),
    ]
}

/// Indices of fine POIs whose names contain `needle`.
fn pois_matching(pois: &[Poi], needle: &str) -> Vec<usize> {
    pois.iter()
        .enumerate()
        .filter(|(_, p)| p.name.contains(needle) && p.granularity == Granularity::Fine)
        .map(|(i, _)| i)
        .collect()
}

/// LAMA: the 2020 Los Angeles crawl, including the Nipsey-Hussle-anniversary
/// event of the Figure-8 use case (a burst anchored at a Marathon-Clothing-
/// like store on 03/31).
pub fn lama(size: PresetSize, seed: u64) -> Dataset {
    let metro = MetroArea::los_angeles_like();
    let mut pois = generate_pois(&metro, 200, 35, seed ^ 0x33);
    let marathon = push_signature(
        &mut pois,
        "Marathon Clothing",
        EntityCategory::Company,
        Point::new(33.9890, -118.3310),
        0.004,
        Granularity::Fine,
    );

    let hospitals = pois_matching(&pois, "Hospital");
    let markets = pois_matching(&pois, "Market");
    let mut topics = generic_topics(&pois, seed ^ 0x44);
    topics.extend(covid_topics(&pois, &hospitals, &markets));
    // Anniversary: heavy burst 03/31–04/02, trickle before.
    topics.push(Topic::event(
        "nipseyhussle",
        TopicStyle::Hashtag,
        vec![(marathon, 1.0)],
        0.80,
        0.55,
        9.0,
        (SimDate::new(2020, 3, 31), SimDate::new(2020, 4, 1)),
        0.015,
    ));

    let n_tweets = match size {
        PresetSize::Paper | PresetSize::Default => 17_025,
        PresetSize::Smoke => 3_000,
    };
    generate(
        "LAMA",
        &metro,
        &pois,
        &topics,
        &GeneratorConfig {
            n_tweets,
            start: SimDate::new(2020, 3, 12),
            end: SimDate::new(2020, 4, 2),
            seed: seed ^ 0x55,
            ..Default::default()
        },
    )
}

/// The full NY 2020 crawl: COVID topics plus the New-Colossus-Festival
/// structure of the Figure-9 use case (seven clustered Lower-East-Side-like
/// venues, event window 03/12 – 03/15, scattered reminiscing afterwards).
pub fn ny2020(size: PresetSize, seed: u64) -> Dataset {
    let metro = MetroArea::new_york_like();
    let mut pois = generate_pois(&metro, 220, 40, seed ^ 0x66);
    // Seven festival venues clustered in a Lower-East-Side-like patch.
    let venue_names = [
        "Arlenes Grocery",
        "Berlin Hall",
        "Bowery Electric",
        "Lola Stage",
        "The Delancey",
        "Moscot House",
        "Pianos Bar",
    ];
    let venue_center = Point::new(40.7205, -73.9879);
    let mut venue_rng = StdRng::seed_from_u64(seed ^ 0x77);
    let venues: Vec<usize> = venue_names
        .iter()
        .map(|name| {
            let loc = Point::new(
                venue_center.lat + venue_rng.gen_range(-0.004..0.004),
                venue_center.lon + venue_rng.gen_range(-0.004..0.004),
            );
            push_signature(
                &mut pois,
                name,
                EntityCategory::Facility,
                loc,
                0.0015,
                Granularity::Fine,
            )
        })
        .collect();

    let hospitals = pois_matching(&pois, "Hospital");
    let markets = pois_matching(&pois, "Market");
    let mut topics = generic_topics(&pois, seed ^ 0x88);
    topics.extend(covid_topics(&pois, &hospitals, &markets));
    // During the festival: tight multi-venue anchoring.
    topics.push(Topic::event(
        "new colossus festival",
        TopicStyle::Phrase,
        venues.iter().map(|&v| (v, 1.0)).collect(),
        0.90,
        0.65,
        2.5,
        (SimDate::new(2020, 3, 12), SimDate::new(2020, 3, 15)),
        0.0,
    ));
    // After: reminiscing from wherever people live.
    topics.push(Topic::event(
        "new colossus festival",
        TopicStyle::Phrase,
        venues.iter().map(|&v| (v, 1.0)).collect(),
        0.25,
        0.30,
        0.5,
        (SimDate::new(2020, 3, 16), SimDate::new(2020, 4, 1)),
        0.0,
    ));

    let n_tweets = match size {
        PresetSize::Paper => 48_000,
        PresetSize::Default => 30_000,
        PresetSize::Smoke => 5_000,
    };
    generate(
        "NY2020",
        &metro,
        &pois,
        &topics,
        &GeneratorConfig {
            n_tweets,
            start: SimDate::new(2020, 3, 12),
            end: SimDate::new(2020, 4, 2),
            seed: seed ^ 0x99,
            ..Default::default()
        },
    )
}

/// The COVID-19 dataset: the keyword-filtered NY 2020 subset, exactly as
/// the paper constructs it.
pub fn covid19(size: PresetSize, seed: u64) -> Dataset {
    ny2020(size, seed).keyword_subset("COVID-19", COVID_KEYWORDS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nyma_smoke_shape() {
        let d = nyma(PresetSize::Smoke, 1);
        assert_eq!(d.name, "NYMA");
        assert_eq!(d.len(), 4000);
        assert_eq!(d.timeline.0, SimDate::new(2014, 8, 1));
        assert!(d.gazetteer.iter().any(|(n, _)| n == "Majestic Theatre"));
        assert!(d.gazetteer.iter().any(|(n, _)| n == "phantomopera"));
    }

    #[test]
    fn lama_smoke_shape() {
        let d = lama(PresetSize::Smoke, 1);
        assert_eq!(d.len(), 3000);
        assert!(d.gazetteer.iter().any(|(n, _)| n == "Marathon Clothing"));
        assert!(d.bbox.min_lon < -118.0, "LA longitude range");
    }

    #[test]
    fn covid_subset_only_keyword_tweets() {
        let d = covid19(PresetSize::Smoke, 2);
        assert!(!d.is_empty());
        for t in &d.tweets {
            let lower = t.text.to_lowercase();
            assert!(
                COVID_KEYWORDS.iter().any(|k| lower.contains(k)),
                "non-covid tweet in subset: {}",
                t.text
            );
        }
        // A meaningful share of the crawl matches, as in the paper.
        let full = ny2020(PresetSize::Smoke, 2);
        let share = d.len() as f64 / full.len() as f64;
        assert!((0.05..0.6).contains(&share), "covid share {share}");
    }

    #[test]
    fn quarantine_footprint_spreads_between_fig1_windows() {
        let d = ny2020(PresetSize::Smoke, 3);
        let quarantine: Vec<&crate::dataset::Tweet> =
            d.tweets.iter().filter(|t| t.gold_entities.iter().any(|e| e == "quarantine")).collect();
        let early: Vec<_> =
            quarantine.iter().filter(|t| t.date < SimDate::new(2020, 3, 22)).collect();
        let late: Vec<_> =
            quarantine.iter().filter(|t| t.date >= SimDate::new(2020, 3, 22)).collect();
        assert!(early.len() > 20 && late.len() > 20, "{} / {}", early.len(), late.len());
        // Spatial dispersion (mean distance to centroid) grows.
        let dispersion = |ts: &[&&crate::dataset::Tweet]| {
            let pts: Vec<Point> = ts.iter().map(|t| t.location).collect();
            let c = edge_geo::point::centroid(&pts).unwrap();
            pts.iter().map(|p| p.haversine_km(&c)).sum::<f64>() / pts.len() as f64
        };
        let d_early = dispersion(&early);
        let d_late = dispersion(&late);
        assert!(d_late > d_early * 1.2, "early {d_early:.2} km vs late {d_late:.2} km");
    }

    #[test]
    fn nipsey_burst_is_on_the_anniversary() {
        let d = lama(PresetSize::Smoke, 4);
        let nipsey: Vec<_> = d
            .tweets
            .iter()
            .filter(|t| t.gold_entities.iter().any(|e| e == "nipseyhussle"))
            .collect();
        assert!(nipsey.len() > 10);
        let on_day: Vec<_> =
            nipsey.iter().filter(|t| t.date >= SimDate::new(2020, 3, 31)).collect();
        // 2 of 21 days hold the majority of mentions.
        assert!(
            on_day.len() * 2 > nipsey.len(),
            "{} of {} on anniversary",
            on_day.len(),
            nipsey.len()
        );
    }

    #[test]
    fn festival_tweets_cluster_during_event_only() {
        let d = ny2020(PresetSize::Smoke, 5);
        let fest: Vec<_> = d
            .tweets
            .iter()
            .filter(|t| t.gold_entities.iter().any(|e| e == "new_colossus_festival"))
            .collect();
        let during: Vec<_> = fest.iter().filter(|t| t.date <= SimDate::new(2020, 3, 15)).collect();
        assert!(during.len() > 10, "during {}", during.len());
        let venue_center = Point::new(40.7205, -73.9879);
        let near = during.iter().filter(|t| t.location.haversine_km(&venue_center) < 2.5).count()
            as f64
            / during.len() as f64;
        assert!(near > 0.6, "only {near} near venues during event");
    }

    #[test]
    fn presets_are_deterministic() {
        let a = lama(PresetSize::Smoke, 9);
        let b = lama(PresetSize::Smoke, 9);
        assert_eq!(a.tweets, b.tweets);
    }

    #[test]
    fn default_sizes() {
        // Just the counts; full generation of Default sizes is cheap.
        assert_eq!(nyma(PresetSize::Default, 1).len(), 24_000);
        assert_eq!(lama(PresetSize::Default, 1).len(), 17_025);
        assert_eq!(ny2020(PresetSize::Default, 1).len(), 30_000);
    }
}
