//! Property-based tests for the corpus generator: structural invariants
//! must hold for *any* generator configuration, not just the presets.

use edge_data::{generate, generate_pois, GeneratorConfig, MetroArea, SimDate, Topic, TopicStyle};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (50usize..300, 0.0f64..0.9, 0.0f64..0.9, 0.0f64..0.2, 0.0f64..0.3, 0.0f64..0.5, any::<u64>())
        .prop_map(|(n, p_topic, p_geo, p_noise, p_distort, p_remote, seed)| GeneratorConfig {
            n_tweets: n,
            p_topic,
            p_geo_mention: p_geo,
            p_noise,
            p_distort,
            p_remote,
            seed,
            ..Default::default()
        })
}

fn setup() -> (MetroArea, Vec<edge_data::Poi>, Vec<Topic>) {
    let metro = MetroArea::new_york_like();
    let pois = generate_pois(&metro, 30, 6, 9);
    let topics = vec![
        Topic::steady("alpha", TopicStyle::Hashtag, vec![(0, 1.0)], 0.7, 0.5, 1.0),
        Topic::steady("beta topic", TopicStyle::Phrase, vec![(1, 1.0), (2, 0.5)], 0.5, 0.5, 1.0),
    ];
    (metro, pois, topics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_corpora_respect_invariants(config in arb_config()) {
        let (metro, pois, topics) = setup();
        let d = generate("P", &metro, &pois, &topics, &config);
        prop_assert_eq!(d.len(), config.n_tweets);
        // Chronological, ids sequential, locations in-region, dates in-range.
        prop_assert!(d.tweets.windows(2).all(|w| w[0].date <= w[1].date));
        for (i, t) in d.tweets.iter().enumerate() {
            prop_assert_eq!(t.id, i as u64);
            prop_assert!(d.bbox.contains(&t.location));
            prop_assert!(t.date >= config.start && t.date < config.end);
            prop_assert!(!t.text.is_empty());
            // Gold entities are canonical ids, sorted and unique.
            prop_assert!(t.gold_entities.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn same_seed_same_corpus(config in arb_config()) {
        let (metro, pois, topics) = setup();
        let a = generate("A", &metro, &pois, &topics, &config);
        let b = generate("B", &metro, &pois, &topics, &config);
        prop_assert_eq!(a.tweets, b.tweets);
    }

    #[test]
    fn zero_noise_zero_topics_still_generates(seed in any::<u64>()) {
        let (metro, pois, _) = setup();
        let config = GeneratorConfig {
            n_tweets: 80,
            p_topic: 0.5, // irrelevant without topics
            p_noise: 0.0,
            seed,
            ..Default::default()
        };
        let d = generate("NT", &metro, &pois, &[], &config);
        prop_assert_eq!(d.len(), 80);
    }

    #[test]
    fn split_fractions_partition(frac in 0.0f64..=1.0, seed in any::<u64>()) {
        let (metro, pois, topics) = setup();
        let config = GeneratorConfig { n_tweets: 120, seed, ..Default::default() };
        let d = generate("S", &metro, &pois, &topics, &config);
        let (train, test) = d.chronological_split(frac);
        prop_assert_eq!(train.len() + test.len(), d.len());
        if let (Some(last), Some(first)) = (train.last(), test.first()) {
            prop_assert!(last.date <= first.date);
        }
    }

    #[test]
    fn window_queries_partition_the_timeline(day in 0i64..21, seed in any::<u64>()) {
        let (metro, pois, topics) = setup();
        let config = GeneratorConfig { n_tweets: 150, seed, ..Default::default() };
        let d = generate("W", &metro, &pois, &topics, &config);
        let cut = SimDate::new(2020, 3, 12).plus_days(day);
        let before = d.window(config.start, cut).len();
        let after = d.window(cut, config.end).len();
        prop_assert_eq!(before + after, d.len());
    }

    #[test]
    fn date_arithmetic_round_trips(offset in -100_000i64..100_000) {
        let base = SimDate::new(2020, 3, 12);
        let shifted = base.plus_days(offset);
        prop_assert_eq!(base.days_until(shifted), offset);
        prop_assert_eq!(shifted.plus_days(-offset), base);
    }
}
