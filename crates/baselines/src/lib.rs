//! The comparison methods of the EDGE paper's Table III, re-implemented
//! from their descriptions: LocKDE (Ozdikis et al.), the NaiveBayes /
//! Kullback-Leibler grid classifiers and their `kde2d` kernel-smoothed
//! variants (Hulden et al.), Hyper-local geo-specific n-grams (Flatow et
//! al.) and the character-level UnicodeCNN with a mixture-of-von-Mises–
//! Fisher head (Izbicki et al.).
//!
//! All methods expose the [`Geolocator`] trait (now part of
//! `edge_core::predict`, where EDGE and BOW pick it up through the blanket
//! `Predictor` implementation) the benchmark harness evaluates through.

pub mod embed_net;
pub mod grid_model;
pub mod hyperlocal;
pub mod kullback_leibler;
pub mod lockde;
pub mod naive_bayes;
pub mod unicode_cnn;

pub use edge_core::{Geolocator, PointEval};
pub use embed_net::{EmbedNet, EmbedNetConfig};
pub use grid_model::{model_words, GridCounts};
pub use hyperlocal::{HyperLocal, HyperLocalParams};
pub use kullback_leibler::KullbackLeibler;
pub use lockde::{LocKde, LocKdeParams};
pub use naive_bayes::NaiveBayes;
pub use unicode_cnn::{UnicodeCnn, UnicodeCnnConfig};
