//! The common interface the benchmark harness evaluates every method
//! through.

use edge_data::Tweet;
use edge_geo::Point;

/// A tweet geolocation method producing a single point estimate (the
/// common denominator of Table III; EDGE additionally returns its mixture
/// through its own API).
pub trait Geolocator {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// The predicted location, or `None` when the method abstains
    /// (Hyper-local abstains on tweets without geo-specific n-grams).
    fn predict_point(&self, text: &str) -> Option<Point>;

    /// Evaluates on a test split: `(prediction, truth)` pairs for covered
    /// tweets plus the coverage fraction.
    fn evaluate(&self, test: &[Tweet]) -> (Vec<(Point, Point)>, f64) {
        let pairs: Vec<(Point, Point)> = test
            .iter()
            .filter_map(|t| self.predict_point(&t.text).map(|p| (p, t.location)))
            .collect();
        let coverage = pairs.len() as f64 / test.len().max(1) as f64;
        (pairs, coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::SimDate;

    struct Fixed(Option<Point>);
    impl Geolocator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn predict_point(&self, _text: &str) -> Option<Point> {
            self.0
        }
    }

    fn tweets(n: usize) -> Vec<Tweet> {
        (0..n)
            .map(|i| Tweet {
                id: i as u64,
                text: "x".into(),
                location: Point::new(40.0, -74.0),
                date: SimDate::new(2020, 3, 12),
                gold_entities: vec![],
            })
            .collect()
    }

    #[test]
    fn evaluate_full_coverage() {
        let g = Fixed(Some(Point::new(40.5, -74.0)));
        let (pairs, cov) = g.evaluate(&tweets(4));
        assert_eq!(pairs.len(), 4);
        assert_eq!(cov, 1.0);
    }

    #[test]
    fn evaluate_abstaining_method() {
        let g = Fixed(None);
        let (pairs, cov) = g.evaluate(&tweets(4));
        assert!(pairs.is_empty());
        assert_eq!(cov, 0.0);
    }

    #[test]
    fn evaluate_empty_test_set() {
        let g = Fixed(Some(Point::new(0.0, 0.0)));
        let (pairs, cov) = g.evaluate(&[]);
        assert!(pairs.is_empty());
        assert_eq!(cov, 0.0);
    }
}
