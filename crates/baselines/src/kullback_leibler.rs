//! The Kullback-Leibler grid classifier of Hulden et al.: "finds the cell
//! whose word distribution best matches the word distribution of the
//! document, i.e., the cell with the minimum KL-divergence."
//!
//! `KL(p‖q_c) = Σ_w p(w) (log p(w) − log q_c(w))`; the `Σ p log p` term is
//! constant across cells, so the classifier minimizes the cross-entropy
//! `−Σ_w p(w) log q_c(w)` with Laplace-smoothed cell distributions `q_c`.

use edge_data::Tweet;
use edge_geo::{Grid, Partition, Point, Quadtree};

use crate::grid_model::{model_words, GridCounts};
use edge_core::Geolocator;
#[cfg(test)]
use edge_core::PointEval;

/// The trained KL grid model, generic over the spatial partition.
pub struct KullbackLeibler<P: Partition = Grid> {
    counts: GridCounts<P>,
    name: String,
}

impl KullbackLeibler<Grid> {
    /// Fits the count-based variant.
    pub fn fit(train: &[Tweet], grid: Grid) -> Self {
        Self { counts: GridCounts::fit(train, grid), name: "Kullback-Leibler".to_string() }
    }

    /// The `kde2d` variant.
    pub fn fit_kde2d(train: &[Tweet], grid: Grid, bandwidth_cells: f64) -> Self {
        let counts = GridCounts::fit(train, grid).smoothed(bandwidth_cells);
        Self { counts, name: "Kullback-Leibler_kde2d".to_string() }
    }

    /// Wraps pre-computed counts.
    pub fn from_counts(counts: GridCounts, name: &str) -> Self {
        Self { counts, name: name.to_string() }
    }
}

impl KullbackLeibler<Quadtree> {
    /// The quadtree extension.
    pub fn fit_quadtree(train: &[Tweet], tree: Quadtree) -> Self {
        Self { counts: GridCounts::fit(train, tree), name: "Kullback-Leibler_quadtree".to_string() }
    }
}

impl<P: Partition> KullbackLeibler<P> {
    /// Per-cell cross-entropy (lower = better match).
    pub fn cell_cross_entropy(&self, text: &str) -> Vec<f64> {
        let words = model_words(text);
        let v = self.counts.vocab_size() as f64;
        let n = words.len().max(1) as f64;
        // Uniform document distribution over tokens: p(w) = multiplicity/n.
        let mut ce: Vec<f64> = (0..self.counts.grid().n_cells())
            .map(|c| (self.counts.cell_total(c) + v).ln()) // Σ p(w)·log denom = log denom
            .collect();
        for w in &words {
            for &(c, count) in self.counts.word_cells(w) {
                ce[c as usize] -= ((count as f64) + 1.0).ln() / n;
            }
        }
        ce
    }

    /// The partition.
    pub fn grid(&self) -> &P {
        self.counts.grid()
    }
}

impl<P: Partition> Geolocator for KullbackLeibler<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_point(&self, text: &str) -> Option<Point> {
        let ce = self.cell_cross_entropy(text);
        let best = ce.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c)?;
        Some(self.counts.grid().cell_center(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};
    use edge_geo::DistanceReport;

    #[test]
    fn predicts_and_beats_center() {
        let d = nyma(PresetSize::Smoke, 5);
        let (train, test) = d.paper_split();
        let kl = KullbackLeibler::fit(train, Grid::new(d.bbox, 50, 50));
        let PointEval { pairs, coverage: cov, .. } = kl.evaluate_points(test);
        assert_eq!(cov, 1.0);
        let r = DistanceReport::from_pairs(&pairs).unwrap();
        let center: Vec<(Point, Point)> =
            test.iter().map(|t| (d.bbox.center(), t.location)).collect();
        let c = DistanceReport::from_pairs(&center).unwrap();
        assert!(r.mean_km < c.mean_km * 1.05, "KL {} vs center {}", r.mean_km, c.mean_km);
    }

    #[test]
    fn cross_entropy_shape_and_finiteness() {
        let d = nyma(PresetSize::Smoke, 6);
        let (train, _) = d.paper_split();
        let kl = KullbackLeibler::fit(train, Grid::new(d.bbox, 30, 30));
        let ce = kl.cell_cross_entropy("quarantine downtown");
        assert_eq!(ce.len(), kl.grid().len());
        assert!(ce.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn cell_with_matching_words_scores_lower() {
        let d = nyma(PresetSize::Smoke, 7);
        let (train, _) = d.paper_split();
        let kl = KullbackLeibler::fit(train, Grid::new(d.bbox, 30, 30));
        // A training tweet's own words should make its own cell competitive.
        let t = train.iter().find(|t| !t.gold_entities.is_empty()).unwrap();
        let ce = kl.cell_cross_entropy(&t.text);
        let own = kl.grid().index_of(kl.grid().cell_of(&t.location));
        let best = ce.iter().copied().fold(f64::INFINITY, f64::min);
        let rank = ce.iter().filter(|&&x| x < ce[own]).count();
        assert!(
            rank < kl.grid().len() / 4,
            "own cell ranks {rank}/{} (best {best}, own {})",
            kl.grid().len(),
            ce[own]
        );
    }

    #[test]
    fn kde2d_variant_name() {
        let d = nyma(PresetSize::Smoke, 8);
        let (train, _) = d.paper_split();
        let kl = KullbackLeibler::fit_kde2d(&train[..500], Grid::new(d.bbox, 20, 20), 1.0);
        assert_eq!(kl.name(), "Kullback-Leibler_kde2d");
        assert!(kl.predict_point("hello world").is_some());
    }
}
