//! Shared substrate of the Hulden-et-al. grid classifiers: per-cell word
//! statistics over the paper's uniform 100×100 grid, in both raw-count and
//! kernel-smoothed (`kde2d`) form.

use std::collections::HashMap;

use rayon::prelude::*;

use edge_data::Tweet;
use edge_geo::{Grid, Kde2d, Partition};
use edge_text::{is_stopword, lower_words};

/// The tokens a grid model sees in a tweet: lowercase words minus stop
/// words.
pub fn model_words(text: &str) -> Vec<String> {
    lower_words(text).into_iter().filter(|w| !is_stopword(w)).collect()
}

/// Per-cell word counts plus priors over a spatial partition (the paper's
/// uniform grid by default; the quadtree extension plugs in the same way).
#[derive(Debug, Clone)]
pub struct GridCounts<P: Partition = Grid> {
    grid: P,
    /// word → sparse `(cell index, count)` list, ascending by cell.
    word_cells: HashMap<String, Vec<(u32, f32)>>,
    /// Total word tokens per cell.
    cell_totals: Vec<f64>,
    /// Tweets per cell (the class prior).
    cell_tweets: Vec<f64>,
    vocab_size: usize,
}

impl<P: Partition> GridCounts<P> {
    /// Accumulates counts from the training tweets.
    pub fn fit(train: &[Tweet], grid: P) -> Self {
        let mut word_cells: HashMap<String, HashMap<u32, f32>> = HashMap::new();
        let mut cell_totals = vec![0.0; grid.n_cells()];
        let mut cell_tweets = vec![0.0; grid.n_cells()];
        for t in train {
            let cell = grid.cell_index_of(&t.location);
            cell_tweets[cell] += 1.0;
            for w in model_words(&t.text) {
                *word_cells.entry(w).or_default().entry(cell as u32).or_insert(0.0) += 1.0;
                cell_totals[cell] += 1.0;
            }
        }
        let word_cells = word_cells
            .into_iter()
            .map(|(w, cells)| {
                let mut v: Vec<(u32, f32)> = cells.into_iter().collect();
                v.sort_unstable_by_key(|&(c, _)| c);
                (w, v)
            })
            .collect::<HashMap<_, _>>();
        let vocab_size = word_cells.len();
        Self { grid, word_cells, cell_totals, cell_tweets, vocab_size }
    }

    /// The partition.
    pub fn grid(&self) -> &P {
        &self.grid
    }

    /// Vocabulary size (used in Laplace smoothing).
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The sparse per-cell counts of `word` (empty when unseen).
    pub fn word_cells(&self, word: &str) -> &[(u32, f32)] {
        self.word_cells.get(word).map_or(&[], Vec::as_slice)
    }

    /// Total word mass in cell `c`.
    pub fn cell_total(&self, c: usize) -> f64 {
        self.cell_totals[c]
    }

    /// Tweet (prior) mass in cell `c`.
    pub fn cell_tweet_count(&self, c: usize) -> f64 {
        self.cell_tweets[c]
    }

    /// Total tweet mass.
    pub fn total_tweets(&self) -> f64 {
        self.cell_tweets.iter().sum()
    }
}

impl GridCounts<Grid> {
    /// The kde2d variant: every word's cell histogram (and the totals) are
    /// smoothed with an isotropic 2-D Gaussian kernel of `bandwidth_cells`.
    /// Smoothed mass below `1e-4` is dropped to keep the tables sparse.
    pub fn smoothed(&self, bandwidth_cells: f64) -> Self {
        let kde = Kde2d::new(self.grid.clone(), bandwidth_cells);
        let smooth_sparse = |sparse: &Vec<(u32, f32)>| -> Vec<(u32, f32)> {
            let mut dense = vec![0.0f64; self.grid.len()];
            for &(c, v) in sparse {
                dense[c as usize] = v as f64;
            }
            kde.smooth(&dense)
                .into_iter()
                .enumerate()
                .filter(|&(_, v)| v > 1e-4)
                .map(|(c, v)| (c as u32, v as f32))
                .collect()
        };
        let entries: Vec<(String, Vec<(u32, f32)>)> = self
            .word_cells
            .par_iter()
            .map(|(w, cells)| (w.clone(), smooth_sparse(cells)))
            .collect();
        let word_cells: HashMap<String, Vec<(u32, f32)>> = entries.into_iter().collect();
        // Recompute totals from the smoothed words so the conditional
        // distributions stay consistent.
        let mut cell_totals = vec![0.0; self.grid.len()];
        for cells in word_cells.values() {
            for &(c, v) in cells {
                cell_totals[c as usize] += v as f64;
            }
        }
        Self {
            grid: self.grid.clone(),
            word_cells,
            cell_totals,
            cell_tweets: kde.smooth(&self.cell_tweets),
            vocab_size: self.vocab_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};
    use edge_geo::BBox;

    fn counts() -> GridCounts {
        let d = nyma(PresetSize::Smoke, 1);
        let (train, _) = d.paper_split();
        GridCounts::fit(train, Grid::new(d.bbox, 40, 40))
    }

    #[test]
    fn model_words_filters() {
        let w = model_words("The Majestic Theatre was GREAT today");
        assert_eq!(w, vec!["majestic", "theatre"]);
    }

    #[test]
    fn totals_are_consistent() {
        let c = counts();
        let word_mass: f64 = (0..c.grid().len()).map(|i| c.cell_total(i)).sum();
        let from_words: f64 =
            c.word_cells.values().flat_map(|v| v.iter().map(|&(_, x)| x as f64)).sum();
        assert!((word_mass - from_words).abs() < 1e-6);
        assert!(c.total_tweets() > 2900.0);
        assert!(c.vocab_size() > 100);
    }

    #[test]
    fn word_cells_sorted_and_bounded() {
        let c = counts();
        for cells in c.word_cells.values() {
            assert!(cells.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(cells.iter().all(|&(cell, v)| (cell as usize) < c.grid().len() && v > 0.0));
        }
    }

    #[test]
    fn unseen_word_is_empty() {
        assert!(counts().word_cells("qqqzzz").is_empty());
    }

    #[test]
    fn smoothing_preserves_mass_and_spreads() {
        let c = counts();
        let s = c.smoothed(1.0);
        // Total mass approximately preserved (edge truncation + sparsity cut).
        let before: f64 = (0..c.grid().len()).map(|i| c.cell_total(i)).sum();
        let after: f64 = (0..s.grid().len()).map(|i| s.cell_total(i)).sum();
        assert!((before - after).abs() / before < 0.05, "{before} vs {after}");
        // A word's support grows.
        let word =
            c.word_cells.iter().max_by_key(|(_, v)| v.len()).map(|(w, _)| w.clone()).unwrap();
        assert!(s.word_cells(&word).len() > c.word_cells(&word).len());
    }

    #[test]
    fn empty_training_set_is_harmless() {
        let g = Grid::new(BBox::new(0.0, 1.0, 0.0, 1.0), 5, 5);
        let c = GridCounts::fit(&[], g);
        assert_eq!(c.vocab_size(), 0);
        assert_eq!(c.total_tweets(), 0.0);
    }
}
