//! UnicodeCNN (Izbicki et al.): a character-level convolutional network
//! that "generates features directly from the Unicode characters in the
//! input text" and predicts coordinates through a mixture of von
//! Mises–Fisher distributions. Following the paper's experiments, 100 MvMF
//! components are laid out uniformly over the region with fixed means; the
//! network learns the mixture weights.
//!
//! Architecture: char embedding → 1-D convolution (im2col + matmul) → ReLU
//! → global max pooling → dense → logits over the fixed components. The
//! loss is the fused `mixture_const_nll` (the per-tweet component
//! log-densities at the true location are constants).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use edge_data::Tweet;
use edge_geo::{BBox, MvMfMixture, Point};
use edge_tensor::init::xavier_uniform;
use edge_tensor::tape::{softmax_in_place, ParamId, ParamStore, Tape};
use edge_tensor::{Adam, Matrix, Optimizer};

use edge_core::Geolocator;
#[cfg(test)]
use edge_core::PointEval;

/// UnicodeCNN hyper-parameters.
#[derive(Debug, Clone)]
pub struct UnicodeCnnConfig {
    /// Fixed input length in characters (truncate/pad).
    pub seq_len: usize,
    /// Character embedding dimension.
    pub char_dim: usize,
    /// Convolution kernel width.
    pub kernel: usize,
    /// Convolution output channels.
    pub channels: usize,
    /// Number of MvMF components (the paper uses 100).
    pub n_components: usize,
    /// vMF concentration; calibrated so a component's angular spread is on
    /// the order of the component spacing.
    pub kappa: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for UnicodeCnnConfig {
    fn default() -> Self {
        Self {
            seq_len: 72,
            char_dim: 16,
            kernel: 5,
            channels: 32,
            n_components: 100,
            kappa: 2.0e7, // ~1.4 km angular σ on the Earth's sphere
            epochs: 6,
            batch_size: 128,
            lr: 2e-3,
            seed: 42,
        }
    }
}

/// Character vocabulary: printable ASCII (95 symbols) + one bucket for
/// everything else + one pad symbol.
const ASCII_START: u8 = 0x20;
const ASCII_END: u8 = 0x7e;
const N_ASCII: usize = (ASCII_END - ASCII_START + 1) as usize;
const OTHER_ID: usize = N_ASCII;
const PAD_ID: usize = N_ASCII + 1;
const CHAR_VOCAB: usize = N_ASCII + 2;

fn char_ids(text: &str, seq_len: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = text
        .chars()
        .take(seq_len)
        .map(|c| {
            let b = c as u32;
            if (ASCII_START as u32..=ASCII_END as u32).contains(&b) {
                (b - ASCII_START as u32) as usize
            } else {
                OTHER_ID
            }
        })
        .collect();
    ids.resize(seq_len, PAD_ID);
    ids
}

/// The trained UnicodeCNN model.
pub struct UnicodeCnn {
    config: UnicodeCnnConfig,
    mixture: MvMfMixture,
    params: ParamStore,
    embed: ParamId,
    conv_w: ParamId,
    conv_b: ParamId,
    dense_w: ParamId,
    dense_b: ParamId,
}

impl UnicodeCnn {
    /// Trains on the given split over the study region `bbox`.
    pub fn fit(train: &[Tweet], bbox: &BBox, config: UnicodeCnnConfig) -> Self {
        assert!(config.seq_len > config.kernel, "sequence must exceed the kernel");
        let mixture = MvMfMixture::uniform_layout(bbox, config.n_components, config.kappa);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let embed = params.add("char_embed", xavier_uniform(CHAR_VOCAB, config.char_dim, &mut rng));
        let conv_w = params.add(
            "conv_w",
            xavier_uniform(config.kernel * config.char_dim, config.channels, &mut rng),
        );
        let conv_b = params.add("conv_b", Matrix::zeros(1, config.channels));
        let dense_w =
            params.add("dense_w", xavier_uniform(config.channels, config.n_components, &mut rng));
        let dense_b = params.add("dense_b", Matrix::zeros(1, config.n_components));

        let mut model = Self { config, mixture, params, embed, conv_w, conv_b, dense_w, dense_b };

        // Precompute per-tweet component log-densities (constants) and ids.
        let log_comp_rows: Vec<Vec<f32>> = train
            .iter()
            .map(|t| {
                (0..model.mixture.len())
                    .map(|k| {
                        let c = edge_geo::VonMisesFisher::new(
                            model.mixture.centers()[k],
                            model.config.kappa,
                        );
                        c.log_pdf(&t.location) as f32
                    })
                    .collect()
            })
            .collect();
        let id_rows: Vec<Vec<usize>> =
            train.iter().map(|t| char_ids(&t.text, model.config.seq_len)).collect();

        let mut optimizer = Adam::new(model.config.lr, 0.9, 0.999, 1e-8, 0.0);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..model.config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(model.config.batch_size) {
                let mut tape = Tape::new();
                let embed_node = tape.param(model.embed, &model.params);
                let conv_w_node = tape.param(model.conv_w, &model.params);
                let conv_b_node = tape.param(model.conv_b, &model.params);
                let mut pooled_rows = Vec::with_capacity(batch.len());
                let mut log_comp = Matrix::zeros(batch.len(), model.mixture.len());
                for (row, &i) in batch.iter().enumerate() {
                    let seq = tape.gather_rows(embed_node, &id_rows[i]);
                    let unfolded = tape.im2col(seq, model.config.kernel);
                    let conv = tape.matmul(unfolded, conv_w_node);
                    let biased = tape.add_row_broadcast(conv, conv_b_node);
                    let act = tape.relu(biased);
                    pooled_rows.push(tape.max_pool_rows(act));
                    log_comp.row_mut(row).copy_from_slice(&log_comp_rows[i]);
                }
                let pooled = tape.concat_rows(&pooled_rows);
                let dw = tape.param(model.dense_w, &model.params);
                let db = tape.param(model.dense_b, &model.params);
                let lin = tape.matmul(pooled, dw);
                let logits = tape.add_row_broadcast(lin, db);
                let nll = tape.mixture_const_nll(logits, &log_comp);
                let loss = tape.scale(nll, 1.0 / batch.len() as f32);
                let grads = tape.backward(loss);
                // Drop the tape's shared parameter leaves before stepping so
                // the copy-on-write update happens in place.
                drop(tape);
                optimizer.step(&mut model.params, &grads);
            }
        }
        model
    }

    /// The learned component weights for a text.
    pub fn component_weights(&self, text: &str) -> Vec<f32> {
        let ids = char_ids(text, self.config.seq_len);
        let seq = self.params.get(self.embed).gather_rows(&ids);
        // im2col + matmul, inference side.
        let k = self.config.kernel;
        let c = self.config.char_dim;
        let out_rows = self.config.seq_len - k + 1;
        let mut unfolded = Matrix::zeros(out_rows, k * c);
        for r in 0..out_rows {
            for kk in 0..k {
                unfolded.row_mut(r)[kk * c..(kk + 1) * c].copy_from_slice(seq.row(r + kk));
            }
        }
        let conv = unfolded
            .matmul(self.params.get(self.conv_w))
            .add_row_broadcast(self.params.get(self.conv_b))
            .map(|x| x.max(0.0));
        // Global max pool.
        let mut pooled = Matrix::zeros(1, self.config.channels);
        for ch in 0..self.config.channels {
            let mut best = f32::NEG_INFINITY;
            for r in 0..conv.rows() {
                best = best.max(conv.get(r, ch));
            }
            pooled.set(0, ch, best);
        }
        let logits = pooled
            .matmul(self.params.get(self.dense_w))
            .add_row_broadcast(self.params.get(self.dense_b));
        let mut weights = logits.row(0).to_vec();
        softmax_in_place(&mut weights);
        weights
    }

    /// The full predictive MvMF mixture for a text.
    pub fn predict_mixture(&self, text: &str) -> MvMfMixture {
        let mut mix = self.mixture.clone();
        mix.set_weights(self.component_weights(text).iter().map(|&w| w as f64).collect());
        mix
    }
}

impl Geolocator for UnicodeCnn {
    fn name(&self) -> &str {
        "UnicodeCNN"
    }

    fn predict_point(&self, text: &str) -> Option<Point> {
        Some(self.predict_mixture(text).mode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};

    fn small_config() -> UnicodeCnnConfig {
        UnicodeCnnConfig {
            n_components: 36,
            epochs: 3,
            seq_len: 48,
            channels: 16,
            char_dim: 12,
            ..Default::default()
        }
    }

    #[test]
    fn char_ids_encode_and_pad() {
        let ids = char_ids("Hi!", 6);
        assert_eq!(ids.len(), 6);
        assert_eq!(ids[0], ('H' as usize) - 0x20);
        assert_eq!(ids[3], PAD_ID);
        // Non-ASCII buckets.
        assert_eq!(char_ids("é", 2)[0], OTHER_ID);
    }

    #[test]
    fn char_ids_truncate() {
        assert_eq!(char_ids("abcdefgh", 4).len(), 4);
    }

    #[test]
    fn trains_and_predicts_in_region() {
        let d = nyma(PresetSize::Smoke, 17);
        let (train, test) = d.paper_split();
        let model = UnicodeCnn::fit(&train[..1200], &d.bbox, small_config());
        for t in test.iter().take(30) {
            let p = model.predict_point(&t.text).unwrap();
            assert!(d.bbox.contains(&p), "{p:?}");
        }
    }

    #[test]
    fn weights_form_distribution() {
        let d = nyma(PresetSize::Smoke, 18);
        let (train, _) = d.paper_split();
        let model = UnicodeCnn::fit(&train[..600], &d.bbox, small_config());
        let w = model.component_weights("majestic theatre tonight");
        assert_eq!(w.len(), 36);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn full_coverage() {
        let d = nyma(PresetSize::Smoke, 19);
        let (train, test) = d.paper_split();
        let model = UnicodeCnn::fit(&train[..600], &d.bbox, small_config());
        let PointEval { coverage, .. } = model.evaluate_points(&test[..100]);
        assert_eq!(coverage, 1.0, "UnicodeCNN never abstains");
    }
}
