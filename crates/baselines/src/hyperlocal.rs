//! Hyper-local (Flatow et al.): "first identifies the geo-specific n-grams
//! by modeling the location distributions of n-grams. The discovered
//! n-grams are then used for geotagging tweets according to the centers of
//! the Gaussian models of the n-grams they contain."
//!
//! An n-gram is *geo-specific* when it occurs often enough and its fitted
//! isotropic Gaussian is tight (spatial σ below a km threshold). Tweets
//! containing no geo-specific n-gram are **not predicted** — the paper
//! reports Hyper-local's coverage (~81–84%) alongside its scores.

use std::collections::HashMap;

use edge_data::Tweet;
use edge_geo::Point;
use edge_text::ngrams;

use crate::grid_model::model_words;
use edge_core::Geolocator;
#[cfg(test)]
use edge_core::PointEval;

/// A geo-specific n-gram's spatial model.
#[derive(Debug, Clone, Copy)]
struct NgramModel {
    center: Point,
    sigma_km: f64,
}

/// Hyper-local fitting parameters.
#[derive(Debug, Clone, Copy)]
pub struct HyperLocalParams {
    /// Maximum n-gram length.
    pub max_n: usize,
    /// Minimum occurrences for an n-gram to be considered.
    pub min_count: usize,
    /// Geo-specificity threshold: keep n-grams with σ below this (km).
    pub max_sigma_km: f64,
}

impl Default for HyperLocalParams {
    fn default() -> Self {
        Self { max_n: 3, min_count: 3, max_sigma_km: 8.0 }
    }
}

/// The trained Hyper-local model.
pub struct HyperLocal {
    models: HashMap<String, NgramModel>,
    params: HyperLocalParams,
}

impl HyperLocal {
    /// Fits the geo-specific n-gram inventory.
    pub fn fit(train: &[Tweet], params: HyperLocalParams) -> Self {
        let mut occurrences: HashMap<String, Vec<Point>> = HashMap::new();
        for t in train {
            let words = model_words(&t.text);
            let mut grams = ngrams(&words, params.max_n);
            grams.sort();
            grams.dedup(); // one contribution per tweet
            for g in grams {
                occurrences.entry(g).or_default().push(t.location);
            }
        }
        let models = occurrences
            .into_iter()
            .filter(|(_, pts)| pts.len() >= params.min_count)
            .filter_map(|(gram, pts)| {
                let center = edge_geo::point::centroid(&pts)?;
                let var_km = pts
                    .iter()
                    .map(|p| {
                        let d = p.haversine_km(&center);
                        d * d
                    })
                    .sum::<f64>()
                    / pts.len() as f64;
                let sigma_km = var_km.sqrt();
                (sigma_km <= params.max_sigma_km).then_some((gram, NgramModel { center, sigma_km }))
            })
            .collect();
        Self { models, params }
    }

    /// Number of geo-specific n-grams discovered.
    pub fn n_geo_specific(&self) -> usize {
        self.models.len()
    }

    /// Whether an n-gram is geo-specific.
    pub fn is_geo_specific(&self, gram: &str) -> bool {
        self.models.contains_key(gram)
    }
}

impl Geolocator for HyperLocal {
    fn name(&self) -> &str {
        "Hyper-local"
    }

    /// Weighted (1/σ²) average of the contained geo-specific n-grams'
    /// Gaussian centres; `None` when the tweet has none (the abstention the
    /// paper's coverage column records).
    fn predict_point(&self, text: &str) -> Option<Point> {
        let words = model_words(text);
        let mut grams = ngrams(&words, self.params.max_n);
        grams.sort();
        grams.dedup();
        let mut lat = 0.0;
        let mut lon = 0.0;
        let mut weight_total = 0.0;
        for g in &grams {
            if let Some(m) = self.models.get(g) {
                let w = 1.0 / (m.sigma_km * m.sigma_km).max(1e-6);
                lat += w * m.center.lat;
                lon += w * m.center.lon;
                weight_total += w;
            }
        }
        (weight_total > 0.0).then(|| Point::new(lat / weight_total, lon / weight_total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};
    use edge_geo::DistanceReport;

    fn fitted() -> (HyperLocal, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 13);
        let (train, _) = d.paper_split();
        (HyperLocal::fit(train, HyperLocalParams::default()), d)
    }

    #[test]
    fn discovers_geo_specific_ngrams() {
        let (m, _) = fitted();
        assert!(m.n_geo_specific() > 30, "found {}", m.n_geo_specific());
    }

    #[test]
    fn coverage_is_partial() {
        let (m, d) = fitted();
        let (_, test) = d.paper_split();
        let PointEval { coverage, .. } = m.evaluate_points(test);
        assert!(
            coverage > 0.25 && coverage < 0.98,
            "Hyper-local coverage should be partial: {coverage}"
        );
    }

    #[test]
    fn abstains_without_geo_specific_grams() {
        let (m, _) = fitted();
        assert!(m.predict_point("zzz qqq nothing here").is_none());
        assert!(m.predict_point("").is_none());
    }

    #[test]
    fn covered_predictions_beat_center_baseline() {
        let (m, d) = fitted();
        let (_, test) = d.paper_split();
        let PointEval { pairs, .. } = m.evaluate_points(test);
        assert!(pairs.len() > 100);
        let r = DistanceReport::from_pairs(&pairs).unwrap();
        let center: Vec<(Point, Point)> =
            pairs.iter().map(|(_, t)| (d.bbox.center(), *t)).collect();
        let c = DistanceReport::from_pairs(&center).unwrap();
        assert!(r.median_km < c.median_km, "Hyper-local {} vs center {}", r.median_km, c.median_km);
    }

    #[test]
    fn geo_specific_grams_are_tight() {
        let (m, _) = fitted();
        for nm in m.models.values() {
            assert!(nm.sigma_km <= HyperLocalParams::default().max_sigma_km);
        }
    }

    #[test]
    fn multiword_entity_becomes_geo_specific_bigram() {
        let (m, _) = fitted();
        // The signature entity "Majestic Theatre" is tightly anchored and
        // frequent; its bigram should be discovered.
        assert!(
            m.is_geo_specific("majestic theatre") || m.is_geo_specific("majestic"),
            "signature n-gram not discovered"
        );
    }
}
