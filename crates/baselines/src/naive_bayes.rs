//! The NaiveBayes grid classifier of Hulden et al.: "treats the
//! geolocation as a classification problem and uses a Naive Bayes
//! classifier to assign a document to a geographical grid cell by counting
//! the number of words from each cell."
//!
//! Score of cell `c` for tweet `w₁..w_n`:
//! `log P(c) + Σᵢ log P(wᵢ|c)` with Laplace smoothing
//! `P(w|c) = (count(w,c) + 1) / (total(c) + |V|)`.
//!
//! The same struct serves the `NaiveBayes_kde2d` variant: construct it from
//! a [`GridCounts::smoothed`] table.

use edge_data::Tweet;
use edge_geo::{Grid, Partition, Point, Quadtree};

use crate::grid_model::{model_words, GridCounts};
use edge_core::Geolocator;
#[cfg(test)]
use edge_core::PointEval;

/// The trained NaiveBayes grid model, generic over the spatial partition
/// (uniform [`Grid`] by default; [`Quadtree`] for the Ajao-et-al.
/// non-uniform extension).
pub struct NaiveBayes<P: Partition = Grid> {
    counts: GridCounts<P>,
    name: String,
}

impl NaiveBayes<Grid> {
    /// Fits the count-based variant on the paper's 100×100 grid (or any
    /// provided grid).
    pub fn fit(train: &[Tweet], grid: Grid) -> Self {
        Self { counts: GridCounts::fit(train, grid), name: "NaiveBayes".to_string() }
    }

    /// The `kde2d` variant: kernel-smoothed counts.
    pub fn fit_kde2d(train: &[Tweet], grid: Grid, bandwidth_cells: f64) -> Self {
        let counts = GridCounts::fit(train, grid).smoothed(bandwidth_cells);
        Self { counts, name: "NaiveBayes_kde2d".to_string() }
    }

    /// Wraps pre-computed counts (used by the harness to share one fit
    /// between NB and KL).
    pub fn from_counts(counts: GridCounts, name: &str) -> Self {
        Self { counts, name: name.to_string() }
    }
}

impl NaiveBayes<Quadtree> {
    /// The quadtree extension: a data-adaptive partition built from the
    /// training locations replaces the uniform grid.
    pub fn fit_quadtree(train: &[Tweet], tree: Quadtree) -> Self {
        Self { counts: GridCounts::fit(train, tree), name: "NaiveBayes_quadtree".to_string() }
    }
}

impl<P: Partition> NaiveBayes<P> {
    /// Per-cell log-posterior scores for a text.
    pub fn cell_scores(&self, text: &str) -> Vec<f64> {
        let words = model_words(text);
        let n_cells = self.counts.grid().n_cells();
        let v = self.counts.vocab_size() as f64;
        let total_tweets = self.counts.total_tweets().max(1.0);
        let mut scores: Vec<f64> = (0..n_cells)
            .map(|c| {
                // log P(c), with a floor so empty cells stay comparable.
                ((self.counts.cell_tweet_count(c) + 0.5) / (total_tweets + 0.5 * n_cells as f64))
                    .ln()
                    // The per-word denominators are independent of the word.
                    - words.len() as f64 * (self.counts.cell_total(c) + v).ln()
            })
            .collect();
        for w in &words {
            for &(c, count) in self.counts.word_cells(w) {
                // Sparse correction: log(count+1) − log(1) over the smoothed base.
                scores[c as usize] += ((count as f64) + 1.0).ln();
            }
        }
        scores
    }

    /// The partition the model classifies over.
    pub fn grid(&self) -> &P {
        self.counts.grid()
    }
}

impl<P: Partition> Geolocator for NaiveBayes<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_point(&self, text: &str) -> Option<Point> {
        let scores = self.cell_scores(text);
        let best = scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c)?;
        Some(self.counts.grid().cell_center(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};
    use edge_geo::DistanceReport;

    fn fitted() -> (NaiveBayes, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 3);
        let (train, _) = d.paper_split();
        (NaiveBayes::fit(train, Grid::new(d.bbox, 50, 50)), d)
    }

    #[test]
    fn predicts_inside_region() {
        let (nb, d) = fitted();
        let p = nb.predict_point("majestic theatre tonight").unwrap();
        assert!(d.bbox.contains(&p));
    }

    #[test]
    fn scores_cover_grid() {
        let (nb, _) = fitted();
        let scores = nb.cell_scores("anything at all");
        assert_eq!(scores.len(), nb.grid().len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn geo_word_shifts_prediction_toward_its_cluster() {
        // A word seen only at one location should pull the argmax there.
        let (nb, d) = fitted();
        let (train, _) = d.paper_split();
        // Find a training tweet with a distinctive multi-use word.
        let target = train
            .iter()
            .find(|t| !t.gold_entities.is_empty() && t.gold_entities[0].contains('_'))
            .expect("entity tweet");
        let word = target.gold_entities[0].split('_').next().unwrap().to_string();
        let p = nb.predict_point(&word).unwrap();
        // Prediction lands within the region; a stronger statement (distance
        // to the entity) is covered by the integration tests.
        assert!(d.bbox.contains(&p));
    }

    #[test]
    fn beats_center_baseline_on_test_split() {
        let (nb, d) = fitted();
        let (_, test) = d.paper_split();
        let PointEval { pairs, coverage: cov, .. } = nb.evaluate_points(test);
        assert_eq!(cov, 1.0, "NB covers everything");
        let r = DistanceReport::from_pairs(&pairs).unwrap();
        let center: Vec<(Point, Point)> =
            test.iter().map(|t| (d.bbox.center(), t.location)).collect();
        let c = DistanceReport::from_pairs(&center).unwrap();
        assert!(r.mean_km < c.mean_km * 1.05, "NB {} vs center {}", r.mean_km, c.mean_km);
    }

    #[test]
    fn kde2d_variant_smooths_scores() {
        let d = nyma(PresetSize::Smoke, 4);
        let (train, test) = d.paper_split();
        let raw = NaiveBayes::fit(train, Grid::new(d.bbox, 40, 40));
        let smooth = NaiveBayes::fit_kde2d(train, Grid::new(d.bbox, 40, 40), 1.0);
        assert_eq!(smooth.name(), "NaiveBayes_kde2d");
        let PointEval { pairs: pairs_raw, .. } = raw.evaluate_points(&test[..300.min(test.len())]);
        let PointEval { pairs: pairs_smooth, .. } =
            smooth.evaluate_points(&test[..300.min(test.len())]);
        let r_raw = DistanceReport::from_pairs(&pairs_raw).unwrap();
        let r_smooth = DistanceReport::from_pairs(&pairs_smooth).unwrap();
        // Both produce sane results; the smoothed variant should not be
        // drastically worse (in the paper it is better at @5km).
        assert!(r_smooth.mean_km < r_raw.mean_km * 1.5);
    }
}

#[cfg(test)]
mod quadtree_tests {
    use super::*;
    use edge_data::{nyma, PresetSize};
    use edge_geo::DistanceReport;

    #[test]
    fn quadtree_variant_is_competitive_with_uniform_grid() {
        let d = nyma(PresetSize::Smoke, 23);
        let (train, test) = d.paper_split();
        let locations: Vec<edge_geo::Point> = train.iter().map(|t| t.location).collect();
        let tree = Quadtree::build(d.bbox, &locations, 30, 8);
        assert!(tree.len() > 20, "cells: {}", tree.len());
        let quad = NaiveBayes::fit_quadtree(train, tree);
        assert_eq!(quad.name(), "NaiveBayes_quadtree");
        let grid = NaiveBayes::fit(train, Grid::new(d.bbox, 50, 50));
        let PointEval { pairs: q_pairs, coverage: q_cov, .. } =
            quad.evaluate_points(&test[..500.min(test.len())]);
        let PointEval { pairs: g_pairs, .. } = grid.evaluate_points(&test[..500.min(test.len())]);
        assert_eq!(q_cov, 1.0);
        let q = DistanceReport::from_pairs(&q_pairs).unwrap();
        let g = DistanceReport::from_pairs(&g_pairs).unwrap();
        // Data-adaptive cells should be in the same league as the uniform
        // grid (the Ajao-et-al. claim is improved efficiency at comparable
        // accuracy).
        assert!(q.median_km < g.median_km * 1.6, "quad {} vs grid {}", q.median_km, g.median_km);
    }
}
