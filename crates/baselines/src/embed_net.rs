//! A neural bag-of-embeddings baseline in the style of Miura et al.
//! (cited in the paper's related work): "a simple neural network-based
//! model for geolocation prediction where words are fed into the model by
//! averaging their word embeddings."
//!
//! Trainable word embeddings are averaged into a tweet vector, a linear
//! layer scores every grid cell, and training minimizes the cross-entropy
//! of the true cell — grid classification like Hulden et al., but with
//! learned representations. Implemented on the same autodiff tape as EDGE
//! (the cross-entropy is the fused mixture NLL with a one-hot component
//! vector).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use edge_data::Tweet;
use edge_geo::{Grid, Partition, Point};
use edge_tensor::init::xavier_uniform;
use edge_tensor::tape::{ParamId, ParamStore, Tape};
use edge_tensor::{Adam, Matrix, Optimizer};
use edge_text::Vocab;

use crate::grid_model::model_words;
use edge_core::Geolocator;
#[cfg(test)]
use edge_core::PointEval;

/// Hyper-parameters of the embedding-averaging baseline.
#[derive(Debug, Clone)]
pub struct EmbedNetConfig {
    /// Word-embedding dimension.
    pub dim: usize,
    /// Vocabulary cap (most frequent words).
    pub max_vocab: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for EmbedNetConfig {
    fn default() -> Self {
        Self { dim: 64, max_vocab: 4000, epochs: 15, batch_size: 128, lr: 5e-3, seed: 42 }
    }
}

/// The trained model.
pub struct EmbedNet {
    vocab: Vocab,
    grid: Grid,
    params: ParamStore,
    embed: ParamId,
    w: ParamId,
    b: ParamId,
    config: EmbedNetConfig,
}

impl EmbedNet {
    /// Trains on the given split, classifying over `grid`.
    pub fn fit(train: &[Tweet], grid: Grid, config: EmbedNetConfig) -> Self {
        assert!(config.dim > 0 && config.epochs > 0 && config.max_vocab >= 8);
        // Vocabulary: most frequent content words (+ id 0 reserved as the
        // padding/unknown row so empty tweets still forward).
        let mut full = Vocab::new();
        full.add("<pad>");
        let word_lists: Vec<Vec<String>> = train.iter().map(|t| model_words(&t.text)).collect();
        for words in &word_lists {
            for w in words {
                full.add(w);
            }
        }
        let mut by_count: Vec<usize> = (1..full.len()).collect();
        by_count.sort_by_key(|&i| std::cmp::Reverse(full.count(i)));
        by_count.truncate(config.max_vocab);
        let mut vocab = Vocab::new();
        vocab.add("<pad>");
        for &i in &by_count {
            vocab.add(full.token(i));
        }

        let n_cells = grid.n_cells();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let embed = params.add("words", xavier_uniform(vocab.len(), config.dim, &mut rng));
        let w = params.add("w", xavier_uniform(config.dim, n_cells, &mut rng).scale(0.3));
        let b = params.add("b", Matrix::zeros(1, n_cells));

        let mut model = Self { vocab, grid, params, embed, w, b, config };

        // Pre-encode ids and targets.
        let encoded: Vec<Vec<usize>> = word_lists.iter().map(|ws| model.encode(ws)).collect();
        let targets: Vec<usize> =
            train.iter().map(|t| model.grid.cell_index_of(&t.location)).collect();

        let mut optimizer = Adam::new(model.config.lr, 0.9, 0.999, 1e-8, 0.0);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..model.config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(model.config.batch_size) {
                let mut tape = Tape::new();
                let table = tape.param(model.embed, &model.params);
                let mut rows = Vec::with_capacity(batch.len());
                // One-hot log-density rows: 0 at the target cell, -1e9 away,
                // turning the fused mixture NLL into plain cross-entropy.
                let mut log_comp = Matrix::full(batch.len(), n_cells, -1e9);
                for (r, &i) in batch.iter().enumerate() {
                    let ids = &encoded[i];
                    let gathered = tape.gather_rows(table, ids);
                    let summed = tape.sum_rows(gathered);
                    rows.push(tape.scale(summed, 1.0 / ids.len() as f32));
                    log_comp.set(r, targets[i], 0.0);
                }
                let z = tape.concat_rows(&rows);
                let wn = tape.param(model.w, &model.params);
                let bn = tape.param(model.b, &model.params);
                let lin = tape.matmul(z, wn);
                let logits = tape.add_row_broadcast(lin, bn);
                let nll = tape.mixture_const_nll(logits, &log_comp);
                let loss = tape.scale(nll, 1.0 / batch.len() as f32);
                let grads = tape.backward(loss);
                // Drop the tape's shared parameter leaves before stepping so
                // the copy-on-write update happens in place.
                drop(tape);
                optimizer.step(&mut model.params, &grads);
            }
        }
        model
    }

    /// Word-id encoding with the pad/unknown fallback (never empty).
    fn encode(&self, words: &[String]) -> Vec<usize> {
        let mut ids: Vec<usize> = words.iter().filter_map(|w| self.vocab.get(w)).collect();
        if ids.is_empty() {
            ids.push(0);
        }
        ids
    }

    /// Vocabulary size in use.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Per-cell logits for a text.
    pub fn cell_logits(&self, text: &str) -> Vec<f32> {
        let ids = self.encode(&model_words(text));
        let table = self.params.get(self.embed);
        let gathered = table.gather_rows(&ids);
        let mean = gathered.sum_rows().scale(1.0 / ids.len() as f32);
        let logits =
            mean.matmul(self.params.get(self.w)).add_row_broadcast(self.params.get(self.b));
        logits.row(0).to_vec()
    }
}

impl Geolocator for EmbedNet {
    fn name(&self) -> &str {
        "EmbedNet"
    }

    fn predict_point(&self, text: &str) -> Option<Point> {
        let logits = self.cell_logits(text);
        let best = logits.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c)?;
        Some(self.grid.cell_center(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};
    use edge_geo::DistanceReport;

    fn small_config() -> EmbedNetConfig {
        EmbedNetConfig { dim: 32, max_vocab: 1500, ..Default::default() }
    }

    #[test]
    fn trains_and_beats_center_baseline() {
        let d = nyma(PresetSize::Smoke, 61);
        let (train, test) = d.paper_split();
        let model = EmbedNet::fit(train, Grid::new(d.bbox, 25, 25), small_config());
        assert!(model.vocab_len() > 100);
        let PointEval { pairs, coverage: cov, .. } = model.evaluate_points(test);
        assert_eq!(cov, 1.0, "EmbedNet never abstains");
        let r = DistanceReport::from_pairs(&pairs).unwrap();
        let center: Vec<(Point, Point)> =
            test.iter().map(|t| (d.bbox.center(), t.location)).collect();
        let c = DistanceReport::from_pairs(&center).unwrap();
        assert!(r.median_km < c.median_km, "EmbedNet {} vs center {}", r.median_km, c.median_km);
    }

    #[test]
    fn handles_unknown_and_empty_text() {
        let d = nyma(PresetSize::Smoke, 62);
        let (train, _) = d.paper_split();
        let mut cfg = small_config();
        cfg.epochs = 1;
        let model = EmbedNet::fit(&train[..800], Grid::new(d.bbox, 20, 20), cfg);
        for text in ["", "zzz qqq unknown", "!!!"] {
            let p = model.predict_point(text).expect("always predicts");
            assert!(d.bbox.contains(&p));
        }
    }

    #[test]
    fn logits_cover_grid_and_are_finite() {
        let d = nyma(PresetSize::Smoke, 63);
        let (train, _) = d.paper_split();
        let mut cfg = small_config();
        cfg.epochs = 1;
        let model = EmbedNet::fit(&train[..500], Grid::new(d.bbox, 15, 15), cfg);
        let logits = model.cell_logits("majestic theatre");
        assert_eq!(logits.len(), 225);
        assert!(logits.iter().all(|x| x.is_finite()));
    }
}
