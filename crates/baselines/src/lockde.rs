//! LocKDE (Ozdikis et al.): per-term kernel density estimation over a
//! uniform grid, "where the bandwidth of the kernel function for each term
//! is determined separately according to the location indicativeness of the
//! term."
//!
//! Training fits a [`TermKde`] per sufficiently frequent term (adaptive
//! bandwidth: focused terms narrow, diffuse terms wide) and precomputes each
//! term's density surface over the grid. Prediction sums the surfaces of a
//! tweet's terms, weighted by indicativeness (1/bandwidth), and returns the
//! argmax cell centre.

use std::collections::HashMap;

use rayon::prelude::*;

use edge_data::Tweet;
use edge_geo::{Grid, Point, TermKde};

use crate::grid_model::model_words;
use edge_core::Geolocator;
#[cfg(test)]
use edge_core::PointEval;

/// The trained LocKDE model.
pub struct LocKde {
    grid: Grid,
    /// term → (density surface over the grid, indicativeness weight).
    surfaces: HashMap<String, (Vec<f32>, f64)>,
}

/// LocKDE fitting parameters.
#[derive(Debug, Clone, Copy)]
pub struct LocKdeParams {
    /// Minimum occurrences for a term to get a KDE.
    pub min_count: usize,
    /// Bandwidth bounds in km.
    pub min_bw_km: f64,
    /// Upper bandwidth bound in km.
    pub max_bw_km: f64,
    /// Max training points per term (dense terms are stride-subsampled).
    pub max_points: usize,
}

impl Default for LocKdeParams {
    fn default() -> Self {
        Self { min_count: 3, min_bw_km: 0.5, max_bw_km: 8.0, max_points: 400 }
    }
}

impl LocKde {
    /// Fits LocKDE. `region_scale_km` calibrates indicativeness (use
    /// `MetroArea::scale_km()` or the bbox diagonal / 2).
    pub fn fit(train: &[Tweet], grid: Grid, region_scale_km: f64, params: LocKdeParams) -> Self {
        let mut term_points: HashMap<String, Vec<Point>> = HashMap::new();
        for t in train {
            for w in model_words(&t.text) {
                term_points.entry(w).or_default().push(t.location);
            }
        }
        let surfaces: HashMap<String, (Vec<f32>, f64)> = term_points
            .into_iter()
            .filter(|(_, pts)| pts.len() >= params.min_count)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(term, mut pts)| {
                if pts.len() > params.max_points {
                    let stride = pts.len() / params.max_points;
                    pts = pts.into_iter().step_by(stride.max(1)).collect();
                }
                let kde = TermKde::fit(pts, params.min_bw_km, params.max_bw_km, region_scale_km);
                let weight = 1.0 / kde.bandwidth_km();
                let surface: Vec<f32> =
                    kde.density_grid(&grid).into_iter().map(|d| d as f32).collect();
                (term, (surface, weight))
            })
            .collect();
        Self { grid, surfaces }
    }

    /// Number of terms with a fitted KDE.
    pub fn n_terms(&self) -> usize {
        self.surfaces.len()
    }

    /// The weighted density surface of a tweet (empty vec when no known
    /// term).
    pub fn tweet_surface(&self, text: &str) -> Option<Vec<f64>> {
        let mut acc: Option<Vec<f64>> = None;
        for w in model_words(text) {
            if let Some((surface, weight)) = self.surfaces.get(&w) {
                let acc = acc.get_or_insert_with(|| vec![0.0; self.grid.len()]);
                for (a, &d) in acc.iter_mut().zip(surface) {
                    *a += weight * d as f64;
                }
            }
        }
        acc
    }

    /// The grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
}

impl Geolocator for LocKde {
    fn name(&self) -> &str {
        "LocKDE"
    }

    fn predict_point(&self, text: &str) -> Option<Point> {
        let surface = self.tweet_surface(text)?;
        let best = surface.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c)?;
        Some(self.grid.center_of(self.grid.cell_at(best)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, MetroArea, PresetSize};
    use edge_geo::DistanceReport;

    fn fitted() -> (LocKde, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 9);
        let (train, _) = d.paper_split();
        let scale = MetroArea::new_york_like().scale_km();
        let model = LocKde::fit(train, Grid::new(d.bbox, 50, 50), scale, LocKdeParams::default());
        (model, d)
    }

    #[test]
    fn fits_many_terms() {
        let (m, _) = fitted();
        assert!(m.n_terms() > 100, "terms {}", m.n_terms());
    }

    #[test]
    fn unknown_terms_abstain_gracefully() {
        let (m, _) = fitted();
        // LocKDE with no known term has no surface; predict falls back to None.
        assert!(m.predict_point("zzzqqq xyzzy").is_none());
    }

    #[test]
    fn predictions_inside_region_and_beat_center() {
        let (m, d) = fitted();
        let (_, test) = d.paper_split();
        let PointEval { pairs, coverage: cov, .. } = m.evaluate_points(test);
        assert!(cov > 0.5, "coverage {cov}");
        for (p, _) in &pairs {
            assert!(d.bbox.contains(p));
        }
        let r = DistanceReport::from_pairs(&pairs).unwrap();
        let center: Vec<(Point, Point)> =
            pairs.iter().map(|(_, t)| (d.bbox.center(), *t)).collect();
        let c = DistanceReport::from_pairs(&center).unwrap();
        assert!(r.median_km < c.median_km, "LocKDE {} vs center {}", r.median_km, c.median_km);
    }

    #[test]
    fn focused_term_predicts_near_its_cluster() {
        let (m, d) = fitted();
        let (train, _) = d.paper_split();
        // Use a signature entity's first word; its tweets cluster tightly.
        let majestic_tweets: Vec<&edge_data::Tweet> = train
            .iter()
            .filter(|t| t.gold_entities.iter().any(|e| e == "majestic_theatre"))
            .collect();
        if majestic_tweets.len() >= 3 {
            let centroid = edge_geo::point::centroid(
                &majestic_tweets.iter().map(|t| t.location).collect::<Vec<_>>(),
            )
            .unwrap();
            let p = m.predict_point("majestic theatre").unwrap();
            assert!(
                p.haversine_km(&centroid) < 5.0,
                "prediction {:?} far from cluster {:?}",
                p,
                centroid
            );
        }
    }

    #[test]
    fn tweet_surface_is_additive() {
        let (m, _) = fitted();
        if let (Some(a), Some(b)) = (m.tweet_surface("majestic"), m.tweet_surface("theatre")) {
            let both = m.tweet_surface("majestic theatre").unwrap();
            for i in 0..both.len() {
                assert!((both[i] - a[i] - b[i]).abs() < 1e-9);
            }
        }
    }
}
