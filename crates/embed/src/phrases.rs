//! Phrase detection in the style of word2vec's phrase2vec preprocessing
//! (Mikolov et al.), which the paper's entity2vec is "inspired by": bigrams
//! whose components co-occur far more often than chance are merged into a
//! single `a_b` token, so multi-word entities are embedded "as a whole"
//! rather than as compositions of independent words.

use std::collections::HashMap;

/// A learned bigram-merging table.
#[derive(Debug, Clone)]
pub struct PhraseDetector {
    merges: HashMap<(String, String), String>,
}

impl PhraseDetector {
    /// Learns merges from a corpus of token lists.
    ///
    /// A bigram `(a, b)` is merged when
    /// `score = (count(ab) − min_count) · N / (count(a) · count(b))`
    /// exceeds `threshold` (the word2vec scoring rule; `N` is the corpus
    /// token count).
    pub fn learn(corpus: &[Vec<String>], min_count: u64, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        let mut unigram: HashMap<&str, u64> = HashMap::new();
        let mut bigram: HashMap<(&str, &str), u64> = HashMap::new();
        let mut total: u64 = 0;
        for sent in corpus {
            for w in sent {
                *unigram.entry(w).or_insert(0) += 1;
                total += 1;
            }
            for pair in sent.windows(2) {
                *bigram.entry((&pair[0], &pair[1])).or_insert(0) += 1;
            }
        }
        let mut merges = HashMap::new();
        for (&(a, b), &ab_count) in &bigram {
            if ab_count <= min_count {
                continue;
            }
            let score = (ab_count - min_count) as f64 * total as f64
                / (unigram[a] as f64 * unigram[b] as f64);
            if score > threshold {
                merges.insert((a.to_string(), b.to_string()), format!("{a}_{b}"));
            }
        }
        Self { merges }
    }

    /// Number of learned merges.
    pub fn len(&self) -> usize {
        self.merges.len()
    }

    /// True when nothing was learned.
    pub fn is_empty(&self) -> bool {
        self.merges.is_empty()
    }

    /// Whether the bigram `(a, b)` merges.
    pub fn is_phrase(&self, a: &str, b: &str) -> bool {
        self.merges.contains_key(&(a.to_string(), b.to_string()))
    }

    /// Rewrites a token list, greedily merging learned bigrams left to
    /// right. One pass merges bigrams; applying the detector twice builds
    /// up to 4-grams, as in the original tool.
    pub fn apply(&self, tokens: &[String]) -> Vec<String> {
        let mut out = Vec::with_capacity(tokens.len());
        let mut i = 0;
        while i < tokens.len() {
            if i + 1 < tokens.len() {
                if let Some(merged) = self.merges.get(&(tokens[i].clone(), tokens[i + 1].clone())) {
                    out.push(merged.clone());
                    i += 2;
                    continue;
                }
            }
            out.push(tokens[i].clone());
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn corpus() -> Vec<Vec<String>> {
        // "majestic theatre" always together; "the" is everywhere.
        let mut c = Vec::new();
        for _ in 0..20 {
            c.push(sent(&["the", "majestic", "theatre", "was", "packed"]));
            c.push(sent(&["saw", "phantom", "at", "the", "majestic", "theatre"]));
        }
        for _ in 0..30 {
            c.push(sent(&["the", "show", "was", "the", "best"]));
        }
        c
    }

    #[test]
    fn strong_collocation_is_merged() {
        let d = PhraseDetector::learn(&corpus(), 5, 5.0);
        assert!(d.is_phrase("majestic", "theatre"));
        assert!(!d.is_phrase("the", "majestic"), "common left word dilutes score");
        assert!(!d.is_phrase("was", "the"));
    }

    #[test]
    fn apply_rewrites_tokens() {
        let d = PhraseDetector::learn(&corpus(), 5, 5.0);
        let rewritten = d.apply(&sent(&["the", "majestic", "theatre", "tonight"]));
        assert_eq!(rewritten, sent(&["the", "majestic_theatre", "tonight"]));
    }

    #[test]
    fn apply_is_identity_without_merges() {
        let d = PhraseDetector::learn(&[], 5, 5.0);
        assert!(d.is_empty());
        let toks = sent(&["a", "b", "c"]);
        assert_eq!(d.apply(&toks), toks);
    }

    #[test]
    fn rare_bigrams_below_min_count_do_not_merge() {
        let mut c = corpus();
        c.push(sent(&["rare", "pair"]));
        let d = PhraseDetector::learn(&c, 5, 5.0);
        assert!(!d.is_phrase("rare", "pair"));
    }

    #[test]
    fn greedy_merge_consumes_both_tokens() {
        let d = PhraseDetector::learn(&corpus(), 5, 5.0);
        // "majestic theatre majestic theatre" -> two merged tokens.
        let toks = sent(&["majestic", "theatre", "majestic", "theatre"]);
        assert_eq!(d.apply(&toks), sent(&["majestic_theatre", "majestic_theatre"]));
    }
}
