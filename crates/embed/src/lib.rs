//! entity2vec substrate: skip-gram-with-negative-sampling embeddings and
//! phrase2vec-style phrase detection, implemented from scratch (the paper
//! uses gensim's word2vec, unavailable in Rust).
//!
//! The EDGE pipeline composes these as: NER phrase tokens → (optional)
//! bigram phrase merging → SGNS → per-entity semantic embeddings that seed
//! the GCN diffusion.

pub mod embedding;
pub mod phrases;
pub mod sampler;
pub mod sgns;

pub use embedding::{cosine, Embedding};
pub use phrases::PhraseDetector;
pub use sampler::{keep_probability, NegativeTable};
pub use sgns::{train_sgns, SgnsConfig};
