//! Sampling machinery for skip-gram training: the unigram^0.75 negative
//! table and frequency-based sub-sampling, both as in word2vec.

use rand::Rng;

/// A negative-sampling table drawing token ids proportional to
/// `count^0.75`, the word2vec smoothing that keeps frequent tokens from
/// dominating the negatives.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    /// Cumulative distribution over token ids.
    cdf: Vec<f64>,
}

impl NegativeTable {
    /// Builds the table from per-id counts. Panics when all counts are zero.
    pub fn new(counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "need at least one token");
        let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all counts are zero");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall at the end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Number of token ids.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: construction requires at least one token.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one id.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draws an id different from `exclude` (retries, falling back to a
    /// linear scan if the distribution is a point mass on `exclude`).
    pub fn sample_excluding<R: Rng + ?Sized>(&self, exclude: usize, rng: &mut R) -> usize {
        for _ in 0..32 {
            let s = self.sample(rng);
            if s != exclude {
                return s;
            }
        }
        // Distribution is (nearly) a point mass; return any other id.
        (0..self.len()).find(|&i| i != exclude).unwrap_or(exclude)
    }
}

/// Word2vec sub-sampling: the probability of *keeping* an occurrence of a
/// token with corpus frequency `freq` (count / total) at threshold `t`
/// (typically 1e-3..1e-5): `min(1, sqrt(t/f) + t/f)`.
pub fn keep_probability(freq: f64, t: f64) -> f64 {
    assert!(t > 0.0, "threshold must be positive");
    if freq <= 0.0 {
        return 1.0;
    }
    ((t / freq).sqrt() + t / freq).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_respects_smoothed_frequencies() {
        let counts = [1000u64, 10, 10, 10];
        let table = NegativeTable::new(&counts);
        let mut rng = StdRng::seed_from_u64(0);
        let mut hist = [0usize; 4];
        for _ in 0..100_000 {
            hist[table.sample(&mut rng)] += 1;
        }
        // id 0 should dominate but less than raw frequency (1000/1030 = 97%).
        let p0 = hist[0] as f64 / 100_000.0;
        let expected = 1000f64.powf(0.75) / (1000f64.powf(0.75) + 3.0 * 10f64.powf(0.75));
        assert!((p0 - expected).abs() < 0.01, "p0 {p0} vs {expected}");
        assert!(hist.iter().all(|&h| h > 0), "all ids must be sampled");
    }

    #[test]
    fn zero_count_ids_never_sampled() {
        let counts = [0u64, 100, 0, 100];
        let table = NegativeTable::new(&counts);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled {s}");
        }
    }

    #[test]
    fn sample_excluding_avoids_target() {
        let table = NegativeTable::new(&[100, 100]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_ne!(table.sample_excluding(0, &mut rng), 0);
        }
    }

    #[test]
    fn sample_excluding_point_mass_falls_back() {
        let table = NegativeTable::new(&[100, 0, 0]);
        let mut rng = StdRng::seed_from_u64(3);
        let s = table.sample_excluding(0, &mut rng);
        assert_ne!(s, 0);
    }

    #[test]
    #[should_panic(expected = "all counts are zero")]
    fn all_zero_counts_panic() {
        let _ = NegativeTable::new(&[0, 0]);
    }

    #[test]
    fn keep_probability_properties() {
        // Rare tokens are always kept; frequent ones are downsampled.
        assert_eq!(keep_probability(1e-7, 1e-4), 1.0);
        let frequent = keep_probability(0.05, 1e-4);
        assert!(frequent < 0.1, "frequent token kept at {frequent}");
        // Monotone decreasing in frequency.
        assert!(keep_probability(0.001, 1e-4) > keep_probability(0.01, 1e-4));
        assert_eq!(keep_probability(0.0, 1e-4), 1.0);
    }
}
