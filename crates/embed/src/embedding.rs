//! Embedding tables: dense per-id vectors with similarity queries.

use serde::{Deserialize, Serialize};

/// A table of `n` embedding vectors of dimension `dim` (flat row-major
/// storage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    n: usize,
    dim: usize,
    data: Vec<f32>,
}

impl Embedding {
    /// Builds from flat row-major data. Panics when the length disagrees.
    pub fn from_flat(n: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * dim, "flat data length mismatch");
        assert!(dim > 0, "dimension must be positive");
        Self { n, dim, data }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The vector for `id`.
    pub fn vector(&self, id: usize) -> &[f32] {
        assert!(id < self.n, "embedding id {id} out of range {}", self.n);
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// The full flat table (row-major), e.g. for building a `Matrix`.
    pub fn flat(&self) -> &[f32] {
        &self.data
    }

    /// Cosine similarity between two ids (0 when either vector is zero).
    pub fn cosine(&self, a: usize, b: usize) -> f32 {
        cosine(self.vector(a), self.vector(b))
    }

    /// The `k` nearest neighbors of `id` by cosine similarity, excluding
    /// `id` itself, best first.
    pub fn nearest(&self, id: usize, k: usize) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = (0..self.n)
            .filter(|&other| other != id)
            .map(|other| (other, self.cosine(id, other)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(k);
        scored
    }
}

/// Cosine similarity of two equal-length slices.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine on mismatched lengths");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Embedding {
        Embedding::from_flat(
            4,
            2,
            vec![
                1.0, 0.0, // id 0
                0.9, 0.1, // id 1: close to 0
                0.0, 1.0, // id 2: orthogonal to 0
                0.0, 0.0, // id 3: zero vector
            ],
        )
    }

    #[test]
    fn accessors() {
        let e = table();
        assert_eq!(e.len(), 4);
        assert_eq!(e.dim(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.vector(2), &[0.0, 1.0]);
        assert_eq!(e.flat().len(), 8);
    }

    #[test]
    fn cosine_values() {
        let e = table();
        assert!((e.cosine(0, 0) - 1.0).abs() < 1e-6);
        assert!(e.cosine(0, 1) > 0.99);
        assert!(e.cosine(0, 2).abs() < 1e-6);
        assert_eq!(e.cosine(0, 3), 0.0, "zero vector similarity is 0");
    }

    #[test]
    fn nearest_ranking() {
        let e = table();
        let nn = e.nearest(0, 2);
        assert_eq!(nn[0].0, 1);
        assert!(nn[0].1 > nn[1].1);
        assert_eq!(nn.len(), 2);
        // k larger than table size truncates gracefully.
        assert_eq!(e.nearest(0, 10).len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_bounds_checked() {
        let _ = table().vector(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_flat_checks_len() {
        let _ = Embedding::from_flat(2, 3, vec![0.0; 5]);
    }
}
