//! Skip-gram with negative sampling (SGNS) — the algorithm behind
//! word2vec/gensim, which entity2vec trains "on the collected tweets to
//! obtain the semantic embedding of each entity".
//!
//! The trainer consumes sentences of token ids (entity phrase tokens plus
//! ordinary words), maintains input/output embedding tables, and runs the
//! classic SGD with hand-derived logistic gradients. Everything is
//! deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::embedding::Embedding;
use crate::sampler::{keep_probability, NegativeTable};

/// Hyper-parameters of SGNS training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgnsConfig {
    /// Embedding dimensionality (the paper's default entity embedding
    /// length is 400; the scaled-down experiment profile uses 64).
    pub dim: usize,
    /// Max context window radius.
    pub window: usize,
    /// Negatives per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub lr: f32,
    /// Sub-sampling threshold (0 disables).
    pub subsample_t: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self { dim: 64, window: 5, negatives: 5, epochs: 5, lr: 0.025, subsample_t: 1e-3, seed: 42 }
    }
}

/// Trains SGNS over `sentences` (token-id lists) with per-id `counts`
/// (length = vocabulary size). Returns the input-embedding table.
pub fn train_sgns(sentences: &[Vec<usize>], counts: &[u64], config: &SgnsConfig) -> Embedding {
    let vocab = counts.len();
    assert!(vocab > 1, "SGNS needs a vocabulary of at least 2");
    assert!(config.dim > 0 && config.window > 0 && config.epochs > 0);
    for s in sentences {
        for &id in s {
            assert!(id < vocab, "token id {id} out of vocabulary {vocab}");
        }
    }
    let total_count: u64 = counts.iter().sum();
    let table = NegativeTable::new(counts);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // word2vec init: input U(-0.5/dim, 0.5/dim), output zeros.
    let mut input: Vec<f32> =
        (0..vocab * config.dim).map(|_| (rng.gen::<f32>() - 0.5) / config.dim as f32).collect();
    let mut output: Vec<f32> = vec![0.0; vocab * config.dim];

    let total_steps = (config.epochs * sentences.len()).max(1) as f32;
    let mut sentences_done = 0f32;

    let _span = edge_obs::span("sgns");
    for _ in 0..config.epochs {
        let _epoch_span = edge_obs::span("sgns.epoch");
        edge_obs::counter!("embed.sgns.epochs").inc(1);
        for sentence in sentences {
            let lr = config.lr * (1.0 - sentences_done / total_steps).max(1e-4);
            sentences_done += 1.0;

            // Sub-sample frequent tokens.
            let kept: Vec<usize> = sentence
                .iter()
                .copied()
                .filter(|&id| {
                    if config.subsample_t <= 0.0 {
                        return true;
                    }
                    let freq = counts[id] as f64 / total_count as f64;
                    rng.gen::<f64>() < keep_probability(freq, config.subsample_t)
                })
                .collect();
            if kept.len() < 2 {
                continue;
            }

            for (pos, &center) in kept.iter().enumerate() {
                // word2vec shrinks the window uniformly per position.
                let span = rng.gen_range(1..=config.window);
                let lo = pos.saturating_sub(span);
                let hi = (pos + span).min(kept.len() - 1);
                for (ctx_pos, &context) in kept.iter().enumerate().take(hi + 1).skip(lo) {
                    if ctx_pos == pos {
                        continue;
                    }
                    edge_obs::counter!("embed.sgns.pairs").inc(1);
                    train_pair(
                        &mut input,
                        &mut output,
                        config.dim,
                        center,
                        context,
                        config.negatives,
                        &table,
                        lr,
                        &mut rng,
                    );
                }
            }
        }
    }
    Embedding::from_flat(vocab, config.dim, input)
}

/// One positive pair + `negatives` negative updates.
#[allow(clippy::too_many_arguments)]
fn train_pair(
    input: &mut [f32],
    output: &mut [f32],
    dim: usize,
    center: usize,
    context: usize,
    negatives: usize,
    table: &NegativeTable,
    lr: f32,
    rng: &mut StdRng,
) {
    let mut grad_center = vec![0.0f32; dim];
    {
        // Positive example: label 1 on (center, context).
        let (g, out_row) = logistic_update(input, output, dim, center, context, 1.0, lr);
        for (gc, g) in grad_center.iter_mut().zip(&g) {
            *gc += g;
        }
        let _ = out_row;
    }
    for _ in 0..negatives {
        let neg = table.sample_excluding(context, rng);
        let (g, _) = logistic_update(input, output, dim, center, neg, 0.0, lr);
        for (gc, g) in grad_center.iter_mut().zip(&g) {
            *gc += g;
        }
    }
    let in_row = &mut input[center * dim..(center + 1) * dim];
    for (w, g) in in_row.iter_mut().zip(&grad_center) {
        *w += g;
    }
}

/// Logistic SGD on one (input, output) pair with the given label. Updates
/// the output row in place and returns the input-row gradient contribution
/// (applied by the caller after all negatives, as word2vec does).
fn logistic_update(
    input: &[f32],
    output: &mut [f32],
    dim: usize,
    center: usize,
    target: usize,
    label: f32,
    lr: f32,
) -> (Vec<f32>, usize) {
    let in_row = &input[center * dim..(center + 1) * dim];
    let out_row = &mut output[target * dim..(target + 1) * dim];
    let dot: f32 = in_row.iter().zip(out_row.iter()).map(|(a, b)| a * b).sum();
    let pred = 1.0 / (1.0 + (-dot).exp());
    let g = lr * (label - pred);
    let grad_center: Vec<f32> = out_row.iter().map(|&o| g * o).collect();
    for (o, &i) in out_row.iter_mut().zip(in_row) {
        *o += g * i;
    }
    (grad_center, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corpus with two topical clusters: tokens {0,1,2} co-occur, tokens
    /// {3,4,5} co-occur, token 6 floats between.
    fn clustered_corpus() -> (Vec<Vec<usize>>, Vec<u64>) {
        let mut sentences = Vec::new();
        for i in 0..200 {
            match i % 3 {
                0 => sentences.push(vec![0, 1, 2, 0, 1]),
                1 => sentences.push(vec![3, 4, 5, 3, 4]),
                _ => sentences.push(vec![6, if i % 2 == 0 { 0 } else { 3 }]),
            }
        }
        let mut counts = vec![0u64; 7];
        for s in &sentences {
            for &t in s {
                counts[t] += 1;
            }
        }
        (sentences, counts)
    }

    fn small_config() -> SgnsConfig {
        SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 4,
            epochs: 8,
            lr: 0.05,
            subsample_t: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn co_occurring_tokens_end_up_similar() {
        let (sentences, counts) = clustered_corpus();
        let emb = train_sgns(&sentences, &counts, &small_config());
        let within = emb.cosine(0, 1);
        let across = emb.cosine(0, 4);
        assert!(
            within > across + 0.2,
            "within-cluster {within} should beat across-cluster {across}"
        );
    }

    #[test]
    fn nearest_neighbors_are_cluster_mates() {
        let (sentences, counts) = clustered_corpus();
        let emb = train_sgns(&sentences, &counts, &small_config());
        let nn = emb.nearest(3, 2);
        let ids: Vec<usize> = nn.iter().map(|&(id, _)| id).collect();
        assert!(
            ids.contains(&4) || ids.contains(&5),
            "neighbors of 3 should include 4 or 5, got {ids:?}"
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (sentences, counts) = clustered_corpus();
        let a = train_sgns(&sentences, &counts, &small_config());
        let b = train_sgns(&sentences, &counts, &small_config());
        assert_eq!(a.vector(0), b.vector(0));
        let mut other = small_config();
        other.seed = 8;
        let c = train_sgns(&sentences, &counts, &other);
        assert_ne!(a.vector(0), c.vector(0));
    }

    #[test]
    fn embeddings_are_finite_and_nonzero() {
        let (sentences, counts) = clustered_corpus();
        let emb = train_sgns(&sentences, &counts, &small_config());
        for id in 0..counts.len() {
            let v = emb.vector(id);
            assert!(v.iter().all(|x| x.is_finite()));
        }
        assert!(emb.vector(0).iter().any(|&x| x.abs() > 1e-6));
    }

    #[test]
    fn subsampling_does_not_break_training() {
        let (sentences, counts) = clustered_corpus();
        let mut config = small_config();
        config.subsample_t = 1e-2;
        let emb = train_sgns(&sentences, &counts, &config);
        assert!(emb.vector(1).iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_ids_panic() {
        let _ = train_sgns(&[vec![0, 9]], &[1, 1], &small_config());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_vocab_panics() {
        let _ = train_sgns(&[vec![0]], &[5], &small_config());
    }
}
