//! # edge-par: the workspace's persistent worker pool
//!
//! Every `par_iter` / `par_chunks_mut` call in the workspace used to fan out
//! through the vendored rayon shim by **spawning fresh OS threads per call**
//! — tens of microseconds of overhead on every matmul, spmm, and evaluation
//! sweep. This crate replaces that with a persistent, lazily-initialized
//! worker pool:
//!
//! * **Parked workers.** Worker threads are spawned once (on first parallel
//!   call), then park on a condvar between jobs. Dispatching a job is a
//!   queue push + wake, not a `clone`+`spawn`+`join` cycle.
//! * **Chunked indexed dispatch.** A job is a closure over an index range
//!   `0..count`. Threads claim contiguous chunks via an atomic cursor — the
//!   cheap half of work stealing: dynamic load balancing without per-worker
//!   deques. Chunks claimed by a thread other than the submitter count as
//!   steals (`par.pool.steals`).
//! * **The caller participates.** The submitting thread works the job too,
//!   which makes nested parallelism deadlock-free by construction: a pooled
//!   task that itself calls [`parallel_for`] drives its own inner job to
//!   completion even if every worker is busy.
//! * **Panic propagation.** A panicking job index poisons the job; remaining
//!   chunks are claimed-and-discarded and the first payload is re-thrown on
//!   the submitting thread, matching `std::thread::scope` semantics.
//! * **`EDGE_NUM_THREADS`.** The environment variable (or
//!   [`set_num_threads`], e.g. from the CLI `--threads` flag) overrides the
//!   detected hardware parallelism; [`with_max_threads`] scopes a cap (or a
//!   raise, for tests) to the current thread.
//!
//! Observability: `par.pool.jobs` / `par.pool.steals` counters and the
//! `par.pool.queue_depth` / `par.pool.threads` gauges via `edge-obs`.
//!
//! For A/B benchmarking the old behavior is kept behind
//! [`DispatchMode::Spawn`] (or `EDGE_PAR_DISPATCH=spawn`): identical
//! splitting, but executed on freshly spawned scoped threads per call.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard ceiling on pool size, a backstop against runaway configuration.
const MAX_WORKERS: usize = 256;

/// Each thread claims indices in chunks of roughly `count / (width * OVERSUB)`
/// so fast threads can rebalance without hammering the shared cursor.
const OVERSUB: usize = 4;

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

/// Programmatic override set via [`set_num_threads`] (0 = unset).
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread cap/raise installed by [`with_max_threads`] (0 = unset).
    static TL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("EDGE_NUM_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok())
    })
}

fn hardware_threads() -> usize {
    // `available_parallelism` re-reads the cgroup CPU quota files on every
    // call (several microseconds) — cache it, it cannot change under us in
    // any way this pool would want to track.
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
}

/// Sets the default parallelism for subsequent parallel calls (the CLI
/// `--threads` flag lands here). Takes precedence over `EDGE_NUM_THREADS`.
/// Workers are spawned lazily, so raising the count later is cheap; threads
/// already parked stay parked if the count is lowered.
pub fn set_num_threads(n: usize) {
    REQUESTED_THREADS.store(n.clamp(1, MAX_WORKERS), Ordering::Relaxed);
}

/// The parallelism the next [`parallel_for`] on this thread will use:
/// the [`with_max_threads`] scope, else [`set_num_threads`], else
/// `EDGE_NUM_THREADS`, else the detected hardware parallelism.
pub fn num_threads() -> usize {
    let tl = TL_THREADS.with(Cell::get);
    if tl > 0 {
        return tl.min(MAX_WORKERS);
    }
    let req = REQUESTED_THREADS.load(Ordering::Relaxed);
    if req > 0 {
        return req;
    }
    env_threads().unwrap_or_else(hardware_threads).clamp(1, MAX_WORKERS)
}

/// Runs `f` with parallelism fixed to `n` on this thread (nested parallel
/// calls made *from pooled tasks* see the global setting instead — the cap
/// is a property of the calling thread, as in rayon's scoped pools).
/// Used by the determinism property tests to sweep thread counts in-process.
pub fn with_max_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = TL_THREADS.with(|c| {
        let prev = c.get();
        c.set(n.clamp(1, MAX_WORKERS));
        prev
    });
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Dispatch mode (pooled vs. legacy spawn-per-call, kept for A/B benches)
// ---------------------------------------------------------------------------

/// How [`parallel_for`] executes a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Persistent pool (the default): parked workers, chunked stealing.
    Pool,
    /// Legacy baseline: spawn scoped OS threads per call. Only useful to
    /// measure what the pool buys (`bench_pipeline`, `pool_dispatch`).
    Spawn,
}

static SPAWN_MODE: AtomicBool = AtomicBool::new(false);

fn spawn_mode_default() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        let from_env = std::env::var("EDGE_PAR_DISPATCH").is_ok_and(|v| v == "spawn");
        if from_env {
            SPAWN_MODE.store(true, Ordering::Relaxed);
        }
        from_env
    })
}

/// Selects the dispatch strategy (also settable via `EDGE_PAR_DISPATCH=spawn`).
pub fn set_dispatch_mode(mode: DispatchMode) {
    spawn_mode_default();
    SPAWN_MODE.store(mode == DispatchMode::Spawn, Ordering::Relaxed);
}

/// The current dispatch strategy.
pub fn dispatch_mode() -> DispatchMode {
    spawn_mode_default();
    if SPAWN_MODE.load(Ordering::Relaxed) {
        DispatchMode::Spawn
    } else {
        DispatchMode::Pool
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

type PanicPayload = Box<dyn Any + Send + 'static>;

/// One parallel region: a task closure over `0..count` plus the shared
/// cursor/completion state threads coordinate through.
///
/// The task is stored as a raw (lifetime-less) pointer so that `Job`
/// allocations can be cached and reused across dispatches: between regions
/// the pointer dangles, which is fine for a raw pointer and would be UB for
/// the `&'static` reference this field used to be. Dereferencing is sound
/// because [`Pool::run`] does not return until every index is accounted for
/// (`done == count`), and no thread dereferences the task after claiming a
/// chunk at or past `count` — so the pointee outlives every use.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    count: usize,
    grain: usize,
    /// The submitter's span context at dispatch (tracing enabled only):
    /// workers adopt it around each claimed chunk, so spans opened inside
    /// pooled tasks parent to the submitting span and keep its request id
    /// instead of dangling as per-worker roots.
    ctx: Option<edge_obs::trace::SpanContext>,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Indices accounted for (executed, or discarded after a panic).
    done: AtomicUsize,
    panicked: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
}

// SAFETY: the raw task pointer is only dereferenced while the submitting
// thread blocks in `Pool::run`, during which the pointee (a `Sync` closure
// borrowed from the submitter's stack) is valid and shareable. All other
// fields are atomics or mutexes.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// No unclaimed indices remain (claimed ≠ finished; see [`Job::complete`]).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.count
    }

    /// Every index has been executed or discarded.
    fn complete(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.count
    }

    /// Claims and runs chunks until the cursor passes the end. Returns the
    /// number of chunks this thread claimed.
    fn work(&self) -> u64 {
        let mut claimed = 0u64;
        loop {
            let lo = self.next.fetch_add(self.grain, Ordering::Relaxed);
            if lo >= self.count {
                return claimed;
            }
            let hi = (lo + self.grain).min(self.count);
            claimed += 1;
            // After a panic the remaining chunks are claimed-and-discarded so
            // the submitter can stop waiting and rethrow.
            if !self.panicked.load(Ordering::Relaxed) {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // SAFETY: a worker only reaches a job through the pool
                    // queue, and `Pool::run` keeps the pointee alive (and the
                    // job queued) until every index is accounted for.
                    let task = unsafe { &*self.task };
                    let _adopt = self.ctx.map(edge_obs::trace::adopt);
                    for i in lo..hi {
                        task(i);
                    }
                }));
                if let Err(payload) = result {
                    self.panicked.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock().unwrap();
                    slot.get_or_insert(payload);
                }
            }
            self.done.fetch_add(hi - lo, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

struct Pool {
    /// Injector queue of open jobs. Workers service the front job; exhausted
    /// jobs are dropped from the queue on the way.
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_signal: Condvar,
    /// Number of worker threads spawned so far (grows on demand).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_signal: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Ensures at least `needed` workers exist (the submitter itself is the
    /// +1 that completes the requested width).
    fn ensure_workers(&'static self, needed: usize) {
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < needed.min(MAX_WORKERS - 1) {
            let name = format!("edge-par-{}", *spawned);
            std::thread::Builder::new()
                .name(name)
                .spawn(move || self.worker_loop())
                .expect("spawning edge-par worker");
            *spawned += 1;
        }
        edge_obs::gauge!("par.pool.threads").set(*spawned as f64 + 1.0);
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    while queue.front().is_some_and(|j| j.exhausted()) {
                        queue.pop_front();
                    }
                    edge_obs::gauge!("par.pool.queue_depth").set(queue.len() as f64);
                    match queue.front() {
                        Some(job) => break Arc::clone(job),
                        None => queue = self.work_signal.wait(queue).unwrap(),
                    }
                }
            };
            let stolen = job.work();
            if stolen > 0 {
                edge_obs::counter!("par.pool.steals").inc(stolen);
            }
        }
    }

    /// Publishes `job`, works it from the submitting thread, waits for the
    /// last in-flight chunk, and rethrows any panic.
    fn run(&'static self, job: Arc<Job>) {
        {
            let mut queue = self.queue.lock().unwrap();
            queue.push_back(Arc::clone(&job));
            edge_obs::gauge!("par.pool.queue_depth").set(queue.len() as f64);
        }
        self.work_signal.notify_all();
        job.work();
        // Unclaimed work is gone; wait out chunks still running on workers.
        // These are bounded by one chunk per worker, so a spin/yield wait
        // beats parking the submitter on yet another condvar.
        let mut spins = 0u32;
        while !job.complete() {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Retire the finished job from the queue (workers would drop it
        // lazily, but only on their next wake — eagerly removing it lets the
        // submitter's cached `Arc` drop back to refcount 1 for reuse).
        {
            let mut queue = self.queue.lock().unwrap();
            if let Some(pos) = queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
                queue.remove(pos);
            }
        }
        if job.panicked.load(Ordering::Relaxed) {
            let payload = job
                .panic
                .lock()
                .unwrap()
                .take()
                .unwrap_or_else(|| Box::new("edge-par task panicked"));
            std::panic::resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Public dispatch entry points
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread cache of the last dispatched `Job` allocation. A train loop
    /// dispatches thousands of regions from one thread; once the pool retires
    /// a finished job from its queue the submitter holds the only `Arc`, so
    /// the next dispatch can re-initialize it in place instead of allocating.
    static JOB_CACHE: Cell<Option<Arc<Job>>> = const { Cell::new(None) };
}

/// Runs `task(i)` for every `i in 0..count` across the pool (plus the
/// calling thread), blocking until all indices completed. Panics in `task`
/// propagate to the caller. Serial (inline) when `count <= 1` or the
/// configured parallelism is 1.
pub fn parallel_for<F: Fn(usize) + Sync>(count: usize, task: F) {
    parallel_for_grained(count, 1, task);
}

/// [`parallel_for`] with a floor on the claim grain: each atomic-cursor claim
/// covers at least `min_grain` indices. Kernels whose per-index work is small
/// relative to dispatch (the SIMD matmul tiles) raise it so cursor traffic
/// stays amortized; the grain only changes how indices are *claimed*, never
/// the per-index work, so results are unaffected.
pub fn parallel_for_grained<F: Fn(usize) + Sync>(count: usize, min_grain: usize, task: F) {
    let width = num_threads().min(count);
    if width <= 1 {
        for i in 0..count {
            task(i);
        }
        return;
    }
    edge_obs::counter!("par.pool.jobs").inc(1);
    let ctx = edge_obs::trace_enabled().then(edge_obs::trace::current_context);
    if dispatch_mode() == DispatchMode::Spawn {
        return spawn_dispatch(count, width, &task, ctx);
    }
    let pool = pool();
    pool.ensure_workers(width - 1);
    let task_ref: &(dyn Fn(usize) + Sync) = &task;
    // SAFETY: `Pool::run` blocks until every index is executed or discarded,
    // and no thread touches `task` afterwards (see `Job` docs), so erasing
    // the borrow's lifetime cannot outlive the closure.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task_ref) };
    let task_ptr: *const (dyn Fn(usize) + Sync) = task_static;
    let grain = count.div_ceil(width * OVERSUB).max(min_grain).max(1);
    let mut cached = JOB_CACHE.with(Cell::take);
    let reusable = cached.as_mut().and_then(Arc::get_mut);
    let job = if let Some(slot) = reusable {
        slot.task = task_ptr;
        slot.count = count;
        slot.grain = grain;
        slot.ctx = ctx;
        slot.next = AtomicUsize::new(0);
        slot.done = AtomicUsize::new(0);
        slot.panicked = AtomicBool::new(false);
        // The panic slot is drained on rethrow; clearing keeps a poisoned
        // mutex from a previous region from leaking into this one.
        slot.panic = Mutex::new(None);
        edge_obs::counter!("par.pool.job_reuse").inc(1);
        cached.expect("just matched Some")
    } else {
        // The cached allocation (if any) is still referenced by a worker that
        // has not dropped its handle yet — allocate fresh; reuse is
        // best-effort and the stale Arc is simply dropped here.
        edge_obs::counter!("par.pool.job_alloc").inc(1);
        Arc::new(Job {
            task: task_ptr,
            count,
            grain,
            ctx,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
        })
    };
    pool.run(Arc::clone(&job));
    JOB_CACHE.with(|c| c.set(Some(job)));
}

/// Splits `data` into `chunk_size`-element chunks and runs
/// `task(chunk_index, chunk)` for each, in parallel, blocking until all
/// chunks completed. The final chunk may be shorter. Unlike the rayon-shim
/// `par_chunks_mut`, this performs **no heap allocation** on the serial path
/// (parallelism 1), which is what makes a zero-allocation train loop at
/// `--threads 1` possible.
pub fn parallel_for_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(
    data: &mut [T],
    chunk_size: usize,
    task: F,
) {
    parallel_for_chunks_mut_grained(data, chunk_size, 1, task);
}

/// [`parallel_for_chunks_mut`] with a floor on how many chunks one
/// atomic-cursor claim covers (see [`parallel_for_grained`]).
pub fn parallel_for_chunks_mut_grained<T: Send, F: Fn(usize, &mut [T]) + Sync>(
    data: &mut [T],
    chunk_size: usize,
    min_grain: usize,
    task: F,
) {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let len = data.len();
    if len == 0 {
        return;
    }
    let count = len.div_ceil(chunk_size);
    // A raw base pointer shared across threads; each index maps to a disjoint
    // `[lo, hi)` range so no two tasks alias.
    struct SendPtr<T>(*mut T);
    unsafe impl<T: Send> Send for SendPtr<T> {}
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    let base = SendPtr(data.as_mut_ptr());
    // Capture the wrapper by reference, not its raw-pointer field — Rust 2021
    // disjoint capture would otherwise grab the bare `*mut T`, which is not
    // `Sync`.
    let base = &base;
    parallel_for_grained(count, min_grain, |idx| {
        let lo = idx * chunk_size;
        let hi = (lo + chunk_size).min(len);
        // SAFETY: `base` points at `data`, which outlives this call because
        // `parallel_for` blocks until every index completes; chunk ranges are
        // disjoint, so each `&mut [T]` is exclusive.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) };
        task(idx, chunk);
    });
}

/// The legacy spawn-per-call execution of a parallel region: `width` scoped
/// OS threads over contiguous ranges. Kept only as the A/B baseline for the
/// `pool_dispatch` and `bench_pipeline` benches.
fn spawn_dispatch<F: Fn(usize) + Sync>(
    count: usize,
    width: usize,
    task: &F,
    ctx: Option<edge_obs::trace::SpanContext>,
) {
    let per = count.div_ceil(width);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|t| {
                let lo = (t * per).min(count);
                let hi = ((t + 1) * per).min(count);
                scope.spawn(move || {
                    let _adopt = ctx.map(edge_obs::trace::adopt);
                    for i in lo..hi {
                        task(i);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        with_max_threads(8, || {
            parallel_for(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn serial_when_width_one() {
        let sum = AtomicU64::new(0);
        with_max_threads(1, || {
            parallel_for(100, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn work_crosses_threads_when_requested() {
        let ids = Mutex::new(HashSet::new());
        with_max_threads(4, || {
            parallel_for(8, |_| {
                // Hold each chunk long enough for parked workers to wake and
                // claim the rest (the submitter alone would need ~80ms).
                std::thread::sleep(std::time::Duration::from_millis(10));
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(ids.lock().unwrap().len() >= 2, "expected at least 2 threads");
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let result = std::panic::catch_unwind(|| {
            with_max_threads(4, || {
                parallel_for(1000, |i| {
                    if i == 517 {
                        panic!("boom at {i}");
                    }
                });
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("payload");
        assert!(msg.contains("boom at 517"));
    }

    #[test]
    fn nested_parallel_for_does_not_deadlock() {
        let total = AtomicU64::new(0);
        with_max_threads(4, || {
            parallel_for(16, |_| {
                // Inner regions run from pool workers and the submitter alike.
                parallel_for(64, |j| {
                    total.fetch_add(j as u64, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16 * (0..64).sum::<u64>());
    }

    #[test]
    fn spawn_mode_matches_pool_mode() {
        let run = |mode: DispatchMode| {
            set_dispatch_mode(mode);
            let sum = AtomicU64::new(0);
            with_max_threads(4, || {
                parallel_for(5000, |i| {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                });
            });
            set_dispatch_mode(DispatchMode::Pool);
            sum.into_inner()
        };
        assert_eq!(run(DispatchMode::Spawn), run(DispatchMode::Pool));
    }

    #[test]
    fn with_max_threads_restores_on_exit_and_panic() {
        assert_eq!(with_max_threads(3, num_threads), 3);
        let before = num_threads();
        let _ = std::panic::catch_unwind(|| {
            with_max_threads(2, || panic!("inner"));
        });
        assert_eq!(num_threads(), before, "cap must unwind with the scope");
    }

    #[test]
    fn zero_count_is_a_noop() {
        parallel_for(0, |_| panic!("must not run"));
    }

    #[test]
    fn chunks_mut_covers_disjoint_ranges() {
        for threads in [1, 2, 8] {
            let mut data = vec![0u64; 10_007];
            with_max_threads(threads, || {
                parallel_for_chunks_mut(&mut data, 64, |idx, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v += (idx * 64 + k) as u64 + 1;
                    }
                });
            });
            assert!(
                data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1),
                "every element written exactly once at threads={threads}"
            );
        }
    }

    #[test]
    fn chunks_mut_handles_ragged_tail_and_empty() {
        let mut data = vec![0u8; 10];
        parallel_for_chunks_mut(&mut data, 3, |idx, chunk| {
            assert_eq!(chunk.len(), if idx == 3 { 1 } else { 3 });
            chunk.fill(1);
        });
        assert!(data.iter().all(|&v| v == 1));
        let mut empty: Vec<u8> = Vec::new();
        parallel_for_chunks_mut(&mut empty, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn pooled_tasks_adopt_the_submitters_span_context() {
        edge_obs::set_trace_enabled(true);
        let request = edge_obs::trace::next_request_id();
        let outer_id;
        {
            let _scope = edge_obs::trace::request_scope(request);
            let outer = edge_obs::span("par.adopt.outer");
            outer_id = edge_obs::trace::current_context().span;
            with_max_threads(4, || {
                parallel_for(8, |_| {
                    // Hold chunks so parked workers wake and claim some.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    let _inner = edge_obs::span("par.adopt.inner");
                });
            });
            drop(outer);
        }
        edge_obs::set_trace_enabled(false);
        let records = edge_obs::trace::records();
        let inners: Vec<_> = records.iter().filter(|r| r.name == "par.adopt.inner").collect();
        assert_eq!(inners.len(), 8);
        for inner in &inners {
            assert_eq!(inner.parent, outer_id, "pooled span must parent to the submitter");
            assert_eq!(inner.request, request, "pooled span must keep the request id");
        }
        let threads: HashSet<u64> = inners.iter().map(|r| r.thread).collect();
        assert!(threads.len() >= 2, "adoption must be exercised across threads");
    }

    #[test]
    fn job_cache_survives_repeated_dispatch() {
        // Back-to-back regions from one thread must stay correct whether the
        // cached job allocation is reused or not (reuse is best-effort).
        let total = AtomicU64::new(0);
        with_max_threads(4, || {
            for _ in 0..100 {
                parallel_for(257, |i| {
                    total.fetch_add(i as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 100 * (0..257).sum::<u64>());
    }

    #[test]
    fn dispatch_after_panic_is_clean() {
        with_max_threads(4, || {
            let _ = std::panic::catch_unwind(|| {
                parallel_for(512, |i| {
                    if i == 100 {
                        panic!("poisoned region");
                    }
                });
            });
            // The cached job from the panicked region must be fully reset.
            let sum = AtomicU64::new(0);
            parallel_for(512, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..512).sum::<u64>());
        });
    }
}
