//! Fault-injection suite: drives training and persistence through the
//! `edge-faults` failpoints and asserts that every injected fault ends in a
//! typed error or a logged recovery — never a panic, never silent
//! corruption.
//!
//! These tests live in their own integration binary (= their own process)
//! because the failpoint registry is global: a failpoint armed here must
//! not be observable by the unit tests training models concurrently. Within
//! this binary, every test grabs `FailScenario::setup()` as its first
//! statement — the scenario holds a global lock, serializing the tests, so
//! a reference (fault-free) run in one test can never trip a failpoint
//! armed by another. Faults are armed/disarmed mid-test with
//! `configure`/`remove` while the scenario stays held.

use std::path::PathBuf;

use edge_core::{
    inspect_artifact, load_checkpoint, Checkpointer, EdgeConfig, EdgeModel, PredictRequest,
    Predictor, TrainError, TrainOptions,
};
use edge_data::{SimDate, Tweet};
use edge_geo::{BBox, Point};
use edge_tensor::tape::ParamId;
use edge_text::{EntityCategory, EntityRecognizer};

fn bbox() -> BBox {
    BBox::new(40.0, 41.0, -75.0, -74.0)
}

fn tweet(id: u64, text: &str, lat: f64, lon: f64) -> Tweet {
    Tweet {
        id,
        text: text.to_string(),
        location: Point::new(lat, lon),
        date: SimDate::new(2020, 3, 12),
        gold_entities: vec![],
    }
}

fn venue_ner() -> EntityRecognizer {
    EntityRecognizer::with_gazetteer([
        ("alpha cafe", EntityCategory::Facility),
        ("beta park", EntityCategory::Geolocation),
        ("gamma pier", EntityCategory::Geolocation),
    ])
}

/// 30 tweets per venue, every one carrying a recognizable entity.
fn corpus() -> Vec<Tweet> {
    let mut tweets = Vec::new();
    let venues =
        [("alpha cafe", 40.2, -74.8), ("beta park", 40.5, -74.5), ("gamma pier", 40.8, -74.2)];
    let mut id = 0;
    for (name, lat, lon) in venues {
        for k in 0..30usize {
            tweets.push(tweet(
                id,
                &format!("spent time at {name} again {k}"),
                lat + 1e-4 * (k % 7) as f64,
                lon,
            ));
            id += 1;
        }
    }
    tweets
}

fn cfg(epochs: usize) -> EdgeConfig {
    let mut c = EdgeConfig::smoke();
    c.epochs = epochs;
    c.batch_size = 16;
    c
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edge_faults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_params_identical(a: &EdgeModel, b: &EdgeModel, context: &str) {
    assert_eq!(a.param_store().len(), b.param_store().len(), "{context}");
    for i in 0..a.param_store().len() {
        let id = ParamId(i);
        assert_eq!(
            a.param_store().get(id).data(),
            b.param_store().get(id).data(),
            "parameter {i} differs: {context}"
        );
    }
}

#[test]
fn interrupted_training_resumes_bit_identically() {
    let _s = edge_faults::FailScenario::setup();
    let tweets = corpus();
    let config = cfg(6);

    // Reference: one uninterrupted run.
    let (reference, ref_report) =
        EdgeModel::train(&tweets, venue_ner(), &bbox(), config.clone(), &TrainOptions::default())
            .unwrap();

    // Interrupted run: checkpoint every 2 epochs, die via an injected fault
    // after epoch 3 finishes — the newest checkpoint then holds next_epoch=4.
    let dir = tmp_dir("resume");
    let opts = TrainOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        ..TrainOptions::default()
    };
    edge_faults::configure("train.epoch_end", "3*off->err(simulated crash)").unwrap();
    let err = EdgeModel::train(&tweets, venue_ner(), &bbox(), config.clone(), &opts).unwrap_err();
    assert!(matches!(err, TrainError::Interrupted(_)), "{err}");
    edge_faults::remove("train.epoch_end");

    // The checkpoint on disk verifies end-to-end (fsck path).
    let cp = Checkpointer::new(&dir, 2, 3);
    let (ckpt_path, state) = cp.latest().unwrap().expect("checkpoint written");
    assert_eq!(state.next_epoch, 4);
    let info = inspect_artifact(&ckpt_path).expect("fsck");
    assert_eq!(info.kind, "checkpoint");
    assert!(info.detail.contains("next epoch 4"), "{}", info.detail);

    // Resume and finish: must be indistinguishable from the uninterrupted
    // run — same loss trajectory, bit-identical parameters.
    let resume_opts = TrainOptions { resume: true, ..opts.clone() };
    let (resumed, res_report) =
        EdgeModel::train(&tweets, venue_ner(), &bbox(), config.clone(), &resume_opts).unwrap();
    assert_eq!(res_report.start_epoch, 4);
    assert_eq!(ref_report.epoch_losses, res_report.epoch_losses);
    assert_params_identical(&reference, &resumed, "resume after interruption");

    // Corrupt the newest checkpoint (the resumed run's final `ckpt-000006`):
    // resume falls back to the older `ckpt-000004` and still converges to
    // the identical final state.
    let (newest, newest_state) = cp.latest().unwrap().unwrap();
    assert_eq!(newest_state.next_epoch, 6);
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&newest, &bytes).unwrap();
    assert!(load_checkpoint(&newest).is_err(), "corruption must be detected");
    let (resumed2, res2) =
        EdgeModel::train(&tweets, venue_ner(), &bbox(), config, &resume_opts).unwrap();
    assert_eq!(res2.start_epoch, 4, "must fall back past the corrupt checkpoint");
    assert_eq!(ref_report.epoch_losses, res2.epoch_losses);
    assert_params_identical(&reference, &resumed2, "resume past a corrupt checkpoint");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn divergence_guard_rolls_back_and_recovers() {
    let _s = edge_faults::FailScenario::setup();
    let tweets = corpus();
    let config = cfg(4);
    // All 90 tweets carry an entity; batch 16 → 6 batches per epoch.
    let n_batches = tweets.len().div_ceil(config.batch_size);

    let dir = tmp_dir("guard");
    // Poison one gradient in epoch 1's first batch — after the epoch-0
    // checkpoint exists, so the guard has somewhere to roll back to.
    edge_faults::configure("train.poison_grads", &format!("{n_batches}*off->1*err->off")).unwrap();
    let opts = TrainOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..TrainOptions::default()
    };
    let (_, report) =
        EdgeModel::train(&tweets, venue_ner(), &bbox(), config.clone(), &opts).unwrap();
    assert_eq!(report.rollbacks, 1, "exactly one rollback expected");
    assert_eq!(report.epoch_losses.len(), config.epochs);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    // The halved learning rate lands in the post-rollback checkpoints.
    let cp = Checkpointer::new(&dir, 1, 3);
    let (_, state) = cp.latest().unwrap().unwrap();
    assert!((state.lr - config.lr * 0.5).abs() < 1e-9, "lr {} not halved", state.lr);
    assert_eq!(state.rollbacks, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn divergence_without_checkpoints_is_a_typed_error() {
    let _s = edge_faults::FailScenario::setup();
    let tweets = corpus();
    edge_faults::configure("train.poison_grads", "1*err->off").unwrap();
    let err = EdgeModel::train(&tweets, venue_ner(), &bbox(), cfg(2), &TrainOptions::default())
        .unwrap_err();
    match err {
        TrainError::Diverged { epoch, rollbacks, detail } => {
            assert_eq!(epoch, 0);
            assert_eq!(rollbacks, 1);
            assert!(detail.contains("checkpointing disabled"), "{detail}");
        }
        other => panic!("expected Diverged, got {other}"),
    }
}

#[test]
fn rollback_budget_exhaustion_is_a_typed_error() {
    let _s = edge_faults::FailScenario::setup();
    let tweets = corpus();
    let dir = tmp_dir("budget");
    // Every batch of epoch ≥1 is poisoned: the guard rolls back over and
    // over until the budget runs out.
    let n_batches = tweets.len().div_ceil(16);
    edge_faults::configure("train.poison_grads", &format!("{n_batches}*off->err")).unwrap();
    let opts = TrainOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        max_rollbacks: 2,
        ..TrainOptions::default()
    };
    let err = EdgeModel::train(&tweets, venue_ner(), &bbox(), cfg(4), &opts).unwrap_err();
    match err {
        TrainError::Diverged { rollbacks, detail, .. } => {
            assert_eq!(rollbacks, 3, "budget of 2 → fails on the third rollback");
            assert!(detail.contains("budget exhausted"), "{detail}");
        }
        other => panic!("expected Diverged, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_write_failures_do_not_kill_training() {
    let _s = edge_faults::FailScenario::setup();
    let tweets = corpus();
    let dir = tmp_dir("wfail");
    edge_faults::configure("checkpoint.save", "err(disk full)").unwrap();
    let opts = TrainOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..TrainOptions::default()
    };
    let (model, report) = EdgeModel::train(&tweets, venue_ner(), &bbox(), cfg(3), &opts)
        .expect("checkpoint write failures are non-fatal");
    assert_eq!(report.epoch_losses.len(), 3);
    assert!(model.locate(&PredictRequest::text("beta park"), &Default::default()).is_ok());
    assert!(
        Checkpointer::new(&dir, 1, 3).list().is_empty(),
        "no checkpoint should have survived the injected failure"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[allow(deprecated)] // the legacy envelope writer's crash-safety stays covered
fn model_save_failures_leave_previous_model_on_disk() {
    let _s = edge_faults::FailScenario::setup();
    let tweets = corpus();
    let (m1, _) =
        EdgeModel::train(&tweets, venue_ner(), &bbox(), cfg(2), &TrainOptions::default()).unwrap();
    let dir = tmp_dir("save");
    let path = dir.join("model.edge");
    m1.save(&path).unwrap();

    for (fp, spec) in
        [("persist.save", "err"), ("fsio.write", "partial(64)"), ("fsio.fsync", "err")]
    {
        edge_faults::configure(fp, spec).unwrap();
        assert!(m1.save(&path).is_err(), "{fp} should fail the save");
        edge_faults::remove(fp);
        let reloaded = EdgeModel::load(&path).expect("previous artifact must stay valid");
        assert_params_identical(&m1, &reloaded, fp);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partial_checkpoint_write_is_invisible_to_resume() {
    let _s = edge_faults::FailScenario::setup();
    let tweets = corpus();
    let dir = tmp_dir("torn");
    let opts = TrainOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..TrainOptions::default()
    };
    // First two checkpoints land; the third write tears mid-file; the run
    // is then interrupted at the same epoch boundary.
    edge_faults::configure("fsio.write", "2*off->partial(100)").unwrap();
    edge_faults::configure("train.epoch_end", "2*off->err(crash)").unwrap();
    let err = EdgeModel::train(&tweets, venue_ner(), &bbox(), cfg(6), &opts).unwrap_err();
    assert!(matches!(err, TrainError::Interrupted(_)), "{err}");
    edge_faults::remove("fsio.write");
    edge_faults::remove("train.epoch_end");

    // The torn write never surfaced a file: the newest visible checkpoint
    // is the epoch-2 one, and it verifies.
    let cp = Checkpointer::new(&dir, 1, 3);
    let (_, state) = cp.latest().unwrap().expect("intact checkpoint remains");
    assert_eq!(state.next_epoch, 2);
    let resume_opts = TrainOptions { resume: true, ..opts };
    let (_, report) =
        EdgeModel::train(&tweets, venue_ner(), &bbox(), cfg(6), &resume_opts).unwrap();
    assert_eq!(report.start_epoch, 2);
    assert_eq!(report.epoch_losses.len(), 6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn grad_clip_keeps_training_stable_and_deterministic() {
    let _s = edge_faults::FailScenario::setup();
    let tweets = corpus();
    let opts = TrainOptions { grad_clip: Some(0.5), ..TrainOptions::default() };
    let (m1, r1) = EdgeModel::train(&tweets, venue_ner(), &bbox(), cfg(3), &opts).unwrap();
    let (m2, r2) = EdgeModel::train(&tweets, venue_ner(), &bbox(), cfg(3), &opts).unwrap();
    assert_eq!(r1.epoch_losses, r2.epoch_losses);
    assert_params_identical(&m1, &m2, "clipped training determinism");
    assert!(r1.epoch_losses.iter().all(|l| l.is_finite()));
}
