//! Property tests for artifact-corruption handling: a saved model damaged
//! by truncation at any offset or by any single flipped bit must always
//! fail to load with a typed [`PersistError`] — never a panic, never a
//! silently wrong model. Both persistence formats are covered: the legacy
//! JSON envelope (via the deprecated `EdgeModel::load`, which this suite
//! deliberately keeps exercising) and the zero-copy mapped layout.
#![allow(deprecated)]

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use edge_core::{
    EdgeConfig, EdgeModel, ModelArtifact, PersistError, PredictRequest, Predictor, QuantMode,
    TrainOptions,
};
use edge_data::{SimDate, Tweet};
use edge_geo::{BBox, Point};
use edge_text::{EntityCategory, EntityRecognizer};

/// One valid model, trained once for the whole binary.
fn trained_model() -> &'static EdgeModel {
    static MODEL: OnceLock<EdgeModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let tweets: Vec<Tweet> = (0..40)
            .map(|i| {
                let (name, lat, lon) = if i % 2 == 0 {
                    ("alpha cafe", 40.2, -74.8)
                } else {
                    ("beta park", 40.7, -74.3)
                };
                Tweet {
                    id: i,
                    text: format!("at {name} today {i}"),
                    location: Point::new(lat, lon),
                    date: SimDate::new(2020, 3, 12),
                    gold_entities: vec![],
                }
            })
            .collect();
        let ner = EntityRecognizer::with_gazetteer([
            ("alpha cafe", EntityCategory::Facility),
            ("beta park", EntityCategory::Geolocation),
        ]);
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 2;
        let bbox = BBox::new(40.0, 41.0, -75.0, -74.0);
        let (model, _) =
            EdgeModel::train(&tweets, ner, &bbox, cfg, &TrainOptions::default()).expect("train");
        model
    })
}

/// Bytes of the model saved in the legacy envelope format.
fn model_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = scratch_path("pristine");
        trained_model().save(&path).expect("save");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        bytes
    })
}

/// Bytes of the same model in the mapped layout, plus the byte ranges the
/// format actually checks (magic/header fields, section table, section
/// payloads). Bytes outside these ranges — header reserved area and
/// inter-section page padding — carry no meaning and no checksum.
fn mapped_bytes() -> &'static (Vec<u8>, Vec<std::ops::Range<usize>>) {
    static BYTES: OnceLock<(Vec<u8>, Vec<std::ops::Range<usize>>)> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = scratch_path("pristine_map");
        trained_model().save_artifact(&path, QuantMode::None).expect("save");
        let bytes = std::fs::read(&path).expect("read back");
        let info = edge_core::inspect_artifact(&path).expect("fsck");
        std::fs::remove_file(&path).ok();
        let mut checked = vec![0..24, 64..64 + info.sections.len() * 56];
        for s in &info.sections {
            checked.push(s.offset as usize..(s.offset + s.bytes) as usize);
        }
        (bytes, checked)
    })
}

fn scratch_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edge_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{tag}.edge"))
}

/// Writes `bytes` and asserts that loading yields a typed error without
/// panicking, returning the error's display for diagnostics.
fn load_must_fail(bytes: &[u8], tag: &str) -> Result<String, String> {
    let path = scratch_path(tag);
    std::fs::write(&path, bytes).map_err(|e| e.to_string())?;
    let outcome = EdgeModel::load(&path);
    std::fs::remove_file(&path).ok();
    match outcome {
        Err(e @ (PersistError::Io(_) | PersistError::Format(_) | PersistError::Corrupt(_))) => {
            Ok(e.to_string())
        }
        Ok(_) => Err(format!("damaged artifact ({tag}) loaded successfully")),
    }
}

/// Like [`load_must_fail`] but through the redesigned mapped-artifact path.
fn load_mapped_must_fail(bytes: &[u8], tag: &str) -> Result<String, String> {
    let path = scratch_path(tag);
    std::fs::write(&path, bytes).map_err(|e| e.to_string())?;
    let outcome = ModelArtifact::open(&path).and_then(|a| a.load_model());
    std::fs::remove_file(&path).ok();
    match outcome {
        Err(e @ (PersistError::Io(_) | PersistError::Format(_) | PersistError::Corrupt(_))) => {
            Ok(e.to_string())
        }
        Ok(_) => Err(format!("damaged artifact ({tag}) loaded successfully")),
    }
}

proptest! {
    #[test]
    fn truncation_at_any_offset_is_a_typed_error(frac in 0.0f64..1.0) {
        let bytes = model_bytes();
        // frac < 1.0 strictly, so the file always loses at least one byte.
        let keep = (bytes.len() as f64 * frac) as usize;
        let msg = load_must_fail(&bytes[..keep], "trunc");
        prop_assert!(msg.is_ok(), "truncated to {keep}/{}: {}", bytes.len(), msg.unwrap_err());
    }

    #[test]
    fn any_single_bit_flip_is_a_typed_error(frac in 0.0f64..1.0, bit in 0usize..8) {
        let mut bytes = model_bytes().to_vec();
        let idx = (bytes.len() as f64 * frac) as usize;
        let idx = idx.min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        let msg = load_must_fail(&bytes, "flip");
        prop_assert!(msg.is_ok(), "flipped bit {bit} of byte {idx}: {}", msg.unwrap_err());
    }

    #[test]
    fn truncated_mapped_artifact_is_a_typed_error(frac in 0.0f64..1.0) {
        let (bytes, _) = mapped_bytes();
        let keep = (bytes.len() as f64 * frac) as usize;
        let msg = load_mapped_must_fail(&bytes[..keep], "map_trunc");
        prop_assert!(msg.is_ok(), "truncated to {keep}/{}: {}", bytes.len(), msg.unwrap_err());
    }

    #[test]
    fn bit_flip_in_mapped_artifact_never_goes_unnoticed(frac in 0.0f64..1.0, bit in 0usize..8) {
        let (pristine, checked) = mapped_bytes();
        let mut bytes = pristine.clone();
        let idx = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        let path = scratch_path("map_flip");
        std::fs::write(&path, &bytes).expect("write corrupted copy");
        let outcome = ModelArtifact::open(&path).and_then(|a| a.load_model());
        std::fs::remove_file(&path).ok();
        if checked.iter().any(|r| r.contains(&idx)) {
            // Flip in magic, header fields, section table, or a payload:
            // must surface as a typed error.
            prop_assert!(outcome.is_err(), "flip in checked byte {idx} loaded");
        } else {
            // Flip in reserved/padding bytes: meaningless, so the artifact
            // still loads — but it must load, not panic.
            prop_assert!(outcome.is_ok(), "flip in padding byte {idx} failed to load");
        }
    }

    #[test]
    fn mapped_magic_with_garbage_body_is_a_typed_error(len in 0usize..4096, seed in 0u64..u64::MAX) {
        let mut state = seed;
        let mut bytes = b"EDGEMAP1".to_vec();
        bytes.extend((0..len).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 56) as u8
        }));
        let msg = load_mapped_must_fail(&bytes, "map_garbage");
        prop_assert!(msg.is_ok(), "magic + {len} garbage bytes: {}", msg.unwrap_err());
    }

    #[test]
    fn random_garbage_is_a_typed_error(len in 0usize..4096, seed in 0u64..u64::MAX) {
        // Arbitrary bytes, sometimes starting with plausible-looking JSON.
        let mut state = seed;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let msg = load_must_fail(&bytes, "garbage");
        prop_assert!(msg.is_ok(), "{len} garbage bytes: {}", msg.unwrap_err());
    }
}

#[test]
fn pristine_mapped_bytes_load() {
    let path = scratch_path("sane_map");
    std::fs::write(&path, &mapped_bytes().0).unwrap();
    let model = ModelArtifact::open(&path).expect("open").load_model().expect("load");
    assert!(model.locate(&PredictRequest::text("alpha cafe"), &Default::default()).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn pristine_bytes_load() {
    // Sanity check for the suite itself: the undamaged bytes do load.
    let path = scratch_path("sane");
    std::fs::write(&path, model_bytes()).unwrap();
    let model = EdgeModel::load(&path).expect("pristine artifact loads");
    assert!(model.locate(&PredictRequest::text("alpha cafe"), &Default::default()).is_ok());
    std::fs::remove_file(&path).ok();
}
