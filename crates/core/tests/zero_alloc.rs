//! The tentpole claim, measured instead of assumed: with the `alloc-stats`
//! counting allocator compiled in, a steady-state training batch performs
//! **zero heap allocations** — every buffer it needs comes from the arena
//! pools warmed by the first epoch.
//!
//! The count is process-global, so this file holds a single test (and the CI
//! perf-smoke job runs it with `--test-threads=1`); the sweep is pinned to
//! one worker because multi-thread dispatch only best-effort-reuses its job
//! allocation.
#![cfg(feature = "alloc-stats")]

use edge_core::{EdgeConfig, EdgeModel, TrainOptions};
use edge_data::{dataset_recognizer, nyma, PresetSize};

#[test]
fn steady_state_training_batch_allocates_nothing() {
    let d = nyma(PresetSize::Smoke, 11);
    let (train, _) = d.paper_split();
    let mut cfg = EdgeConfig::smoke();
    cfg.epochs = 3;

    let report = edge_par::with_max_threads(1, || {
        let (_, report) = EdgeModel::train(
            &train[..600],
            dataset_recognizer(&d),
            &d.bbox,
            cfg.clone(),
            &TrainOptions::default(),
        )
        .expect("train");
        report
    });
    let min = report.steady_batch_allocs.expect("alloc-stats is compiled in");
    assert_eq!(min, 0, "steady-state batch performed {min} heap allocations");

    // The reference mode must show the counter actually measures something:
    // fresh allocation is far from zero on every batch.
    let fresh = edge_par::with_max_threads(1, || {
        let opts = TrainOptions { fresh_alloc: true, ..TrainOptions::default() };
        let (_, report) =
            EdgeModel::train(&train[..600], dataset_recognizer(&d), &d.bbox, cfg, &opts)
                .expect("train");
        report
    });
    let fresh_min = fresh.steady_batch_allocs.expect("alloc-stats is compiled in");
    assert!(fresh_min > 100, "fresh-alloc reference should allocate per batch, saw {fresh_min}");
}
