//! Failure-injection and degenerate-input tests for the EDGE model: the
//! conditions a production system hits that a paper never mentions.

use edge_core::model::TrainReport;
use edge_core::{
    EdgeConfig, EdgeModel, PredictOptions, PredictRequest, Predictor, TrainError, TrainOptions,
};
use edge_data::{SimDate, Tweet};
use edge_geo::{BBox, Point};
use edge_text::{EntityCategory, EntityRecognizer};

fn bbox() -> BBox {
    BBox::new(40.0, 41.0, -75.0, -74.0)
}

fn tweet(id: u64, text: &str, lat: f64, lon: f64) -> Tweet {
    Tweet {
        id,
        text: text.to_string(),
        location: Point::new(lat, lon),
        date: SimDate::new(2020, 3, 12),
        gold_entities: vec![],
    }
}

fn tiny_config() -> EdgeConfig {
    let mut c = EdgeConfig::smoke();
    c.epochs = 4;
    c.batch_size = 16;
    c
}

fn venue_ner() -> EntityRecognizer {
    EntityRecognizer::with_gazetteer([
        ("alpha cafe", EntityCategory::Facility),
        ("beta park", EntityCategory::Geolocation),
        ("gamma pier", EntityCategory::Geolocation),
    ])
}

/// A minimal trainable corpus: three venues at three corners.
fn tiny_corpus(n_per: usize) -> Vec<Tweet> {
    let mut tweets = Vec::new();
    let venues =
        [("alpha cafe", 40.2, -74.8), ("beta park", 40.5, -74.5), ("gamma pier", 40.8, -74.2)];
    let mut id = 0;
    for (name, lat, lon) in venues {
        for k in 0..n_per {
            tweets.push(tweet(
                id,
                &format!("spent time at {name} again {k}"),
                lat + 1e-4 * (k % 7) as f64,
                lon,
            ));
            id += 1;
        }
    }
    tweets
}

/// The new unified API in the old `Option` shape, for terse assertions.
fn locate_text(model: &EdgeModel, text: &str) -> Option<edge_core::Prediction> {
    model.locate(&PredictRequest::text(text), &PredictOptions::default()).ok().map(|r| r.prediction)
}

/// Trains with default fault-tolerance options, unwrapping the result.
fn train_ok(tweets: &[Tweet], ner: EntityRecognizer, cfg: EdgeConfig) -> (EdgeModel, TrainReport) {
    EdgeModel::train(tweets, ner, &bbox(), cfg, &TrainOptions::default()).expect("train")
}

#[test]
fn empty_training_set_is_a_typed_error() {
    let err = EdgeModel::train(&[], venue_ner(), &bbox(), tiny_config(), &TrainOptions::default())
        .unwrap_err();
    assert!(matches!(err, TrainError::EmptyCorpus), "{err}");
    assert!(err.to_string().contains("empty training set"));
}

#[test]
fn corpus_without_entities_is_a_typed_error() {
    let tweets: Vec<Tweet> =
        (0..50).map(|i| tweet(i, "nothing recognizable here", 40.5, -74.5)).collect();
    let err = EdgeModel::train(
        &tweets,
        EntityRecognizer::new(),
        &bbox(),
        tiny_config(),
        &TrainOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, TrainError::NoEntities(_)), "{err}");
}

#[test]
fn trains_on_a_minimal_corpus() {
    let tweets = tiny_corpus(30);
    let (model, report) = train_ok(&tweets, venue_ner(), tiny_config());
    assert_eq!(model.entity_index().len(), 3);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    let p = locate_text(&model, "meet me at beta park").expect("covered");
    assert!(p.point.is_finite());
}

#[test]
fn identical_locations_collapse_sigma_without_nan() {
    // Every tweet at literally the same point per venue: σ wants to go to
    // 0; the model must stay finite (the loss floors σ). Two venues keep
    // the entity inventory above the ≥2 minimum.
    let tweets: Vec<Tweet> = (0..60)
        .map(|i| {
            if i % 2 == 0 {
                tweet(i, "at alpha cafe", 40.5, -74.5)
            } else {
                tweet(i, "at beta park", 40.6, -74.4)
            }
        })
        .collect();
    let mut cfg = tiny_config();
    cfg.epochs = 30;
    let (model, report) = train_ok(&tweets, venue_ner(), cfg);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()), "{:?}", report.epoch_losses);
    let p = locate_text(&model, "alpha cafe").expect("covered");
    assert!(p.point.is_finite());
    // With point-mass data the density is razor-sharp; require the
    // prediction to pick the right venue, not a particular radius.
    assert!(
        p.point.haversine_km(&Point::new(40.5, -74.5))
            < p.point.haversine_km(&Point::new(40.6, -74.4)),
        "prediction {:?} closer to the wrong venue",
        p.point
    );
    for g in p.mixture.components() {
        assert!(g.sigma_lat > 0.0 && g.sigma_lat.is_finite());
    }
}

#[test]
fn single_occurrence_entities_survive() {
    let mut tweets = tiny_corpus(20);
    tweets.push(tweet(999, "rare visit to gamma pier and alpha cafe", 40.8, -74.2));
    let (model, _) = train_ok(&tweets, venue_ner(), tiny_config());
    // All entities present and predictable.
    for name in ["alpha_cafe", "beta_park", "gamma_pier"] {
        assert!(model.entity_index().get(name).is_some(), "{name} missing");
    }
}

#[test]
fn prediction_handles_adversarial_text() {
    let (model, _) = train_ok(&tiny_corpus(20), venue_ner(), tiny_config());
    for text in [
        "",
        "    ",
        "@#$%^&*()",
        "alpha",                    // partial entity name: not a gazetteer match
        &"alpha cafe ".repeat(500), // very long, many repeats of one entity
        "ALPHA CAFE BETA PARK GAMMA PIER",
        "\u{1F600}\u{1F30D} alpha cafe \u{2764}",
    ] {
        // `None` (uncovered) is a legal outcome for any of these inputs.
        if let Some(p) = locate_text(&model, text) {
            assert!(p.point.is_finite(), "non-finite point for {text:?}");
            let w: f32 = p.attention.iter().map(|(_, w)| w).sum();
            assert!(p.attention.is_empty() || (w - 1.0).abs() < 1e-3);
        }
    }
}

#[test]
fn outlier_locations_do_not_poison_training() {
    let mut tweets = tiny_corpus(25);
    // A few tweets pinned at the region's far corner.
    for i in 0..3 {
        tweets.push(tweet(9000 + i, "at alpha cafe", 40.999, -74.001));
    }
    let (model, report) = train_ok(&tweets, venue_ner(), tiny_config());
    assert!(report.epoch_losses.last().unwrap().is_finite());
    let p = locate_text(&model, "alpha cafe").expect("covered");
    // Prediction stays with the majority mass, not the outliers.
    assert!(
        p.point.haversine_km(&Point::new(40.2, -74.8))
            < p.point.haversine_km(&Point::new(40.999, -74.001)),
        "prediction {:?} pulled to outliers",
        p.point
    );
}

#[test]
fn one_component_mixture_trains_and_predicts() {
    let mut cfg = tiny_config().ablation_no_mixture();
    cfg.epochs = 10;
    let (model, _) = train_ok(&tiny_corpus(25), venue_ner(), cfg);
    let p = locate_text(&model, "gamma pier").expect("covered");
    assert_eq!(p.mixture.len(), 1);
    assert_eq!(p.mixture.weights()[0], 1.0);
}

#[test]
fn many_components_with_few_data_points_stay_finite() {
    let mut cfg = tiny_config();
    cfg.n_components = 8; // more modes than venues
    cfg.epochs = 12;
    let (model, report) = train_ok(&tiny_corpus(12), venue_ner(), cfg);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    let p = locate_text(&model, "beta park").expect("covered");
    assert_eq!(p.mixture.len(), 8);
    assert!((p.mixture.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn gcn_depth_three_works() {
    let mut cfg = tiny_config();
    cfg.gcn_layers = 3;
    let (model, _) = train_ok(&tiny_corpus(20), venue_ner(), cfg);
    assert!(locate_text(&model, "alpha cafe").is_some());
}
