//! Tape-free inference engine: the attention + mixture-head forward pass on
//! plain matrices, with every linear-algebra intermediate carved out of a
//! thread-local scratch arena.
//!
//! [`crate::EdgeModel::predict`] runs this on the caller's thread (and
//! `predict_batch` on every `edge-par` worker). The intermediates — the
//! gathered entity rows, attention scores, the aggregated tweet embedding,
//! the θ row — are recycled across calls, so after a thread's first
//! prediction warms its scratch the engine performs no heap allocation. The
//! returned mixture and attention weights are owned by the caller and
//! necessarily allocated: the zero-allocation scope is the engine, not the
//! result.

use std::cell::RefCell;

use edge_geo::GaussianMixture;
use edge_tensor::tape::softmax_in_place;
use edge_tensor::{Matrix, TapeArena};

use crate::artifact::SmoothedStore;
use crate::mdn::decode_theta;

thread_local! {
    static SCRATCH: RefCell<InferScratch> = RefCell::new(InferScratch::default());
}

#[derive(Default)]
struct InferScratch {
    arena: TapeArena,
    weights: Vec<f32>,
}

/// Borrowed model parameters for one inference forward pass.
pub(crate) struct InferParams<'a> {
    pub q1: &'a Matrix,
    pub b1: &'a Matrix,
    pub q2: &'a Matrix,
    pub b2: &'a Matrix,
    pub use_attention: bool,
    pub n_components: usize,
}

/// Runs attention aggregation (Eq. 2–4, or the SUM ablation) and the
/// mixture head (Eq. 5–12) for one entity set, returning the decoded
/// mixture and the per-entity attention weights (empty under SUM).
///
/// Bit-identical to the historical `attention_infer` → `matmul` →
/// `add_row_broadcast` → `decode_theta` pipeline; only the storage strategy
/// differs (`tests` assert agreement with `attention_infer`).
pub(crate) fn infer_prediction(
    smoothed: &SmoothedStore,
    entities: &[usize],
    p: &InferParams<'_>,
) -> (GaussianMixture, Vec<f32>) {
    assert!(!entities.is_empty(), "inference needs at least one entity");
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let arena = &mut scratch.arena;
        let mut h = arena.take_matrix(entities.len(), smoothed.cols());
        // K x h — rows were copied into scratch here even before the mmap
        // redesign, so quantized stores dequantize inside the same copy.
        smoothed.gather_rows_into(entities, &mut h);
        let (z, weights) = if p.use_attention {
            let mut scores = arena.take_matrix(entities.len(), 1);
            h.matmul_into(p.q1, &mut scores); // Eq. 2: K x 1
            let bias = p.b1.get(0, 0);
            scratch.weights.clear();
            scratch.weights.extend(scores.data().iter().map(|s| (s + bias).max(0.0)));
            arena.recycle(scores);
            softmax_in_place(&mut scratch.weights); // Eq. 3
            let mut z = arena.take_matrix(1, h.cols());
            for (k, &w) in scratch.weights.iter().enumerate() {
                edge_tensor::axpy(w, h.row(k), z.row_mut(0)); // Eq. 4
            }
            (z, scratch.weights.clone())
        } else {
            let mut z = arena.take_matrix(1, h.cols());
            h.sum_rows_into(&mut z);
            (z, Vec::new())
        };
        arena.recycle(h);
        let mut theta = arena.take_matrix(1, p.q2.cols());
        z.matmul_into(p.q2, &mut theta);
        arena.recycle(z);
        for (t, &b) in theta.row_mut(0).iter_mut().zip(p.b2.row(0)) {
            *t += b; // Eq. 7
        }
        let mixture = decode_theta(theta.row(0), p.n_components);
        arena.recycle(theta);
        (mixture, weights)
    })
}
