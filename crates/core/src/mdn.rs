//! The mixture-density head (paper Eq. 5–12): a linear layer produces the
//! raw parameter vector `θ`, which decodes into a bivariate Gaussian
//! mixture through the constraint activations — softplus for σ (Eq. 10),
//! softsign for ρ (Eq. 11), softmax for π (Eq. 12).
//!
//! The *training* path never materializes the mixture: the fused
//! `Tape::gmm_nll` op applies the same activations internally (its gradient
//! is finite-difference-verified in `edge-tensor`). This module provides the
//! shared layout, the inference-side decoder, and the MDN-friendly bias
//! initialization.

use edge_geo::{BBox, BivariateGaussian, GaussianMixture, Point};
use edge_tensor::Matrix;

/// Width of the θ vector for `m` components: `[π̂ | μ_lat | μ_lon | σ̂_lat |
/// σ̂_lon | ρ̂]`, each block of width `m`.
pub fn theta_width(m: usize) -> usize {
    6 * m
}

/// Numerically stable softplus (f64), matching `edge_tensor::loss`.
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else {
        x.exp().ln_1p()
    }
}

/// Inverse softplus: `softplus(inv_softplus(y)) = y` for `y > 0`.
pub fn inv_softplus(y: f64) -> f64 {
    assert!(y > 0.0, "inv_softplus needs a positive argument");
    if y > 30.0 {
        y
    } else {
        (y.exp() - 1.0).max(f64::MIN_POSITIVE).ln()
    }
}

/// Decodes one θ row into the prediction mixture (Eq. 5–6 with the Eq.
/// 10–12 activations applied).
pub fn decode_theta(theta: &[f32], m: usize) -> GaussianMixture {
    assert_eq!(theta.len(), theta_width(m), "theta width mismatch");
    let mut logits: Vec<f32> = theta[0..m].to_vec();
    edge_tensor::tape::softmax_in_place(&mut logits);
    let parts: Vec<(f64, BivariateGaussian)> = (0..m)
        .map(|k| {
            let mu = Point::new(theta[m + k] as f64, theta[2 * m + k] as f64);
            let s1 = softplus(theta[3 * m + k] as f64).max(1e-8);
            let s2 = softplus(theta[4 * m + k] as f64).max(1e-8);
            let rh = theta[5 * m + k] as f64;
            let rho = rh / (1.0 + rh.abs());
            (logits[k] as f64, BivariateGaussian::new(mu, s1, s2, rho))
        })
        .collect();
    GaussianMixture::new(parts)
}

/// Builds the head's bias row so that, at initialization, the mixture
/// components tile the study region with region-scale spreads — the
/// standard MDN trick without which every component starts at (0°, 0°),
/// thousands of kilometres from any tweet, and the NLL surface is flat.
pub fn init_head_bias(bbox: &BBox, m: usize) -> Matrix {
    let mut bias = Matrix::zeros(1, theta_width(m));
    let center = bbox.center();
    let lat_span = bbox.lat_span();
    let lon_span = bbox.lon_span();
    // Components on a jittered ring around the centre.
    for k in 0..m {
        let angle = 2.0 * std::f64::consts::PI * k as f64 / m as f64;
        let mu_lat = center.lat + 0.2 * lat_span * angle.sin();
        let mu_lon = center.lon + 0.2 * lon_span * angle.cos();
        bias.set(0, m + k, mu_lat as f32);
        bias.set(0, 2 * m + k, mu_lon as f32);
        bias.set(0, 3 * m + k, inv_softplus(lat_span / 4.0) as f32);
        bias.set(0, 4 * m + k, inv_softplus(lon_span / 4.0) as f32);
        // π̂ and ρ̂ start at 0: uniform weights, no correlation.
    }
    bias
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_layout_width() {
        assert_eq!(theta_width(1), 6);
        assert_eq!(theta_width(4), 24);
    }

    #[test]
    fn inv_softplus_round_trips() {
        for y in [0.01, 0.5, 1.0, 3.0, 50.0] {
            let x = inv_softplus(y);
            assert!((softplus(x) - y).abs() < 1e-9, "y={y}");
        }
    }

    #[test]
    fn decode_applies_constraints() {
        let m = 2;
        let mut theta = vec![0.0f32; theta_width(m)];
        theta[0] = 1.0; // π̂_0 > π̂_1
        theta[m] = 40.7;
        theta[m + 1] = 40.8;
        theta[2 * m] = -74.0;
        theta[2 * m + 1] = -73.9;
        theta[3 * m] = -5.0; // tiny σ via softplus, still positive
        theta[5 * m] = -100.0; // ρ̂ → softsign ≈ -1, clamped inside (-1,1)
        let mix = decode_theta(&theta, m);
        assert_eq!(mix.len(), 2);
        assert!(mix.weights()[0] > mix.weights()[1]);
        assert!((mix.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for g in mix.components() {
            assert!(g.sigma_lat > 0.0 && g.sigma_lon > 0.0);
            assert!(g.rho > -1.0 && g.rho < 1.0);
        }
        assert!((mix.components()[0].mu.lat - 40.7).abs() < 1e-6);
    }

    #[test]
    fn decode_agrees_with_training_loss_density() {
        // The density of the decoded mixture must equal exp(-NLL) computed
        // by the fused training op at the same θ — the two code paths share
        // the activation semantics.
        let m = 3;
        let theta: Vec<f32> = (0..theta_width(m))
            .map(|i| match i / m {
                0 => 0.3 * (i % m) as f32,
                1 => 40.5 + 0.1 * (i % m) as f32,
                2 => -74.1 + 0.1 * (i % m) as f32,
                3 | 4 => -1.0 + 0.3 * (i % m) as f32,
                _ => 0.5 * (i % m) as f32 - 0.5,
            })
            .collect();
        let target = Point::new(40.7, -74.0);
        let mix = decode_theta(&theta, m);
        let (nll, _) = edge_tensor::loss::gmm_nll_row(&theta, target.lat, target.lon, m);
        let density = mix.pdf(&target);
        assert!(
            ((-nll).exp() - density).abs() < 1e-6 * (1.0 + density),
            "exp(-nll) {} vs pdf {density}",
            (-nll).exp()
        );
    }

    #[test]
    fn init_bias_tiles_the_region() {
        let bbox = BBox::new(40.49, 40.92, -74.27, -73.68);
        let m = 4;
        let bias = init_head_bias(&bbox, m);
        let mix = decode_theta(bias.row(0), m);
        // All component means inside the region, weights uniform.
        for g in mix.components() {
            assert!(bbox.contains(&g.mu), "init mean outside region: {:?}", g.mu);
        }
        for &w in mix.weights() {
            assert!((w - 0.25).abs() < 1e-9);
        }
        // Component means are distinct (the ring layout breaks symmetry).
        let mus: Vec<_> = mix.components().iter().map(|g| (g.mu.lat, g.mu.lon)).collect();
        for i in 0..m {
            for j in i + 1..m {
                assert_ne!(mus[i], mus[j]);
            }
        }
        // Initial σ is region-scale: about a quarter span.
        let s = mix.components()[0].sigma_lat;
        assert!((s - bbox.lat_span() / 4.0).abs() < 1e-4, "sigma {s}");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn decode_checks_width() {
        let _ = decode_theta(&[0.0; 10], 2);
    }
}
