//! Typed errors for training and prediction. The library never panics on
//! bad *input* (empty corpora, corrupt checkpoints, diverging optimization);
//! panics are reserved for programming errors.

use crate::persist::PersistError;

/// Why [`crate::EdgeModel::train`] could not produce a model.
#[derive(Debug)]
pub enum TrainError {
    /// The configuration violates an invariant (message from
    /// [`crate::EdgeConfig::check`]).
    InvalidConfig(String),
    /// The training slice was empty.
    EmptyCorpus,
    /// The corpus yielded too few recognized entities to build the entity
    /// graph, or no training tweet mentions a recognized entity.
    NoEntities(String),
    /// A checkpoint could not be read back (resume or rollback path).
    Checkpoint(PersistError),
    /// Training was interrupted by an I/O condition (in practice: an
    /// injected failpoint in the fault-injection suite).
    Interrupted(std::io::Error),
    /// The optimizer hit non-finite losses/gradients and the divergence
    /// guard ran out of recovery options.
    Diverged {
        /// Epoch in which the final, unrecoverable divergence occurred.
        epoch: usize,
        /// Rollbacks performed before giving up.
        rollbacks: u64,
        /// What was observed and why recovery stopped.
        detail: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TrainError::EmptyCorpus => write!(f, "empty training set"),
            TrainError::NoEntities(msg) => write!(f, "unusable training corpus: {msg}"),
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TrainError::Interrupted(e) => write!(f, "training interrupted: {e}"),
            TrainError::Diverged { epoch, rollbacks, detail } => {
                write!(
                    f,
                    "training diverged at epoch {epoch} after {rollbacks} rollback(s): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Interrupted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for TrainError {
    fn from(e: PersistError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Interrupted(e)
    }
}

/// Why [`crate::Predictor::locate`] could not predict a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// The request resolved to no known entity — the coverage gap the paper
    /// excludes. The typed abstention: callers either skip the tweet or
    /// retry with [`crate::PredictOptions::fallback_prior`] to answer it
    /// with the training-split prior.
    NoEntities,
    /// A pre-resolved entity index points outside the model's entity
    /// inventory (stale indices from a different model generation).
    EntityOutOfRange {
        /// The offending index.
        id: usize,
        /// The size of the entity inventory it was checked against.
        n_entities: usize,
    },
    /// The predictor does not support this request input shape (e.g. the
    /// BOW baseline has no entity inventory to index into).
    UnsupportedInput(&'static str),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NoEntities => write!(f, "prediction needs at least one entity"),
            PredictError::EntityOutOfRange { id, n_entities } => {
                write!(f, "entity index {id} out of range (model has {n_entities} entities)")
            }
            PredictError::UnsupportedInput(what) => {
                write!(f, "unsupported request input: {what}")
            }
        }
    }
}

impl std::error::Error for PredictError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = TrainError::Diverged { epoch: 7, rollbacks: 3, detail: "nan loss".into() };
        let s = e.to_string();
        assert!(s.contains("epoch 7") && s.contains("3 rollback") && s.contains("nan loss"));
        assert!(TrainError::EmptyCorpus.to_string().contains("empty"));
        assert!(PredictError::NoEntities.to_string().contains("entity"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = TrainError::from(PersistError::Corrupt("x".into()));
        assert!(e.source().is_some());
        let e = TrainError::from(std::io::Error::other("fp"));
        assert!(e.source().is_some());
        assert!(TrainError::EmptyCorpus.source().is_none());
    }
}
