//! The BOW ablation of Table IV: "a baseline that represents a tweet as
//! bag-of-words (BOW), i.e., a vector of word frequencies, which is
//! directly input to a dense layer that connects to our Gaussian mixture
//! component."
//!
//! The other three ablations (NoGCN / SUM / NoMixture) are configuration
//! flags on [`crate::EdgeModel`]; BOW replaces the whole entity pipeline,
//! so it is its own model type sharing only the mixture head.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use edge_data::Tweet;
use edge_geo::BBox;
use edge_tensor::init::xavier_uniform;
use edge_tensor::tape::{ParamId, ParamStore, Tape};
use edge_tensor::{Adam, Matrix, Optimizer};
use edge_text::{is_stopword, lower_words, Vocab};

use crate::config::EdgeConfig;
use crate::error::PredictError;
use crate::mdn::{decode_theta, init_head_bias, theta_width};
use crate::model::Prediction;
use crate::predict::{PredictInput, PredictOptions, PredictRequest, PredictResponse, Predictor};

/// The trained BOW ablation model: a *single* dense layer from the
/// word-frequency vector straight to the mixture parameters, exactly as the
/// paper describes ("directly input to a dense layer that connects to our
/// Gaussian mixture component"). No hidden nonlinearity — which is why BOW
/// cannot resolve multi-word entities whose component words are
/// individually ambiguous, and trails every entity-based variant in
/// Table IV.
pub struct BowModel {
    vocab: Vocab,
    n_components: usize,
    params: ParamStore,
    w: ParamId,
    b: ParamId,
}

impl BowModel {
    /// Trains the BOW baseline. Re-uses the EDGE training configuration
    /// (epochs, batch size, optimizer, `M`); `max_vocab` caps the
    /// word-frequency vector at the most frequent words.
    pub fn train(train: &[Tweet], bbox: &BBox, config: &EdgeConfig, max_vocab: usize) -> Self {
        config.validate();
        assert!(max_vocab >= 8, "vocabulary cap too small");
        // Build the word vocabulary (stop words removed, capped by count).
        let mut full = Vocab::new();
        let sentences: Vec<Vec<String>> = train
            .iter()
            .map(|t| lower_words(&t.text).into_iter().filter(|w| !is_stopword(w)).collect())
            .collect();
        for s in &sentences {
            for w in s {
                full.add(w);
            }
        }
        let mut by_count: Vec<usize> = (0..full.len()).collect();
        by_count.sort_by_key(|&i| std::cmp::Reverse(full.count(i)));
        by_count.truncate(max_vocab);
        let mut vocab = Vocab::new();
        for &i in &by_count {
            vocab.add(full.token(i));
        }

        let m = config.n_components;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let w = params
            .add("bow_w", xavier_uniform(vocab.len().max(1), theta_width(m), &mut rng).scale(0.1));
        let b = params.add("bow_b", init_head_bias(bbox, m));

        let mut model = Self { vocab, n_components: m, params, w, b };

        // Pre-vectorize the training tweets.
        let vectors: Vec<Vec<f32>> = train.iter().map(|t| model.vectorize(&t.text)).collect();
        let mut optimizer = Adam::new(config.lr, 0.9, 0.999, 1e-8, config.weight_decay);
        optimizer.exclude_from_decay(model.b);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size) {
                let mut x = Matrix::zeros(batch.len(), model.vocab.len());
                let mut targets = Vec::with_capacity(batch.len());
                for (row, &i) in batch.iter().enumerate() {
                    x.row_mut(row).copy_from_slice(&vectors[i]);
                    targets.push((train[i].location.lat, train[i].location.lon));
                }
                let mut tape = Tape::new();
                let xn = tape.constant(x);
                let wn = tape.param(model.w, &model.params);
                let bn = tape.param(model.b, &model.params);
                let lin = tape.matmul(xn, wn);
                let theta = tape.add_row_broadcast(lin, bn);
                let nll = tape.gmm_nll(theta, &targets, m);
                let loss = tape.scale(nll, 1.0 / batch.len() as f32);
                let grads = tape.backward(loss);
                // Drop the tape's shared parameter leaves before stepping so
                // the copy-on-write update happens in place.
                drop(tape);
                optimizer.step(&mut model.params, &grads);
            }
        }
        model
    }

    /// The normalized word-frequency vector of a text.
    fn vectorize(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.vocab.len()];
        let mut total = 0.0f32;
        for w in lower_words(text) {
            if is_stopword(&w) {
                continue;
            }
            if let Some(id) = self.vocab.get(&w) {
                v[id] += 1.0;
                total += 1.0;
            }
        }
        if total > 0.0 {
            for x in &mut v {
                *x /= total;
            }
        }
        v
    }

    /// Vocabulary size actually used.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Predicts for any text (BOW always produces a vector, so coverage is
    /// 1.0; unknown-word tweets get the prior mixture).
    pub fn predict(&self, text: &str) -> Prediction {
        let v = self.vectorize(text);
        let x = Matrix::from_vec(1, self.vocab.len(), v);
        let theta = x.matmul(self.params.get(self.w)).add_row_broadcast(self.params.get(self.b));
        let mixture = decode_theta(theta.row(0), self.n_components);
        let point = mixture.mode();
        Prediction { mixture, point, attention: Vec::new() }
    }
}

impl Predictor for BowModel {
    fn name(&self) -> &str {
        "BOW"
    }

    /// BOW covers every text (coverage 1.0). Pre-resolved entity input is
    /// meaningless here — BOW has no entity inventory — and is rejected as
    /// a typed [`PredictError::UnsupportedInput`].
    fn locate_batch(
        &self,
        requests: &[PredictRequest],
        _opts: &PredictOptions,
    ) -> Vec<Result<PredictResponse, PredictError>> {
        requests
            .iter()
            .map(|r| match &r.input {
                PredictInput::Text(text) => {
                    Ok(PredictResponse { prediction: self.predict(text), from_fallback: false })
                }
                PredictInput::Entities(_) => {
                    Err(PredictError::UnsupportedInput("BOW predicts from raw text only"))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};
    use edge_geo::{DistanceReport, Point};

    #[test]
    fn bow_trains_and_beats_center_baseline() {
        let d = nyma(PresetSize::Smoke, 41);
        let (train, test) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 6;
        let model = BowModel::train(train, &d.bbox, &cfg, 1500);
        assert!(model.vocab_len() > 100);
        let outcome = model.evaluate(test, &PredictOptions::default());
        assert_eq!(outcome.pairs.len(), test.len(), "BOW covers everything");
        assert_eq!(outcome.abstained, 0);
        let r = DistanceReport::from_pairs(&outcome.point_pairs()).unwrap();
        let center_pairs: Vec<(Point, Point)> =
            test.iter().map(|t| (d.bbox.center(), t.location)).collect();
        let c = DistanceReport::from_pairs(&center_pairs).unwrap();
        assert!(r.median_km < c.median_km, "BOW {} !< center {}", r.median_km, c.median_km);
    }

    #[test]
    fn empty_text_gets_prior_mixture() {
        let d = nyma(PresetSize::Smoke, 42);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 1;
        let model = BowModel::train(&train[..500], &d.bbox, &cfg, 500);
        let p = model.predict("");
        assert!(p.point.is_finite());
        assert_eq!(p.mixture.len(), cfg.n_components);
    }

    #[test]
    fn vocab_cap_is_respected() {
        let d = nyma(PresetSize::Smoke, 43);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 1;
        let model = BowModel::train(&train[..500], &d.bbox, &cfg, 64);
        assert!(model.vocab_len() <= 64);
    }
}
