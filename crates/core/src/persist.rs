//! Legacy model persistence: the checksummed JSON envelope, plus the
//! typed error and `fsck` machinery shared with the mmap layout.
//!
//! New artifacts are written in the zero-copy mapped layout by
//! [`crate::artifact`] (`EdgeModel::save_artifact`), and loading goes
//! through [`crate::artifact::ModelArtifact`], which sniffs the magic and
//! falls back to this module's envelope reader — existing artifacts stay
//! loadable forever, and `fsck --upgrade` migrates them. The envelope is
//! still what training checkpoints use ([`crate::checkpoint`]): they are
//! read-modify-write state, not serve-time weights, so zero-copy buys
//! nothing there.
//!
//! Every artifact (models here, training checkpoints in
//! [`crate::checkpoint`]) is written crash-safely — temp file, fsync, atomic
//! rename — and wrapped in a two-line envelope:
//!
//! ```text
//! {"magic":"EDGEART","envelope_version":1,"kind":"model","payload_bytes":N,"crc64":"…"}
//! { …payload JSON… }
//! ```
//!
//! The header carries the byte length and CRC-64/XZ of the payload, so the
//! loader distinguishes a truncated or bit-flipped file from a valid one and
//! returns [`PersistError::Corrupt`] instead of misreading it. JSON is
//! deliberately chosen over a binary format: models at the paper's scale are
//! a few tens of megabytes, and an inspectable artifact is worth more than
//! the size savings here.

use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use edge_faults::{crc64, failpoint, fsio};
use edge_geo::GaussianMixture;
use edge_tensor::tape::{ParamId, ParamStore};
use edge_tensor::{CsrMatrix, Matrix};
use edge_text::EntityRecognizer;

use crate::config::EdgeConfig;
use crate::entity2vec::EntityIndex;
use crate::model::EdgeModel;

/// Errors from saving/loading a model.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Format(serde_json::Error),
    /// The document was readable but internally inconsistent: bad magic,
    /// checksum mismatch, truncation, or invalid cross-references.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "artifact I/O error: {e}"),
            PersistError::Format(e) => write!(f, "artifact format error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            PersistError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// First bytes of every EDGE artifact.
pub const MAGIC: &str = "EDGEART";
/// Version of the envelope itself (header line + checksummed payload line).
pub const ENVELOPE_VERSION: u32 = 1;
/// `kind` tag for saved models.
pub const KIND_MODEL: &str = "model";
/// `kind` tag for training checkpoints.
pub const KIND_CHECKPOINT: &str = "checkpoint";

/// The first line of every artifact file.
#[derive(Serialize, Deserialize)]
struct ArtifactHeader {
    magic: String,
    envelope_version: u32,
    kind: String,
    payload_bytes: usize,
    crc64: String,
}

fn crc_hex(payload: &[u8]) -> String {
    format!("{:016x}", crc64::checksum(payload))
}

/// Writes `payload` (a JSON document) to `path` under a checksummed envelope,
/// via temp-file + fsync + atomic rename. A crash at any point leaves either
/// the previous artifact or the complete new one — never a hybrid.
///
/// Failpoint: `persist.save` (fails before anything touches the disk); the
/// underlying `fsio.*` failpoints exercise the write/fsync/rename steps.
pub(crate) fn write_artifact(
    path: impl AsRef<Path>,
    kind: &str,
    payload: &str,
) -> Result<(), PersistError> {
    failpoint!("persist.save");
    let header = ArtifactHeader {
        magic: MAGIC.to_string(),
        envelope_version: ENVELOPE_VERSION,
        kind: kind.to_string(),
        payload_bytes: payload.len(),
        crc64: crc_hex(payload.as_bytes()),
    };
    let mut doc = serde_json::to_string(&header)?;
    doc.reserve(payload.len() + 1);
    doc.push('\n');
    doc.push_str(payload);
    fsio::atomic_write(path, doc.as_bytes())?;
    Ok(())
}

/// Reads and verifies the envelope at `path`, returning the header and the
/// checksum-verified payload. Any damage — missing header line, bad magic,
/// length mismatch, CRC mismatch — is a typed error, never a panic.
fn read_envelope(path: impl AsRef<Path>) -> Result<(ArtifactHeader, String), PersistError> {
    let raw = std::fs::read_to_string(path)?;
    let (header_line, payload) = raw
        .split_once('\n')
        .ok_or_else(|| PersistError::Corrupt("missing envelope header line".to_string()))?;
    let header: ArtifactHeader = serde_json::from_str(header_line)?;
    if header.magic != MAGIC {
        return Err(PersistError::Corrupt(format!(
            "bad magic {:?} (not an EDGE artifact)",
            header.magic
        )));
    }
    if header.envelope_version != ENVELOPE_VERSION {
        return Err(PersistError::Corrupt(format!(
            "envelope version {} (expected {ENVELOPE_VERSION})",
            header.envelope_version
        )));
    }
    if payload.len() != header.payload_bytes {
        return Err(PersistError::Corrupt(format!(
            "payload is {} bytes, header says {} (truncated or padded file)",
            payload.len(),
            header.payload_bytes
        )));
    }
    let actual = crc_hex(payload.as_bytes());
    if actual != header.crc64 {
        return Err(PersistError::Corrupt(format!(
            "checksum mismatch: computed {actual}, header says {}",
            header.crc64
        )));
    }
    Ok((header, payload.to_string()))
}

/// Like [`read_envelope`] but additionally checks the artifact `kind`.
pub(crate) fn read_artifact(
    path: impl AsRef<Path>,
    expected_kind: &str,
) -> Result<String, PersistError> {
    let (header, payload) = read_envelope(path)?;
    if header.kind != expected_kind {
        return Err(PersistError::Corrupt(format!(
            "artifact is a {:?} (expected {expected_kind:?})",
            header.kind
        )));
    }
    Ok(payload)
}

/// What `edge-cli fsck` reports for a healthy artifact.
#[derive(Debug)]
pub struct ArtifactInfo {
    /// `"model"` or `"checkpoint"`.
    pub kind: String,
    /// Envelope version (legacy) or mapped-layout version.
    pub envelope_version: u32,
    /// Payload size in bytes (whole file for mapped artifacts).
    pub payload_bytes: usize,
    /// Payload CRC-64/XZ (hex) for legacy envelopes; the section-table
    /// CRC for mapped artifacts. Verified either way.
    pub crc64: String,
    /// Payload schema version.
    pub payload_version: u32,
    /// One-line human summary of the payload contents.
    pub detail: String,
    /// Quantization mode of a mapped model (`None` for legacy artifacts).
    pub quant: Option<String>,
    /// Verified section table of a mapped artifact (empty for legacy).
    pub sections: Vec<crate::artifact::SectionInfo>,
}

/// Fully verifies the artifact at `path`: envelope + checksum + payload
/// parse + internal consistency. This is the engine behind `edge-cli fsck`.
/// Routes on the magic bytes: mapped artifacts get the section-table
/// verification in [`crate::artifact`], everything else the legacy
/// envelope checks below.
pub fn inspect_artifact(path: impl AsRef<Path>) -> Result<ArtifactInfo, PersistError> {
    if crate::artifact::sniff_mapped(path.as_ref())? {
        return crate::artifact::inspect_mapped(path.as_ref());
    }
    let (header, payload) = read_envelope(&path)?;
    let (payload_version, detail) = match header.kind.as_str() {
        KIND_MODEL => {
            let doc: SavedModel = serde_json::from_str(&payload)?;
            doc.validate()?;
            let detail = format!(
                "model: {} entities, {} parameter matrices, {} GCN layers, prior {}",
                doc.index.len(),
                doc.params.len(),
                doc.w_gcn.len(),
                if doc.prior.is_some() { "present" } else { "absent" }
            );
            (doc.format_version, detail)
        }
        KIND_CHECKPOINT => {
            let doc: crate::checkpoint::CheckpointState = serde_json::from_str(&payload)?;
            doc.validate()?;
            let detail = format!(
                "checkpoint: next epoch {}, lr {:.6}, {} parameter matrices, {} rollbacks",
                doc.next_epoch,
                doc.lr,
                doc.params.len(),
                doc.rollbacks
            );
            (doc.schema_version, detail)
        }
        other => {
            return Err(PersistError::Corrupt(format!("unknown artifact kind {other:?}")));
        }
    };
    Ok(ArtifactInfo {
        kind: header.kind,
        envelope_version: header.envelope_version,
        payload_bytes: header.payload_bytes,
        crc64: header.crc64,
        payload_version,
        detail,
        quant: None,
        sections: Vec::new(),
    })
}

/// The on-disk model payload. Version-tagged so future format changes can be
/// detected instead of misread.
#[derive(Serialize, Deserialize)]
pub(crate) struct SavedModel {
    pub(crate) format_version: u32,
    pub(crate) config: EdgeConfig,
    pub(crate) ner: EntityRecognizer,
    pub(crate) index: EntityIndex,
    pub(crate) adjacency: CsrMatrix,
    pub(crate) features: Matrix,
    pub(crate) params: ParamStore,
    pub(crate) w_gcn: Vec<ParamId>,
    pub(crate) q1: ParamId,
    pub(crate) b1: ParamId,
    pub(crate) q2: ParamId,
    pub(crate) b2: ParamId,
    /// Training-split location prior, used (opt-in) as a fallback for
    /// zero-entity tweets. `None` on models saved before it existed.
    pub(crate) prior: Option<GaussianMixture>,
}

/// Payload schema version. v2 added the envelope and the optional prior.
pub(crate) const FORMAT_VERSION: u32 = 2;

impl SavedModel {
    pub(crate) fn validate(&self) -> Result<(), PersistError> {
        if self.format_version != FORMAT_VERSION {
            return Err(PersistError::Corrupt(format!(
                "format version {} (expected {FORMAT_VERSION})",
                self.format_version
            )));
        }
        self.config
            .check()
            .map_err(|msg| PersistError::Corrupt(format!("invalid config: {msg}")))?;
        let n = self.index.len();
        if self.adjacency.rows() != n || self.adjacency.cols() != n {
            return Err(PersistError::Corrupt(format!(
                "adjacency is {}x{} but the index has {n} entities",
                self.adjacency.rows(),
                self.adjacency.cols()
            )));
        }
        if self.features.rows() != n || self.features.cols() != self.config.embed_dim {
            return Err(PersistError::Corrupt(format!(
                "feature matrix is {:?}, expected {n}x{}",
                self.features.shape(),
                self.config.embed_dim
            )));
        }
        let max_param = self
            .w_gcn
            .iter()
            .chain([&self.q1, &self.b1, &self.q2, &self.b2])
            .map(|p| p.0)
            .max()
            .unwrap_or(0);
        if max_param >= self.params.len() {
            return Err(PersistError::Corrupt(format!(
                "parameter id {max_param} out of range ({} stored)",
                self.params.len()
            )));
        }
        if self.w_gcn.len() != self.config.gcn_layers {
            return Err(PersistError::Corrupt(format!(
                "{} GCN weight matrices for {} configured layers",
                self.w_gcn.len(),
                self.config.gcn_layers
            )));
        }
        Ok(())
    }
}

impl EdgeModel {
    /// Saves the trained model in the legacy JSON envelope — crash-safe
    /// (temp file + fsync + atomic rename) and checksummed.
    #[deprecated(
        since = "0.7.0",
        note = "use `save_artifact` (zero-copy mmap layout, optional quantization); this \
                writer remains for producing legacy-envelope artifacts only"
    )]
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_envelope(path)
    }

    /// Loads a model artifact in either format, verifying checksums first.
    #[deprecated(
        since = "0.7.0",
        note = "use `ModelArtifact::open(path)?.load_model()` or \
                `<EdgeModel as ArtifactLoad>::load_artifact(path)`"
    )]
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        crate::artifact::ModelArtifact::open(path)?.load_model()
    }

    /// The non-deprecated legacy-envelope writer (the `--format legacy`
    /// escape hatch and the deprecated [`EdgeModel::save`] shim).
    pub(crate) fn save_envelope(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let doc = self.to_saved()?;
        let json = serde_json::to_string(&doc)?;
        write_artifact(path, KIND_MODEL, &json)
    }

    /// Fallible because a mapped model materializes its lazy adjacency
    /// section here.
    pub(crate) fn to_saved(&self) -> Result<SavedModel, PersistError> {
        Ok(SavedModel {
            format_version: FORMAT_VERSION,
            config: self.config().clone(),
            ner: self.recognizer().clone(),
            index: self.entity_index().clone(),
            adjacency: self.try_adjacency()?.as_ref().clone(),
            features: self.feature_matrix().clone(),
            params: self.param_store().clone(),
            w_gcn: self.gcn_param_ids().to_vec(),
            q1: self.attention_param_ids().0,
            b1: self.attention_param_ids().1,
            q2: self.head_param_ids().0,
            b2: self.head_param_ids().1,
            prior: self.prior().cloned(),
        })
    }

    pub(crate) fn from_saved(doc: SavedModel) -> Self {
        Self::from_parts(
            doc.config,
            doc.ner,
            doc.index,
            Arc::new(doc.adjacency),
            doc.features,
            doc.params,
            doc.w_gcn,
            doc.q1,
            doc.b1,
            doc.q2,
            doc.b2,
            doc.prior,
        )
    }
}

#[cfg(test)]
// The deprecated save/load shims are exercised on purpose: they must keep
// delegating to the artifact API bit-identically.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::model::TrainOptions;
    use crate::predict::{PredictOptions, PredictRequest, Predictor};
    use edge_data::{dataset_recognizer, nyma, PresetSize};

    fn trained() -> (EdgeModel, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 71);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 3;
        let (model, _) = EdgeModel::train(
            &train[..1000],
            dataset_recognizer(&d),
            &d.bbox,
            cfg,
            &TrainOptions::default(),
        )
        .expect("train");
        (model, d)
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("edge_persist_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let (model, d) = trained();
        let dir = tmp_dir("roundtrip");
        let path = dir.join("model.edge");
        model.save(&path).expect("save");
        let loaded = EdgeModel::load(&path).expect("load");

        let (_, test) = d.paper_split();
        let mut compared = 0;
        for t in test.iter().take(60) {
            let req = PredictRequest::text(&t.text);
            let opts = PredictOptions::default();
            match (model.locate(&req, &opts), loaded.locate(&req, &opts)) {
                (Ok(a), Ok(b)) => {
                    let (a, b) = (a.prediction, b.prediction);
                    assert_eq!(a.point, b.point, "points differ for: {}", t.text);
                    assert_eq!(a.attention, b.attention);
                    assert_eq!(a.mixture.weights(), b.mixture.weights());
                    compared += 1;
                }
                (Err(_), Err(_)) => {}
                _ => panic!("coverage differs after reload"),
            }
        }
        assert!(compared > 20, "compared only {compared}");

        // The saved artifact passes fsck and reports itself as a model.
        let info = inspect_artifact(&path).expect("fsck");
        assert_eq!(info.kind, KIND_MODEL);
        assert_eq!(info.payload_version, FORMAT_VERSION);
        assert!(info.detail.contains("entities"), "{}", info.detail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_wrong_version() {
        let (model, _) = trained();
        let mut doc = model.to_saved().unwrap();
        doc.format_version = 999;
        assert!(matches!(doc.validate(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn load_rejects_inconsistent_shapes() {
        let (model, _) = trained();
        let mut doc = model.to_saved().unwrap();
        doc.features = Matrix::zeros(3, 3);
        assert!(matches!(doc.validate(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn load_rejects_garbage_file() {
        let dir = tmp_dir("garbage");
        // No newline at all: the envelope itself is missing → Corrupt.
        let path = dir.join("garbage.edge");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(EdgeModel::load(&path), Err(PersistError::Corrupt(_))));
        // A header line that is not valid JSON → Format.
        std::fs::write(&path, "{not json\n{}").unwrap();
        assert!(matches!(EdgeModel::load(&path), Err(PersistError::Format(_))));
        // Valid JSON header with the wrong magic → Corrupt.
        std::fs::write(
            &path,
            "{\"magic\":\"NOPE\",\"envelope_version\":1,\"kind\":\"model\",\"payload_bytes\":2,\"crc64\":\"0\"}\n{}",
        )
        .unwrap();
        assert!(matches!(EdgeModel::load(&path), Err(PersistError::Corrupt(_))));
        // Missing file → Io.
        assert!(matches!(EdgeModel::load(dir.join("missing.edge")), Err(PersistError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn envelope_detects_bit_flips_and_truncation() {
        let dir = tmp_dir("flips");
        let path = dir.join("tiny.edge");
        write_artifact(&path, KIND_MODEL, "{\"x\":12345}").unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one bit in the payload: CRC catches it (the payload here is
        // not a valid SavedModel anyway, but the envelope must fail FIRST —
        // corrupt data should never even reach the deserializer).
        let mut flipped = good.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_artifact(&path, KIND_MODEL), Err(PersistError::Corrupt(_))));

        // Truncate: length check catches it.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(matches!(read_artifact(&path, KIND_MODEL), Err(PersistError::Corrupt(_))));

        // Intact file round-trips.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(read_artifact(&path, KIND_MODEL).unwrap(), "{\"x\":12345}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_artifact_rejects_wrong_kind() {
        let dir = tmp_dir("kind");
        let path = dir.join("thing.edge");
        write_artifact(&path, KIND_CHECKPOINT, "{}").unwrap();
        match read_artifact(&path, KIND_MODEL) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("checkpoint"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}", other = other.err()),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_save_leaves_previous_artifact_intact() {
        let _s = edge_faults::FailScenario::setup();
        let dir = tmp_dir("atomic");
        let path = dir.join("artifact.edge");
        write_artifact(&path, KIND_MODEL, "{\"v\":1}").unwrap();

        for (fp, spec) in
            [("persist.save", "err"), ("fsio.write", "partial(10)"), ("fsio.rename", "err")]
        {
            edge_faults::configure(fp, spec).unwrap();
            let err = write_artifact(&path, KIND_MODEL, "{\"v\":2}").unwrap_err();
            assert!(matches!(err, PersistError::Io(_)), "{fp}: {err}");
            edge_faults::remove(fp);
            // The original artifact still verifies and carries the old payload.
            assert_eq!(read_artifact(&path, KIND_MODEL).unwrap(), "{\"v\":1}", "after {fp}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_error_display_and_source() {
        let e = PersistError::Corrupt("boom".into());
        assert!(e.to_string().contains("boom"));
        let io = PersistError::from(std::io::Error::other("disk"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
