//! Model persistence: save a trained [`EdgeModel`] to disk and load it back
//! for inference — the deployment path a real user of this library needs
//! (train once on a crawl, serve predictions later).
//!
//! The format is a single JSON document containing the configuration, the
//! entity inventory, the recognizer gazetteer, the (constant) feature and
//! adjacency matrices and every trained parameter. JSON is deliberately
//! chosen over a binary format: models at the paper's scale are a few tens
//! of megabytes, and an inspectable artifact is worth more than the size
//! savings here.

use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use edge_tensor::tape::{ParamId, ParamStore};
use edge_tensor::{CsrMatrix, Matrix};
use edge_text::EntityRecognizer;

use crate::config::EdgeConfig;
use crate::entity2vec::EntityIndex;
use crate::model::EdgeModel;

/// Errors from saving/loading a model.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Format(serde_json::Error),
    /// The document was readable but internally inconsistent.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file I/O error: {e}"),
            PersistError::Format(e) => write!(f, "model format error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt model: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            PersistError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// The on-disk document. Version-tagged so future format changes can be
/// detected instead of misread.
#[derive(Serialize, Deserialize)]
pub(crate) struct SavedModel {
    pub(crate) format_version: u32,
    pub(crate) config: EdgeConfig,
    pub(crate) ner: EntityRecognizer,
    pub(crate) index: EntityIndex,
    pub(crate) adjacency: CsrMatrix,
    pub(crate) features: Matrix,
    pub(crate) params: ParamStore,
    pub(crate) w_gcn: Vec<ParamId>,
    pub(crate) q1: ParamId,
    pub(crate) b1: ParamId,
    pub(crate) q2: ParamId,
    pub(crate) b2: ParamId,
}

pub(crate) const FORMAT_VERSION: u32 = 1;

impl SavedModel {
    pub(crate) fn validate(&self) -> Result<(), PersistError> {
        if self.format_version != FORMAT_VERSION {
            return Err(PersistError::Corrupt(format!(
                "format version {} (expected {FORMAT_VERSION})",
                self.format_version
            )));
        }
        let n = self.index.len();
        if self.adjacency.rows() != n || self.adjacency.cols() != n {
            return Err(PersistError::Corrupt(format!(
                "adjacency is {}x{} but the index has {n} entities",
                self.adjacency.rows(),
                self.adjacency.cols()
            )));
        }
        if self.features.rows() != n || self.features.cols() != self.config.embed_dim {
            return Err(PersistError::Corrupt(format!(
                "feature matrix is {:?}, expected {n}x{}",
                self.features.shape(),
                self.config.embed_dim
            )));
        }
        let max_param = self
            .w_gcn
            .iter()
            .chain([&self.q1, &self.b1, &self.q2, &self.b2])
            .map(|p| p.0)
            .max()
            .unwrap_or(0);
        if max_param >= self.params.len() {
            return Err(PersistError::Corrupt(format!(
                "parameter id {max_param} out of range ({} stored)",
                self.params.len()
            )));
        }
        if self.w_gcn.len() != self.config.gcn_layers {
            return Err(PersistError::Corrupt(format!(
                "{} GCN weight matrices for {} configured layers",
                self.w_gcn.len(),
                self.config.gcn_layers
            )));
        }
        Ok(())
    }
}

impl EdgeModel {
    /// Saves the trained model to `path` (JSON, version-tagged).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let doc = self.to_saved();
        let json = serde_json::to_string(&doc)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a model saved by [`EdgeModel::save`]. The diffused-embedding
    /// cache is recomputed, so predictions from the loaded model are
    /// bit-identical to the original's.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let json = std::fs::read_to_string(path)?;
        let doc: SavedModel = serde_json::from_str(&json)?;
        doc.validate()?;
        Ok(Self::from_saved(doc))
    }

    fn to_saved(&self) -> SavedModel {
        SavedModel {
            format_version: FORMAT_VERSION,
            config: self.config().clone(),
            ner: self.recognizer().clone(),
            index: self.entity_index().clone(),
            adjacency: self.adjacency_matrix().as_ref().clone(),
            features: self.feature_matrix().clone(),
            params: self.param_store().clone(),
            w_gcn: self.gcn_param_ids().to_vec(),
            q1: self.attention_param_ids().0,
            b1: self.attention_param_ids().1,
            q2: self.head_param_ids().0,
            b2: self.head_param_ids().1,
        }
    }

    fn from_saved(doc: SavedModel) -> Self {
        Self::from_parts(
            doc.config,
            doc.ner,
            doc.index,
            Arc::new(doc.adjacency),
            doc.features,
            doc.params,
            doc.w_gcn,
            doc.q1,
            doc.b1,
            doc.q2,
            doc.b2,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{dataset_recognizer, nyma, PresetSize};

    fn trained() -> (EdgeModel, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 71);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 3;
        let (model, _) = EdgeModel::train(&train[..1000], dataset_recognizer(&d), &d.bbox, cfg);
        (model, d)
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let (model, d) = trained();
        let dir = std::env::temp_dir().join("edge_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).expect("save");
        let loaded = EdgeModel::load(&path).expect("load");

        let (_, test) = d.paper_split();
        let mut compared = 0;
        for t in test.iter().take(60) {
            match (model.predict(&t.text), loaded.predict(&t.text)) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.point, b.point, "points differ for: {}", t.text);
                    assert_eq!(a.attention, b.attention);
                    assert_eq!(a.mixture.weights(), b.mixture.weights());
                    compared += 1;
                }
                (None, None) => {}
                _ => panic!("coverage differs after reload"),
            }
        }
        assert!(compared > 20, "compared only {compared}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_version() {
        let (model, _) = trained();
        let mut doc = model.to_saved();
        doc.format_version = 999;
        assert!(matches!(doc.validate(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn load_rejects_inconsistent_shapes() {
        let (model, _) = trained();
        let mut doc = model.to_saved();
        doc.features = Matrix::zeros(3, 3);
        assert!(matches!(doc.validate(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn load_rejects_garbage_file() {
        let dir = std::env::temp_dir().join("edge_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(EdgeModel::load(&path), Err(PersistError::Format(_))));
        assert!(matches!(EdgeModel::load(dir.join("missing.json")), Err(PersistError::Io(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persist_error_display_and_source() {
        let e = PersistError::Corrupt("boom".into());
        assert!(e.to_string().contains("boom"));
        let io = PersistError::from(std::io::Error::other("disk"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
