//! The EDGE model — Entity-Diffusion Gaussian Ensemble for interpretable
//! tweet geolocation prediction (Hui et al., ICDE 2021).
//!
//! EDGE casts geolocation as learning a bivariate Gaussian mixture per
//! tweet, built from three seamlessly integrated modules:
//!
//! 1. **entity2vec + entity diffusion** ([`entity2vec`], [`gcn`]) — named
//!    entities are embedded as phrases by skip-gram training, then smoothed
//!    over the co-occurrence entity graph by graph convolutions (Eq. 1), so
//!    non-geo-indicative entities absorb the spatial signal of the
//!    geo-indicative entities they co-occur with;
//! 2. **attention aggregation** ([`attention`]) — per-entity importance
//!    weights (Eq. 2–4) collapse a tweet's entity set into one embedding,
//!    preferring fine-grained geo entities;
//! 3. **mixture distribution learning** ([`mdn`], [`model`]) — a linear
//!    head emits mixture parameters (Eq. 5–12), trained end-to-end by
//!    maximizing the likelihood of geo-tagged tweets (Eq. 13) with Adam.
//!
//! Predictions ([`Prediction`]) carry the full mixture, the Eq.-14 point
//! estimate, and per-entity attention weights — the interpretability signal
//! the paper demonstrates in its Figure-7 use case. The Table IV ablations
//! are available as configuration flags ([`EdgeConfig::ablation_no_gcn`],
//! [`EdgeConfig::ablation_sum`], [`EdgeConfig::ablation_no_mixture`]) and
//! the structurally different BOW baseline as [`BowModel`].

pub mod ablation;
pub mod artifact;
pub mod attention;
pub mod checkpoint;
pub mod config;
pub mod entity2vec;
pub mod error;
pub mod gcn;
mod infer;
pub mod mdn;
pub mod model;
pub mod persist;
pub mod predict;

pub use ablation::BowModel;
pub use artifact::{upgrade_artifact, ArtifactLoad, ModelArtifact, QuantMode, SectionInfo};
pub use checkpoint::{load_checkpoint, CheckpointState, Checkpointer};
pub use config::EdgeConfig;
pub use entity2vec::{entity_sentence, run_entity2vec, Entity2Vec, EntityIndex};
pub use error::{PredictError, TrainError};
pub use mdn::{decode_theta, init_head_bias, theta_width};
pub use model::{EdgeModel, Prediction, TrainOptions, TrainReport};
pub use persist::{inspect_artifact, ArtifactInfo, PersistError};
pub use predict::{
    EvalOutcome, Geolocator, PointEval, PredictInput, PredictOptions, PredictRequest,
    PredictResponse, Predictor,
};
