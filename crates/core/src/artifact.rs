//! Zero-copy, memory-mappable model artifacts — the redesigned persistence
//! API behind [`ModelArtifact`].
//!
//! The legacy envelope in [`crate::persist`] deserializes the whole model
//! into owned structs (JSON parse + GCN recompute), which makes a serve
//! replica's cold start scale with model size. This module replaces that
//! path with a page-aligned, section-table binary layout the loader `mmap`s
//! and borrows tensor slices from:
//!
//! ```text
//! ┌─────────────────────────────────────────────────────────────────┐
//! │ header (64 B): "EDGEMAP1" · version u32 · sections u32 ·        │
//! │                table CRC-64 u64 · reserved                      │
//! ├─────────────────────────────────────────────────────────────────┤
//! │ section table: per section tag[8] · dtype u32 · offset u64 ·    │
//! │                len u64 · rows u64 · cols u64 · CRC-64 u64       │
//! ├──────────────── 4096-aligned ───────────────────────────────────┤
//! │ "meta"     json  config · ner · index · param names/shapes ·    │
//! │                  head ids · prior · quant mode                  │
//! │ "params"   f32   attention + head + GCN weights (concatenated)  │
//! │ "smoothed" f32 | f16 | i8   precomputed diffused embeddings     │
//! │ "scales"   f32   per-row absmax scales (int8 artifacts only)    │
//! │ "features" f32   entity2vec X (lazily materialized)             │
//! │ "adj"      json  normalized adjacency (lazily materialized)     │
//! └─────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every multi-byte field is little-endian; every section offset is a page
//! multiple, so `&[u8] → &[f32]` reborrows are always aligned. Each section
//! carries its own CRC-64/XZ, verified at open — the same corruption
//! guarantees as the legacy envelope, at memory speed instead of parse
//! speed.
//!
//! Three properties carry the design:
//!
//! * **Cold start.** The artifact stores the *diffused* embedding table, so
//!   opening skips both the big JSON parse and the `gcn_infer` recompute.
//!   [`ModelArtifact::load_model`] touches only the small `meta` section and
//!   the head parameters; `features`/`adj` materialize lazily (needed only
//!   to re-save or re-train). N replicas mapping one artifact share one
//!   physical copy of the weights through the page cache.
//! * **Bit-identity.** An f32 artifact stores exactly the bytes
//!   `refresh_smoothed` produced at save time, and the inference gather
//!   copies rows from the mapping, so predictions are bit-for-bit identical
//!   to the legacy loader's.
//! * **Quantization.** `--quantize f16|int8` stores the smoothed table as
//!   IEEE binary16 or per-row-absmax int8 ([`edge_tensor::quant`]), with
//!   dequant-on-the-fly in the gather path (AVX2/F16C + scalar, both
//!   bit-identical, `EDGE_NO_SIMD`-respecting).
//!
//! The legacy envelope stays readable forever: [`ModelArtifact::open`]
//! sniffs the magic and falls back to the envelope reader, and `edge-cli
//! fsck --upgrade` rewrites old artifacts in the new format atomically.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use edge_faults::mmap::Mmap;
use edge_faults::{crc64, failpoint, fsio};
use edge_geo::GaussianMixture;
use edge_tensor::quant;
use edge_tensor::tape::{ParamId, ParamStore};
use edge_tensor::{CsrMatrix, Matrix};
use edge_text::EntityRecognizer;

use crate::config::EdgeConfig;
use crate::entity2vec::EntityIndex;
use crate::model::EdgeModel;
use crate::persist::{ArtifactInfo, PersistError};
use crate::predict::Predictor;

/// First 8 bytes of every mapped artifact.
pub const MAP_MAGIC: &[u8; 8] = b"EDGEMAP1";
/// Version of the mapped container layout.
pub const MAP_VERSION: u32 = 1;
/// Model format version carried in the `meta` section (v3 = mmap layout;
/// v2 was the JSON envelope payload).
pub const MAP_FORMAT_VERSION: u32 = 3;

const HEADER_LEN: usize = 64;
const ENTRY_LEN: usize = 56;
const PAGE: usize = 4096;

const TAG_META: [u8; 8] = *b"meta\0\0\0\0";
const TAG_PARAMS: [u8; 8] = *b"params\0\0";
const TAG_SMOOTHED: [u8; 8] = *b"smoothed";
const TAG_SCALES: [u8; 8] = *b"scales\0\0";
const TAG_FEATURES: [u8; 8] = *b"features";
const TAG_ADJ: [u8; 8] = *b"adj\0\0\0\0\0";

const DT_JSON: u32 = 0;
const DT_F32: u32 = 1;
const DT_F16: u32 = 2;
const DT_I8: u32 = 3;

fn dtype_name(dtype: u32) -> &'static str {
    match dtype {
        DT_JSON => "json",
        DT_F32 => "f32",
        DT_F16 => "f16",
        DT_I8 => "i8",
        _ => "unknown",
    }
}

fn tag_name(tag: &[u8; 8]) -> String {
    let end = tag.iter().position(|&b| b == 0).unwrap_or(8);
    String::from_utf8_lossy(&tag[..end]).into_owned()
}

/// How the smoothed-embedding table is encoded in an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Full-precision f32 — bit-identical to the legacy loader.
    #[default]
    None,
    /// IEEE binary16 (half the bytes; decode is exact, encode rounds).
    F16,
    /// Per-row absmax int8 (quarter the bytes; bounded affine error).
    Int8,
}

impl QuantMode {
    /// The CLI / meta-section spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            QuantMode::None => "none",
            QuantMode::F16 => "f16",
            QuantMode::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for QuantMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "none" | "f32" => Ok(QuantMode::None),
            "f16" => Ok(QuantMode::F16),
            "int8" | "i8" => Ok(QuantMode::Int8),
            other => Err(format!("unknown quantization mode {other:?} (none|f16|int8)")),
        }
    }
}

/// One verified row of the section table (what `fsck` prints).
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section tag (`meta`, `params`, `smoothed`, …).
    pub tag: String,
    /// Element type: `json`, `f32`, `f16`, or `i8`.
    pub dtype: String,
    /// Byte offset in the file (always a 4096 multiple).
    pub offset: u64,
    /// Payload length in bytes.
    pub bytes: u64,
    /// Logical row count (0 for JSON sections).
    pub rows: u64,
    /// Logical column count (0 for JSON sections).
    pub cols: u64,
    /// Verified CRC-64/XZ of the payload, in hex.
    pub crc64: String,
}

/// The non-tensor model state, stored as one small JSON section so opening
/// an artifact parses kilobytes, not the whole model.
#[derive(Serialize, Deserialize)]
struct MapMeta {
    format_version: u32,
    quant: String,
    config: EdgeConfig,
    ner: EntityRecognizer,
    index: EntityIndex,
    param_names: Vec<String>,
    param_shapes: Vec<(usize, usize)>,
    w_gcn: Vec<ParamId>,
    q1: ParamId,
    b1: ParamId,
    q2: ParamId,
    b2: ParamId,
    prior: Option<GaussianMixture>,
}

struct Section {
    tag: [u8; 8],
    dtype: u32,
    offset: usize,
    len: usize,
    rows: usize,
    cols: usize,
    crc64: u64,
}

/// An opened, fully CRC-verified mapped artifact. Shared (via `Arc`) by
/// every lazily-materialized view borrowed from it.
pub(crate) struct MappedArtifact {
    map: Mmap,
    sections: Vec<Section>,
    meta: MapMeta,
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

/// JSON sections are stored as raw bytes in the map; they must be UTF-8.
fn json_from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, PersistError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| corrupt(format!("JSON section is not UTF-8: {e}")))?;
    Ok(serde_json::from_str(text)?)
}

fn json_to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, PersistError> {
    Ok(serde_json::to_string(value)?.into_bytes())
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Decodes a little-endian f32 section into owned floats (exact; used for
/// the small eagerly-copied sections and the lazy `features` materialize).
fn le_f32_vec(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// Reborrows a little-endian f32 section zero-copy. Alignment holds by
/// construction: the mapping base is page- (or 8-byte-) aligned and every
/// section offset is a page multiple.
#[cfg(target_endian = "little")]
fn f32_view(bytes: &[u8]) -> &[f32] {
    debug_assert_eq!(bytes.as_ptr() as usize % 4, 0, "section lost its alignment");
    debug_assert_eq!(bytes.len() % 4, 0);
    // SAFETY: any bit pattern is a valid f32; alignment checked above.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f32, bytes.len() / 4) }
}

#[cfg(target_endian = "little")]
fn u16_view(bytes: &[u8]) -> &[u16] {
    debug_assert_eq!(bytes.as_ptr() as usize % 2, 0);
    debug_assert_eq!(bytes.len() % 2, 0);
    // SAFETY: any bit pattern is a valid u16; alignment checked above.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u16, bytes.len() / 2) }
}

fn i8_view(bytes: &[u8]) -> &[i8] {
    // SAFETY: i8 and u8 have identical layout and no invalid patterns.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const i8, bytes.len()) }
}

impl MappedArtifact {
    /// Maps and verifies `path`: magic, version, table CRC, per-section
    /// bounds and CRCs, and the `meta` section's internal consistency.
    /// Damage of any kind is a typed [`PersistError`], never a panic.
    fn open(path: &Path) -> Result<MappedArtifact, PersistError> {
        let map = Mmap::open(path)?;
        let bytes = map.as_slice();
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(format!("file is {} bytes, smaller than the header", bytes.len())));
        }
        if &bytes[..8] != MAP_MAGIC {
            return Err(corrupt("bad magic (not an EDGE mapped artifact)"));
        }
        let version = read_u32(bytes, 8);
        if version != MAP_VERSION {
            return Err(corrupt(format!("mapped version {version} (expected {MAP_VERSION})")));
        }
        let n_sections = read_u32(bytes, 12) as usize;
        let table_crc = read_u64(bytes, 16);
        let table_len = n_sections
            .checked_mul(ENTRY_LEN)
            .ok_or_else(|| corrupt("section count overflows the table"))?;
        let table_end = HEADER_LEN
            .checked_add(table_len)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| corrupt("section table extends past end of file (truncated)"))?;
        let table = &bytes[HEADER_LEN..table_end];
        let actual = crc64::checksum(table);
        if actual != table_crc {
            return Err(corrupt(format!(
                "section table checksum mismatch: computed {actual:016x}, header says {table_crc:016x}"
            )));
        }
        let mut sections = Vec::with_capacity(n_sections);
        for i in 0..n_sections {
            let e = &table[i * ENTRY_LEN..(i + 1) * ENTRY_LEN];
            let mut tag = [0u8; 8];
            tag.copy_from_slice(&e[..8]);
            let sec = Section {
                tag,
                dtype: read_u32(e, 8),
                offset: read_u64(e, 16) as usize,
                len: read_u64(e, 24) as usize,
                rows: read_u64(e, 32) as usize,
                cols: read_u64(e, 40) as usize,
                crc64: read_u64(e, 48),
            };
            if sec.offset % PAGE != 0 {
                return Err(corrupt(format!(
                    "section {:?} offset {} is not page-aligned",
                    tag_name(&sec.tag),
                    sec.offset
                )));
            }
            let end =
                sec.offset.checked_add(sec.len).filter(|&end| end <= bytes.len()).ok_or_else(
                    || {
                        corrupt(format!(
                            "section {:?} extends past end of file (truncated)",
                            tag_name(&sec.tag)
                        ))
                    },
                )?;
            let payload = &bytes[sec.offset..end];
            let actual = crc64::checksum(payload);
            if actual != sec.crc64 {
                return Err(corrupt(format!(
                    "section {:?} checksum mismatch: computed {actual:016x}, table says {:016x}",
                    tag_name(&sec.tag),
                    sec.crc64
                )));
            }
            sections.push(sec);
        }
        let meta_bytes = {
            let sec = sections
                .iter()
                .find(|s| s.tag == TAG_META)
                .ok_or_else(|| corrupt("artifact has no meta section"))?;
            &bytes[sec.offset..sec.offset + sec.len]
        };
        let meta: MapMeta = json_from_slice(meta_bytes)?;
        let artifact = MappedArtifact { map, sections, meta };
        artifact.validate()?;
        Ok(artifact)
    }

    /// The meta-level consistency checks the legacy `SavedModel::validate`
    /// performed, adapted to the sectioned layout.
    fn validate(&self) -> Result<(), PersistError> {
        let meta = &self.meta;
        if meta.format_version != MAP_FORMAT_VERSION {
            return Err(corrupt(format!(
                "format version {} (expected {MAP_FORMAT_VERSION})",
                meta.format_version
            )));
        }
        meta.config.check().map_err(|msg| corrupt(format!("invalid config: {msg}")))?;
        let quant: QuantMode =
            meta.quant.parse().map_err(|e: String| corrupt(format!("meta quant: {e}")))?;
        if meta.param_names.len() != meta.param_shapes.len() {
            return Err(corrupt("param name/shape lists disagree"));
        }
        let max_param = meta
            .w_gcn
            .iter()
            .chain([&meta.q1, &meta.b1, &meta.q2, &meta.b2])
            .map(|p| p.0)
            .max()
            .unwrap_or(0);
        if max_param >= meta.param_shapes.len() {
            return Err(corrupt(format!(
                "parameter id {max_param} out of range ({} stored)",
                meta.param_shapes.len()
            )));
        }
        if meta.w_gcn.len() != meta.config.gcn_layers {
            return Err(corrupt(format!(
                "{} GCN weight matrices for {} configured layers",
                meta.w_gcn.len(),
                meta.config.gcn_layers
            )));
        }
        let n = meta.index.len();
        let h_dim =
            if meta.config.use_gcn { meta.config.hidden_dim } else { meta.config.embed_dim };
        let params = self.require(TAG_PARAMS, DT_F32)?;
        let total: usize = meta.param_shapes.iter().map(|&(r, c)| r * c).sum();
        if params.len != total * 4 {
            return Err(corrupt(format!(
                "params section is {} bytes, shapes sum to {}",
                params.len,
                total * 4
            )));
        }
        let smoothed_dtype = match quant {
            QuantMode::None => DT_F32,
            QuantMode::F16 => DT_F16,
            QuantMode::Int8 => DT_I8,
        };
        let smoothed = self.require(TAG_SMOOTHED, smoothed_dtype)?;
        if smoothed.rows != n || smoothed.cols != h_dim {
            return Err(corrupt(format!(
                "smoothed table is {}x{}, expected {n}x{h_dim}",
                smoothed.rows, smoothed.cols
            )));
        }
        let elem = match smoothed_dtype {
            DT_F32 => 4,
            DT_F16 => 2,
            _ => 1,
        };
        if smoothed.len != n * h_dim * elem {
            return Err(corrupt(format!(
                "smoothed section is {} bytes for a {n}x{h_dim} {} table",
                smoothed.len,
                dtype_name(smoothed_dtype)
            )));
        }
        if quant == QuantMode::Int8 {
            let scales = self.require(TAG_SCALES, DT_F32)?;
            if scales.len != n * 4 {
                return Err(corrupt(format!(
                    "scales section is {} bytes for {n} rows",
                    scales.len
                )));
            }
        }
        let feat = self.require(TAG_FEATURES, DT_F32)?;
        if feat.rows != n || feat.cols != meta.config.embed_dim {
            return Err(corrupt(format!(
                "feature matrix is {}x{}, expected {n}x{}",
                feat.rows, feat.cols, meta.config.embed_dim
            )));
        }
        if feat.len != feat.rows * feat.cols * 4 {
            return Err(corrupt("feature section length disagrees with its shape"));
        }
        self.require(TAG_ADJ, DT_JSON)?;
        Ok(())
    }

    fn require(&self, tag: [u8; 8], dtype: u32) -> Result<&Section, PersistError> {
        let sec = self
            .sections
            .iter()
            .find(|s| s.tag == tag)
            .ok_or_else(|| corrupt(format!("artifact has no {:?} section", tag_name(&tag))))?;
        if sec.dtype != dtype {
            return Err(corrupt(format!(
                "section {:?} is {}, expected {}",
                tag_name(&tag),
                dtype_name(sec.dtype),
                dtype_name(dtype)
            )));
        }
        Ok(sec)
    }

    fn bytes_of(&self, sec: &Section) -> &[u8] {
        &self.map.as_slice()[sec.offset..sec.offset + sec.len]
    }

    fn tagged_bytes(&self, tag: [u8; 8]) -> &[u8] {
        // Presence was proven by validate(); unwrap is unreachable.
        let sec = self.sections.iter().find(|s| s.tag == tag).expect("validated section");
        self.bytes_of(sec)
    }

    fn quant(&self) -> QuantMode {
        self.meta.quant.parse().expect("validated quant mode")
    }

    fn section_infos(&self) -> Vec<SectionInfo> {
        self.sections
            .iter()
            .map(|s| SectionInfo {
                tag: tag_name(&s.tag),
                dtype: dtype_name(s.dtype).to_string(),
                offset: s.offset as u64,
                bytes: s.len as u64,
                rows: s.rows as u64,
                cols: s.cols as u64,
                crc64: format!("{:016x}", s.crc64),
            })
            .collect()
    }
}

/// The diffused-embedding table an [`EdgeModel`] predicts from: either an
/// owned matrix (trained / legacy-loaded models) or a borrowed view of a
/// mapped artifact section, dequantized on the fly during the per-call row
/// gather in `infer` (where rows are copied into scratch anyway, so
/// dequantization rides the existing copy).
pub(crate) enum SmoothedStore {
    Owned(Matrix),
    MappedF32 { artifact: Arc<MappedArtifact> },
    MappedF16 { artifact: Arc<MappedArtifact> },
    MappedI8 { artifact: Arc<MappedArtifact>, scales: Vec<f32> },
}

impl SmoothedStore {
    fn shape(&self) -> (usize, usize) {
        match self {
            SmoothedStore::Owned(m) => m.shape(),
            SmoothedStore::MappedF32 { artifact }
            | SmoothedStore::MappedF16 { artifact }
            | SmoothedStore::MappedI8 { artifact, .. } => {
                let sec = artifact
                    .sections
                    .iter()
                    .find(|s| s.tag == TAG_SMOOTHED)
                    .expect("validated section");
                (sec.rows, sec.cols)
            }
        }
    }

    pub(crate) fn rows(&self) -> usize {
        self.shape().0
    }

    pub(crate) fn cols(&self) -> usize {
        self.shape().1
    }

    /// Gathers `indices` into the rows of `out` (`out` is
    /// `indices.len() × cols`), dequantizing on the fly for quantized
    /// stores. The f32 paths copy bytes verbatim, so mapped-f32 inference
    /// is bit-identical to owned inference.
    pub(crate) fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        let cols = self.cols();
        match self {
            SmoothedStore::Owned(m) => m.gather_rows_into(indices, out),
            SmoothedStore::MappedF32 { artifact } => {
                let table = f32_view(artifact.tagged_bytes(TAG_SMOOTHED));
                for (k, &i) in indices.iter().enumerate() {
                    out.row_mut(k).copy_from_slice(&table[i * cols..(i + 1) * cols]);
                }
            }
            SmoothedStore::MappedF16 { artifact } => {
                let table = u16_view(artifact.tagged_bytes(TAG_SMOOTHED));
                for (k, &i) in indices.iter().enumerate() {
                    quant::decode_f16_into(&table[i * cols..(i + 1) * cols], out.row_mut(k));
                }
            }
            SmoothedStore::MappedI8 { artifact, scales } => {
                let table = i8_view(artifact.tagged_bytes(TAG_SMOOTHED));
                for (k, &i) in indices.iter().enumerate() {
                    quant::dequant_i8_into(
                        &table[i * cols..(i + 1) * cols],
                        scales[i],
                        out.row_mut(k),
                    );
                }
            }
        }
    }

    /// One decoded row as owned floats (the `smoothed_embedding` accessor).
    pub(crate) fn row_to_vec(&self, idx: usize) -> Vec<f32> {
        let cols = self.cols();
        let mut out = vec![0f32; cols];
        match self {
            SmoothedStore::Owned(m) => out.copy_from_slice(m.row(idx)),
            SmoothedStore::MappedF32 { artifact } => {
                let table = f32_view(artifact.tagged_bytes(TAG_SMOOTHED));
                out.copy_from_slice(&table[idx * cols..(idx + 1) * cols]);
            }
            SmoothedStore::MappedF16 { artifact } => {
                let table = u16_view(artifact.tagged_bytes(TAG_SMOOTHED));
                quant::decode_f16_into(&table[idx * cols..(idx + 1) * cols], &mut out);
            }
            SmoothedStore::MappedI8 { artifact, scales } => {
                let table = i8_view(artifact.tagged_bytes(TAG_SMOOTHED));
                quant::dequant_i8_into(&table[idx * cols..(idx + 1) * cols], scales[idx], &mut out);
            }
        }
        out
    }

    /// The whole table, decoded to an owned f32 matrix (re-save paths).
    fn to_matrix(&self) -> Matrix {
        let (rows, cols) = self.shape();
        match self {
            SmoothedStore::Owned(m) => m.clone(),
            _ => {
                let mut out = Matrix::zeros(rows, cols);
                let indices: Vec<usize> = (0..rows).collect();
                self.gather_rows_into(&indices, &mut out);
                out
            }
        }
    }
}

/// The entity2vec feature matrix, materialized from its artifact section
/// on first touch (training and re-save need it; inference never does).
pub(crate) enum LazyFeatures {
    Ready(Arc<Matrix>),
    Mapped { artifact: Arc<MappedArtifact>, cell: OnceLock<Arc<Matrix>> },
}

impl LazyFeatures {
    /// Materialization is infallible: the section's shape and checksum
    /// were verified at open, and byte → f32 decoding is total.
    pub(crate) fn get(&self) -> &Arc<Matrix> {
        match self {
            LazyFeatures::Ready(m) => m,
            LazyFeatures::Mapped { artifact, cell } => cell.get_or_init(|| {
                let sec = artifact.require(TAG_FEATURES, DT_F32).expect("validated section");
                let data = le_f32_vec(artifact.bytes_of(sec));
                Arc::new(Matrix::from_vec(sec.rows, sec.cols, data))
            }),
        }
    }
}

/// The normalized adjacency operator, parsed from its artifact section on
/// first touch.
pub(crate) enum LazyAdjacency {
    Ready(Arc<CsrMatrix>),
    Mapped { artifact: Arc<MappedArtifact>, cell: OnceLock<Arc<CsrMatrix>> },
}

impl LazyAdjacency {
    /// Fallible materialization for the save paths: the section CRC was
    /// verified at open, but the JSON inside is parsed only here.
    pub(crate) fn try_get(&self) -> Result<&Arc<CsrMatrix>, PersistError> {
        match self {
            LazyAdjacency::Ready(m) => Ok(m),
            LazyAdjacency::Mapped { artifact, cell } => {
                if let Some(m) = cell.get() {
                    return Ok(m);
                }
                let parsed: CsrMatrix = json_from_slice(artifact.tagged_bytes(TAG_ADJ))?;
                Ok(cell.get_or_init(|| Arc::new(parsed)))
            }
        }
    }

    /// Infallible accessor for non-persistence callers. A CRC-valid
    /// artifact whose adjacency JSON fails to parse can only come from a
    /// writer bug; `fsck` parses it eagerly and reports it as corruption.
    pub(crate) fn get(&self) -> &Arc<CsrMatrix> {
        self.try_get().expect("artifact adjacency section unreadable despite verified checksum")
    }
}

/// A model artifact opened for loading — the unified entry point over both
/// the mmap layout and the legacy JSON envelope (sniffed by magic).
pub struct ModelArtifact {
    path: PathBuf,
    repr: Repr,
}

enum Repr {
    Mapped(Arc<MappedArtifact>),
    Legacy { payload: String },
}

impl ModelArtifact {
    /// Opens and verifies the artifact at `path`. Mapped artifacts verify
    /// the section table and every section CRC; legacy envelopes verify
    /// the envelope checksum exactly as before.
    pub fn open(path: impl AsRef<Path>) -> Result<ModelArtifact, PersistError> {
        let path = path.as_ref();
        let repr = if is_mapped_file(path)? {
            Repr::Mapped(Arc::new(MappedArtifact::open(path)?))
        } else {
            Repr::Legacy {
                payload: crate::persist::read_artifact(path, crate::persist::KIND_MODEL)?,
            }
        };
        Ok(ModelArtifact { path: path.to_path_buf(), repr })
    }

    /// The path this artifact was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether this is the zero-copy mmap layout (vs the legacy envelope).
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped(_))
    }

    /// How the inference weights are encoded.
    pub fn quant(&self) -> QuantMode {
        match &self.repr {
            Repr::Mapped(a) => a.quant(),
            Repr::Legacy { .. } => QuantMode::None,
        }
    }

    /// Loads the model. On a mapped artifact this parses only the small
    /// meta section and copies the head parameters — the embedding table
    /// stays borrowed from the mapping (dequantized per gather), and
    /// `features`/`adj` materialize lazily on first (re-)save or retrain.
    pub fn load_model(&self) -> Result<EdgeModel, PersistError> {
        match &self.repr {
            Repr::Mapped(artifact) => load_mapped_model(artifact),
            Repr::Legacy { payload } => {
                let doc: crate::persist::SavedModel = serde_json::from_str(payload)?;
                doc.validate()?;
                Ok(EdgeModel::from_saved(doc))
            }
        }
    }
}

/// Open-then-load in one trait, so every call site — CLI, serve, bench,
/// baselines behind [`Predictor`] — shares one loading idiom regardless of
/// the concrete model type (the PR-5 `Predictor` migration pattern).
pub trait ArtifactLoad: Sized {
    /// Builds `Self` from an opened artifact.
    fn load_from_artifact(artifact: &ModelArtifact) -> Result<Self, PersistError>;

    /// Opens `path` and loads in one step.
    fn load_artifact(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        ModelArtifact::open(path).and_then(|a| Self::load_from_artifact(&a))
    }
}

impl ArtifactLoad for EdgeModel {
    fn load_from_artifact(artifact: &ModelArtifact) -> Result<Self, PersistError> {
        artifact.load_model()
    }
}

/// Type-erased loading for callers that serve any [`Predictor`].
impl ArtifactLoad for Box<dyn Predictor + Send + Sync> {
    fn load_from_artifact(artifact: &ModelArtifact) -> Result<Self, PersistError> {
        Ok(Box::new(artifact.load_model()?))
    }
}

fn is_mapped_file(path: &Path) -> Result<bool, PersistError> {
    use std::io::Read;
    let mut head = [0u8; 8];
    let mut file = std::fs::File::open(path)?;
    match file.read_exact(&mut head) {
        Ok(()) => Ok(&head == MAP_MAGIC),
        // Shorter than 8 bytes: not mapped; let the legacy reader produce
        // its (typed) corruption error.
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e.into()),
    }
}

fn load_mapped_model(artifact: &Arc<MappedArtifact>) -> Result<EdgeModel, PersistError> {
    let meta = &artifact.meta;
    // Head + GCN parameters: eagerly copied from the raw f32 section
    // (kilobytes; bit-exact, no JSON float round-trip).
    let bytes = artifact.tagged_bytes(TAG_PARAMS);
    let mut params = ParamStore::new();
    let mut at = 0usize;
    for (name, &(r, c)) in meta.param_names.iter().zip(&meta.param_shapes) {
        let len = r * c * 4;
        let data = le_f32_vec(&bytes[at..at + len]);
        params.add(name.clone(), Matrix::from_vec(r, c, data));
        at += len;
    }
    let smoothed = make_smoothed(artifact)?;
    let features = LazyFeatures::Mapped { artifact: Arc::clone(artifact), cell: OnceLock::new() };
    let adjacency = LazyAdjacency::Mapped { artifact: Arc::clone(artifact), cell: OnceLock::new() };
    Ok(EdgeModel::from_stores(
        meta.config.clone(),
        meta.ner.clone(),
        meta.index.clone(),
        adjacency,
        features,
        params,
        meta.w_gcn.clone(),
        meta.q1,
        meta.b1,
        meta.q2,
        meta.b2,
        smoothed,
        meta.prior.clone(),
    ))
}

#[cfg(target_endian = "little")]
fn make_smoothed(artifact: &Arc<MappedArtifact>) -> Result<SmoothedStore, PersistError> {
    Ok(match artifact.quant() {
        QuantMode::None => SmoothedStore::MappedF32 { artifact: Arc::clone(artifact) },
        QuantMode::F16 => SmoothedStore::MappedF16 { artifact: Arc::clone(artifact) },
        QuantMode::Int8 => SmoothedStore::MappedI8 {
            artifact: Arc::clone(artifact),
            scales: le_f32_vec(artifact.tagged_bytes(TAG_SCALES)),
        },
    })
}

/// Big-endian fallback: decode every table into owned memory (the mapped
/// layout is little-endian on disk).
#[cfg(target_endian = "big")]
fn make_smoothed(artifact: &Arc<MappedArtifact>) -> Result<SmoothedStore, PersistError> {
    let sec = artifact.require(
        TAG_SMOOTHED,
        match artifact.quant() {
            QuantMode::None => DT_F32,
            QuantMode::F16 => DT_F16,
            QuantMode::Int8 => DT_I8,
        },
    )?;
    let (rows, cols) = (sec.rows, sec.cols);
    let bytes = artifact.bytes_of(sec);
    let data = match artifact.quant() {
        QuantMode::None => le_f32_vec(bytes),
        QuantMode::F16 => bytes
            .chunks_exact(2)
            .map(|c| quant::f16_to_f32(u16::from_le_bytes([c[0], c[1]])))
            .collect(),
        QuantMode::Int8 => {
            let scales = le_f32_vec(artifact.tagged_bytes(TAG_SCALES));
            let codes = i8_view(bytes);
            let mut data = vec![0f32; rows * cols];
            for r in 0..rows {
                quant::dequant_i8_into(
                    &codes[r * cols..(r + 1) * cols],
                    scales[r],
                    &mut data[r * cols..(r + 1) * cols],
                );
            }
            data
        }
    };
    Ok(SmoothedStore::Owned(Matrix::from_vec(rows, cols, data)))
}

fn f32_le_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

struct SectionSpec {
    tag: [u8; 8],
    dtype: u32,
    rows: usize,
    cols: usize,
    bytes: Vec<u8>,
}

fn assemble(specs: &[SectionSpec]) -> Vec<u8> {
    let table_end = HEADER_LEN + specs.len() * ENTRY_LEN;
    let mut offsets = Vec::with_capacity(specs.len());
    let mut at = table_end.next_multiple_of(PAGE);
    for s in specs {
        offsets.push(at);
        at = (at + s.bytes.len()).next_multiple_of(PAGE);
    }
    let total = offsets.last().map_or(table_end, |&o| o + specs.last().unwrap().bytes.len());

    let mut table = Vec::with_capacity(specs.len() * ENTRY_LEN);
    for (s, &offset) in specs.iter().zip(&offsets) {
        table.extend_from_slice(&s.tag);
        table.extend_from_slice(&s.dtype.to_le_bytes());
        table.extend_from_slice(&0u32.to_le_bytes());
        table.extend_from_slice(&(offset as u64).to_le_bytes());
        table.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
        table.extend_from_slice(&(s.rows as u64).to_le_bytes());
        table.extend_from_slice(&(s.cols as u64).to_le_bytes());
        table.extend_from_slice(&crc64::checksum(&s.bytes).to_le_bytes());
    }

    let mut out = vec![0u8; total];
    out[..8].copy_from_slice(MAP_MAGIC);
    out[8..12].copy_from_slice(&MAP_VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&(specs.len() as u32).to_le_bytes());
    out[16..24].copy_from_slice(&crc64::checksum(&table).to_le_bytes());
    out[HEADER_LEN..HEADER_LEN + table.len()].copy_from_slice(&table);
    for (s, &offset) in specs.iter().zip(&offsets) {
        out[offset..offset + s.bytes.len()].copy_from_slice(&s.bytes);
    }
    out
}

impl EdgeModel {
    /// Saves this model in the zero-copy mapped layout, quantizing the
    /// smoothed-embedding table per `quant`. Crash-safe like every other
    /// artifact write (temp file + fsync + atomic rename), and re-saving
    /// an already-quantized model in its own mode copies the stored codes
    /// verbatim (lossless re-save).
    ///
    /// Failpoint: `persist.save` (shared with the legacy writer).
    pub fn save_artifact(
        &self,
        path: impl AsRef<Path>,
        quant: QuantMode,
    ) -> Result<(), PersistError> {
        failpoint!("persist.save");
        let bytes = self.to_mapped_bytes(quant)?;
        fsio::atomic_write(path, &bytes)?;
        Ok(())
    }

    fn to_mapped_bytes(&self, quant: QuantMode) -> Result<Vec<u8>, PersistError> {
        let store = self.smoothed_store();
        let (rows, cols) = (store.rows(), store.cols());

        let mut param_names = Vec::new();
        let mut param_shapes = Vec::new();
        let mut param_bytes = Vec::new();
        for (_, name, m) in self.param_store().iter() {
            param_names.push(name.to_string());
            param_shapes.push((m.rows(), m.cols()));
            param_bytes.extend_from_slice(&f32_le_bytes(m.data()));
        }

        let meta = MapMeta {
            format_version: MAP_FORMAT_VERSION,
            quant: quant.as_str().to_string(),
            config: self.config().clone(),
            ner: self.recognizer().clone(),
            index: self.entity_index().clone(),
            param_names,
            param_shapes,
            w_gcn: self.gcn_param_ids().to_vec(),
            q1: self.attention_param_ids().0,
            b1: self.attention_param_ids().1,
            q2: self.head_param_ids().0,
            b2: self.head_param_ids().1,
            prior: self.prior().cloned(),
        };

        let mut specs = vec![
            SectionSpec {
                tag: TAG_META,
                dtype: DT_JSON,
                rows: 0,
                cols: 0,
                bytes: json_to_vec(&meta)?,
            },
            SectionSpec { tag: TAG_PARAMS, dtype: DT_F32, rows: 0, cols: 0, bytes: param_bytes },
        ];

        match (quant, store) {
            // Lossless re-save: copy the stored codes byte-for-byte.
            (QuantMode::F16, SmoothedStore::MappedF16 { artifact }) => {
                specs.push(SectionSpec {
                    tag: TAG_SMOOTHED,
                    dtype: DT_F16,
                    rows,
                    cols,
                    bytes: artifact.tagged_bytes(TAG_SMOOTHED).to_vec(),
                });
            }
            (QuantMode::Int8, SmoothedStore::MappedI8 { artifact, .. }) => {
                specs.push(SectionSpec {
                    tag: TAG_SMOOTHED,
                    dtype: DT_I8,
                    rows,
                    cols,
                    bytes: artifact.tagged_bytes(TAG_SMOOTHED).to_vec(),
                });
                specs.push(SectionSpec {
                    tag: TAG_SCALES,
                    dtype: DT_F32,
                    rows,
                    cols: 1,
                    bytes: artifact.tagged_bytes(TAG_SCALES).to_vec(),
                });
            }
            (quant, store) => {
                let table = store.to_matrix();
                match quant {
                    QuantMode::None => specs.push(SectionSpec {
                        tag: TAG_SMOOTHED,
                        dtype: DT_F32,
                        rows,
                        cols,
                        bytes: f32_le_bytes(table.data()),
                    }),
                    QuantMode::F16 => {
                        let codes = quant::encode_f16(table.data());
                        let mut bytes = Vec::with_capacity(codes.len() * 2);
                        for c in &codes {
                            bytes.extend_from_slice(&c.to_le_bytes());
                        }
                        specs.push(SectionSpec {
                            tag: TAG_SMOOTHED,
                            dtype: DT_F16,
                            rows,
                            cols,
                            bytes,
                        });
                    }
                    QuantMode::Int8 => {
                        let (codes, scales) = quant::quantize_rows_i8(table.data(), rows, cols);
                        specs.push(SectionSpec {
                            tag: TAG_SMOOTHED,
                            dtype: DT_I8,
                            rows,
                            cols,
                            bytes: codes.iter().map(|&q| q as u8).collect(),
                        });
                        specs.push(SectionSpec {
                            tag: TAG_SCALES,
                            dtype: DT_F32,
                            rows,
                            cols: 1,
                            bytes: f32_le_bytes(&scales),
                        });
                    }
                }
            }
        }

        let feat = self.feature_matrix();
        specs.push(SectionSpec {
            tag: TAG_FEATURES,
            dtype: DT_F32,
            rows: feat.rows(),
            cols: feat.cols(),
            bytes: f32_le_bytes(feat.data()),
        });
        specs.push(SectionSpec {
            tag: TAG_ADJ,
            dtype: DT_JSON,
            rows: 0,
            cols: 0,
            bytes: json_to_vec(self.try_adjacency()?.as_ref())?,
        });

        Ok(assemble(&specs))
    }
}

/// Rewrites the artifact at `path` (legacy or mapped) in the mapped layout
/// at `out`, optionally (re-)quantizing — the `fsck --upgrade` migration.
/// `out` may equal `path`: the write is atomic, so the original survives
/// any failure.
pub fn upgrade_artifact(
    path: impl AsRef<Path>,
    out: impl AsRef<Path>,
    quant: QuantMode,
) -> Result<ArtifactInfo, PersistError> {
    let model = ModelArtifact::open(&path)?.load_model()?;
    model.save_artifact(&out, quant)?;
    crate::persist::inspect_artifact(&out)
}

/// Full verification of a mapped artifact for `fsck`: every CRC, the meta
/// consistency checks, plus an eager parse of the lazy sections (shapes of
/// `features`, JSON of `adj`) that normal loading defers.
pub(crate) fn inspect_mapped(path: &Path) -> Result<ArtifactInfo, PersistError> {
    let artifact = Arc::new(MappedArtifact::open(path)?);
    // Parse what load_model defers, so fsck vouches for the whole file.
    let adj: CsrMatrix = json_from_slice(artifact.tagged_bytes(TAG_ADJ))?;
    let n = artifact.meta.index.len();
    if adj.rows() != n || adj.cols() != n {
        return Err(corrupt(format!(
            "adjacency is {}x{} but the index has {n} entities",
            adj.rows(),
            adj.cols()
        )));
    }
    let meta = &artifact.meta;
    let detail = format!(
        "model (mmap, quant={}): {} entities, {} parameter matrices, {} GCN layers, prior {}",
        meta.quant,
        meta.index.len(),
        meta.param_names.len(),
        meta.w_gcn.len(),
        if meta.prior.is_some() { "present" } else { "absent" }
    );
    Ok(ArtifactInfo {
        kind: crate::persist::KIND_MODEL.to_string(),
        envelope_version: MAP_VERSION,
        payload_bytes: artifact.map.len(),
        crc64: {
            let table = &artifact.map.as_slice()
                [HEADER_LEN..HEADER_LEN + artifact.sections.len() * ENTRY_LEN];
            format!("{:016x}", crc64::checksum(table))
        },
        payload_version: meta.format_version,
        detail,
        quant: Some(meta.quant.clone()),
        sections: artifact.section_infos(),
    })
}

/// Whether the file at `path` starts with the mapped magic (no
/// verification; used by `inspect_artifact` to route).
pub(crate) fn sniff_mapped(path: &Path) -> Result<bool, PersistError> {
    is_mapped_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainOptions;
    use crate::predict::{PredictOptions, PredictRequest};
    use edge_data::{dataset_recognizer, nyma, PresetSize};

    fn trained() -> (EdgeModel, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 71);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 3;
        let (model, _) = EdgeModel::train(
            &train[..1000],
            dataset_recognizer(&d),
            &d.bbox,
            cfg,
            &TrainOptions::default(),
        )
        .expect("train");
        (model, d)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edge_artifact_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Compares predictions over the test split; returns (compared, mean km
    /// between the two models' point estimates).
    fn compare_predictions(a: &EdgeModel, b: &EdgeModel, d: &edge_data::Dataset) -> (usize, f64) {
        let (_, test) = d.paper_split();
        let opts = PredictOptions::default();
        let (mut compared, mut total_km) = (0usize, 0.0f64);
        for t in test.iter().take(80) {
            let req = PredictRequest::text(&t.text);
            match (a.locate(&req, &opts), b.locate(&req, &opts)) {
                (Ok(pa), Ok(pb)) => {
                    total_km += pa.prediction.point.haversine_km(&pb.prediction.point);
                    compared += 1;
                }
                (Err(_), Err(_)) => {}
                _ => panic!("coverage differs between encodings"),
            }
        }
        assert!(compared > 20, "compared only {compared}");
        (compared, total_km / compared as f64)
    }

    #[test]
    fn mapped_f32_round_trip_is_bit_identical() {
        let (model, d) = trained();
        let dir = tmp_dir("f32");
        let legacy = dir.join("legacy.edge");
        let mapped = dir.join("model.edgemap");
        #[allow(deprecated)]
        model.save(&legacy).expect("legacy save");
        model.save_artifact(&mapped, QuantMode::None).expect("mapped save");

        let art = ModelArtifact::open(&mapped).expect("open");
        assert!(art.is_mapped());
        assert_eq!(art.quant(), QuantMode::None);
        let via_map = art.load_model().expect("load");
        #[allow(deprecated)]
        let via_legacy = EdgeModel::load(&legacy).expect("legacy load");

        let (_, test) = d.paper_split();
        let opts = PredictOptions::default();
        let mut compared = 0;
        for t in test.iter().take(80) {
            let req = PredictRequest::text(&t.text);
            match (via_legacy.locate(&req, &opts), via_map.locate(&req, &opts)) {
                (Ok(a), Ok(b)) => {
                    let (a, b) = (a.prediction, b.prediction);
                    assert_eq!(a.point, b.point, "points differ for: {}", t.text);
                    assert_eq!(a.attention, b.attention);
                    assert_eq!(a.mixture.weights(), b.mixture.weights());
                    compared += 1;
                }
                (Err(_), Err(_)) => {}
                _ => panic!("coverage differs after mmap reload"),
            }
        }
        assert!(compared > 20, "compared only {compared}");

        // fsck understands the new format: section table + quant mode.
        let info = crate::persist::inspect_artifact(&mapped).expect("fsck");
        assert_eq!(info.quant.as_deref(), Some("none"));
        let tags: Vec<&str> = info.sections.iter().map(|s| s.tag.as_str()).collect();
        assert!(tags.contains(&"meta") && tags.contains(&"smoothed"), "{tags:?}");
        assert!(info.detail.contains("mmap"), "{}", info.detail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_round_trips_have_bounded_drift() {
        let (model, d) = trained();
        let dir = tmp_dir("quant");
        for (quant, bound_km) in [(QuantMode::F16, 5.0), (QuantMode::Int8, 25.0)] {
            let path = dir.join(format!("model.{quant}"));
            model.save_artifact(&path, quant).expect("save");
            let art = ModelArtifact::open(&path).expect("open");
            assert_eq!(art.quant(), quant);
            let loaded = art.load_model().expect("load");
            let (_, mean_km) = compare_predictions(&model, &loaded, &d);
            assert!(mean_km < bound_km, "{quant} drifted {mean_km:.3} km (bound {bound_km})");

            // Re-saving a quantized model in its own mode is lossless.
            let resaved = dir.join(format!("resave.{quant}"));
            loaded.save_artifact(&resaved, quant).expect("re-save");
            let again =
                ModelArtifact::open(&resaved).expect("reopen").load_model().expect("reload");
            let (_, drift) = compare_predictions(&loaded, &again, &d);
            assert_eq!(drift, 0.0, "{quant} re-save was not lossless");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn upgrade_rewrites_legacy_envelope_in_place() {
        let (model, d) = trained();
        let dir = tmp_dir("upgrade");
        let path = dir.join("model.edge");
        #[allow(deprecated)]
        model.save(&path).expect("legacy save");
        assert!(!ModelArtifact::open(&path).unwrap().is_mapped());

        let info = upgrade_artifact(&path, &path, QuantMode::None).expect("upgrade");
        assert_eq!(info.quant.as_deref(), Some("none"));
        let art = ModelArtifact::open(&path).expect("open upgraded");
        assert!(art.is_mapped());
        let upgraded = art.load_model().expect("load");
        let (_, drift) = compare_predictions(&model, &upgraded, &d);
        assert_eq!(drift, 0.0, "upgrade changed predictions");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_load_trait_serves_predictors() {
        let (model, _) = trained();
        let dir = tmp_dir("trait");
        let path = dir.join("model.edgemap");
        model.save_artifact(&path, QuantMode::F16).expect("save");
        let boxed: Box<dyn Predictor + Send + Sync> =
            ArtifactLoad::load_artifact(&path).expect("predictor load");
        let got = boxed.locate(
            &PredictRequest::text("from manhattan to brooklyn"),
            &PredictOptions::default(),
        );
        // Either outcome is fine; the point is the trait object works.
        let _ = got;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_corruption_without_panicking() {
        let (model, _) = trained();
        let dir = tmp_dir("corrupt");
        let path = dir.join("model.edgemap");
        model.save_artifact(&path, QuantMode::None).expect("save");
        let pristine = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bytes = pristine.clone();
        bytes[0] ^= 0xff;
        let bad = dir.join("magic.edgemap");
        std::fs::write(&bad, &bytes).unwrap();
        // Magic no longer matches → routed to the legacy reader → typed error
        // (either at open, if the bytes aren't UTF-8, or at load).
        assert!(ModelArtifact::open(&bad).and_then(|a| a.load_model()).is_err());

        // Truncations at every stage: header, table, payload.
        for cut in [5, HEADER_LEN - 1, HEADER_LEN + 10, pristine.len() / 2, pristine.len() - 3] {
            let t = dir.join(format!("trunc{cut}.edgemap"));
            std::fs::write(&t, &pristine[..cut]).unwrap();
            let got = ModelArtifact::open(&t).and_then(|a| a.load_model());
            assert!(got.is_err(), "truncation at {cut} loaded");
        }

        // A bit flip in the table or inside any section payload trips a
        // CRC (bytes in inter-section page padding carry no meaning and are
        // deliberately not covered).
        let info = crate::persist::inspect_artifact(&path).expect("fsck");
        let mut flip_sites = vec![HEADER_LEN + 4];
        flip_sites.extend(info.sections.iter().map(|s| (s.offset + s.bytes / 2) as usize));
        for at in flip_sites {
            let mut bytes = pristine.clone();
            bytes[at] ^= 0x10;
            let f = dir.join(format!("flip{at}.edgemap"));
            std::fs::write(&f, &bytes).unwrap();
            let got = ModelArtifact::open(&f).and_then(|a| a.load_model());
            assert!(
                matches!(got, Err(PersistError::Corrupt(_)) | Err(PersistError::Format(_))),
                "bit flip at {at} not caught: {got:?}"
            );
        }

        // The pristine copy still loads after all that.
        ModelArtifact::open(&path).unwrap().load_model().expect("pristine");
        std::fs::remove_dir_all(&dir).ok();
    }
}
