//! EDGE model configuration.

use edge_embed::SgnsConfig;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the EDGE model and its training loop.
///
/// [`EdgeConfig::paper`] reproduces the paper's defaults (Section IV-B):
/// embedding length 400, two graph-convolution layers, M = 4 Gaussian
/// components, Adam with learning rate 0.01 and weight decay 0.01.
/// [`EdgeConfig::fast`] is the scaled-down profile used by the CPU
/// experiment harness (dimension 64; identical structure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// entity2vec embedding length (`d`).
    pub embed_dim: usize,
    /// GCN layer width; the smoothed embeddings keep this dimension.
    pub hidden_dim: usize,
    /// Number of graph-convolution layers (`n`-hop diffusion).
    pub gcn_layers: usize,
    /// Number of Gaussian mixture components `M`.
    pub n_components: usize,
    /// Entity-diffusion switch; `false` gives the NoGCN ablation.
    pub use_gcn: bool,
    /// Attention-aggregation switch; `false` sums entity embeddings
    /// instead (the SUM ablation).
    pub use_attention: bool,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (tweets per step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Adam decoupled weight decay.
    pub weight_decay: f32,
    /// entity2vec (SGNS) training configuration. Its `dim` is overridden by
    /// `embed_dim`.
    pub sgns: SgnsConfig,
    /// Master seed for weight init and batch shuffling.
    pub seed: u64,
}

impl EdgeConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            embed_dim: 400,
            hidden_dim: 400,
            gcn_layers: 2,
            n_components: 4,
            use_gcn: true,
            use_attention: true,
            epochs: 80,
            batch_size: 64,
            lr: 0.01,
            weight_decay: 0.01,
            sgns: SgnsConfig { dim: 400, ..SgnsConfig::default() },
            seed: 42,
        }
    }

    /// CPU-friendly profile: same structure, dimension 64.
    pub fn fast() -> Self {
        Self { embed_dim: 64, hidden_dim: 64, n_components: 4, ..Self::paper() }
    }

    /// A minimal profile for unit tests (dimension 16, few epochs).
    pub fn smoke() -> Self {
        Self {
            embed_dim: 16,
            hidden_dim: 16,
            epochs: 16,
            batch_size: 64,
            sgns: SgnsConfig { dim: 16, epochs: 3, ..SgnsConfig::default() },
            ..Self::fast()
        }
    }

    /// The NoGCN ablation of Table IV.
    pub fn ablation_no_gcn(mut self) -> Self {
        self.use_gcn = false;
        self
    }

    /// The SUM ablation of Table IV.
    pub fn ablation_sum(mut self) -> Self {
        self.use_attention = false;
        self
    }

    /// The NoMixture ablation of Table IV (a single Gaussian).
    pub fn ablation_no_mixture(mut self) -> Self {
        self.n_components = 1;
        self
    }

    /// Validates internal consistency; panics on violation. Prefer
    /// [`EdgeConfig::check`] when the configuration comes from untrusted
    /// input (a file on disk) rather than code.
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }

    /// Non-panicking validation: returns the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if self.embed_dim == 0 || self.hidden_dim == 0 {
            return Err("dimensions must be positive".to_string());
        }
        if self.gcn_layers < 1 {
            return Err("need at least one GCN layer".to_string());
        }
        if self.n_components < 1 {
            return Err("need at least one mixture component".to_string());
        }
        if self.epochs < 1 || self.batch_size < 1 {
            return Err("epochs and batch size must be positive".to_string());
        }
        // NaN fails both arms, so a NaN lr or weight decay is rejected too.
        if self.lr.is_nan()
            || self.lr <= 0.0
            || self.weight_decay.is_nan()
            || self.weight_decay < 0.0
        {
            return Err("learning rate must be positive and weight decay non-negative".to_string());
        }
        Ok(())
    }
}

impl Default for EdgeConfig {
    fn default() -> Self {
        Self::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iv() {
        let c = EdgeConfig::paper();
        assert_eq!(c.embed_dim, 400);
        assert_eq!(c.gcn_layers, 2);
        assert_eq!(c.n_components, 4);
        assert_eq!(c.lr, 0.01);
        assert_eq!(c.weight_decay, 0.01);
        assert!(c.use_gcn && c.use_attention);
        c.validate();
    }

    #[test]
    fn ablation_builders() {
        assert!(!EdgeConfig::fast().ablation_no_gcn().use_gcn);
        assert!(!EdgeConfig::fast().ablation_sum().use_attention);
        assert_eq!(EdgeConfig::fast().ablation_no_mixture().n_components, 1);
        // Ablations leave everything else intact.
        assert_eq!(EdgeConfig::fast().ablation_no_gcn().embed_dim, 64);
    }

    #[test]
    fn sgns_dim_in_profiles() {
        assert_eq!(EdgeConfig::paper().sgns.dim, 400);
        assert_eq!(EdgeConfig::smoke().sgns.dim, 16);
    }

    #[test]
    #[should_panic(expected = "at least one GCN layer")]
    fn validate_rejects_zero_layers() {
        let mut c = EdgeConfig::fast();
        c.gcn_layers = 0;
        c.validate();
    }

    #[test]
    fn check_reports_violations_without_panicking() {
        assert!(EdgeConfig::fast().check().is_ok());
        let mut c = EdgeConfig::fast();
        c.lr = f32::NAN;
        assert!(c.check().unwrap_err().contains("learning rate"));
        let mut c = EdgeConfig::fast();
        c.n_components = 0;
        assert!(c.check().unwrap_err().contains("mixture component"));
    }
}
