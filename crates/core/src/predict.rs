//! The unified prediction API: one batch-first [`Predictor`] interface that
//! the server, the CLI, the bench harness, and the baselines all speak.
//!
//! Before this module the prediction surface had fragmented — the model
//! exposed `predict` (`Option`), `predict_batch` (`Vec<Option>`),
//! `predict_entities` (`Result`) and an untyped `evaluate` tuple, while the
//! baselines evaluated through their own `Geolocator` trait. [`Predictor`]
//! replaces all of it:
//!
//! - **batch is the primitive** — [`Predictor::locate_batch`] takes a slice
//!   of [`PredictRequest`]s and fans out across the `edge-par` pool;
//!   [`Predictor::locate`] is the single-request delegate;
//! - **options are explicit** — the old `set_fallback_prior` mutating flag
//!   is folded into [`PredictOptions`], passed per call;
//! - **abstention is typed** — a tweet without known entities is
//!   `Err(PredictError::NoEntities)`, never a bare `None`;
//! - **evaluation is typed** — [`Predictor::evaluate`] returns an
//!   [`EvalOutcome`] (pairs, coverage, abstained count) instead of a tuple.
//!
//! The point-estimate [`Geolocator`] facade (previously in
//! `edge-baselines`) lives here too, with a blanket implementation for
//! every `Predictor`, so EDGE, BOW and the classical baselines are all
//! scored through one interface.

use edge_data::Tweet;
use edge_geo::{DistanceReport, Point};

use crate::error::PredictError;
use crate::model::Prediction;

/// What to predict from: raw tweet text (entity recognition runs inside the
/// predictor) or pre-resolved entity indices (the server's cache path and
/// the interpretability tooling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictInput {
    /// A tweet text; the predictor resolves entities itself.
    Text(String),
    /// Already-resolved entity indices into the predictor's entity
    /// inventory.
    Entities(Vec<usize>),
}

/// One prediction request (the unit [`Predictor::locate_batch`] batches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictRequest {
    /// What to locate.
    pub input: PredictInput,
}

impl PredictRequest {
    /// A request from raw tweet text.
    pub fn text(text: impl Into<String>) -> Self {
        Self { input: PredictInput::Text(text.into()) }
    }

    /// A request from pre-resolved entity indices.
    pub fn entities(ids: impl Into<Vec<usize>>) -> Self {
        Self { input: PredictInput::Entities(ids.into()) }
    }
}

impl From<&str> for PredictRequest {
    fn from(text: &str) -> Self {
        Self::text(text)
    }
}

impl From<String> for PredictRequest {
    fn from(text: String) -> Self {
        Self::text(text)
    }
}

/// Per-call prediction options (one set per batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictOptions {
    /// Answer zero-entity tweets with the training-split prior instead of
    /// abstaining. Off by default: the paper excludes those tweets, and
    /// silently imputing a region-level guess would distort accuracy
    /// metrics unless explicitly requested.
    pub fallback_prior: bool,
}

impl PredictOptions {
    /// Returns the options with the prior fallback switched on or off.
    pub fn with_fallback_prior(mut self, enabled: bool) -> Self {
        self.fallback_prior = enabled;
        self
    }
}

/// A successful prediction plus its provenance.
#[derive(Debug, Clone)]
pub struct PredictResponse {
    /// The mixture, point estimate and attention weights.
    pub prediction: Prediction,
    /// True when the answer is the training-split prior (the zero-entity
    /// fallback of [`PredictOptions::fallback_prior`]) rather than an
    /// entity-driven inference.
    pub from_fallback: bool,
}

/// A typed evaluation result (replaces the old
/// `(Vec<(Prediction, Point)>, f64)` tuple).
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// `(prediction, truth)` for every covered test tweet, in input order.
    pub pairs: Vec<(Prediction, Point)>,
    /// Covered fraction of the test split.
    pub coverage: f64,
    /// Tweets the predictor abstained on (no known entity).
    pub abstained: usize,
}

impl EvalOutcome {
    /// The point-estimate pairs (prediction mode, truth).
    pub fn point_pairs(&self) -> Vec<(Point, Point)> {
        self.pairs.iter().map(|(p, t)| (p.point, *t)).collect()
    }

    /// The paper's distance metrics over the covered pairs; `None` when
    /// nothing was covered.
    pub fn report(&self) -> Option<DistanceReport> {
        DistanceReport::from_pairs_with_coverage(&self.point_pairs(), self.coverage)
    }
}

/// A tweet geolocation model behind the unified request/response API.
///
/// `locate_batch` is the primitive — implementations fan it out across the
/// `edge-par` pool and the serving layer batches requests into it — and
/// `locate` / `evaluate` are provided delegates.
pub trait Predictor: Sync {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// Predicts a batch. The output is in input order, one entry per
    /// request; an uncovered request yields `Err(PredictError::NoEntities)`
    /// at its position (unless `opts.fallback_prior` answers it with the
    /// prior).
    fn locate_batch(
        &self,
        requests: &[PredictRequest],
        opts: &PredictOptions,
    ) -> Vec<Result<PredictResponse, PredictError>>;

    /// Predicts a single request (delegates to [`Predictor::locate_batch`]).
    fn locate(
        &self,
        request: &PredictRequest,
        opts: &PredictOptions,
    ) -> Result<PredictResponse, PredictError> {
        self.locate_batch(std::slice::from_ref(request), opts)
            .pop()
            .expect("locate_batch returned no result for a one-request batch")
    }

    /// Evaluates on a test split: covered `(prediction, truth)` pairs in
    /// input order, the coverage fraction, and the abstention count.
    fn evaluate(&self, test: &[Tweet], opts: &PredictOptions) -> EvalOutcome {
        let _span = edge_obs::span("evaluate");
        let requests: Vec<PredictRequest> =
            test.iter().map(|t| PredictRequest::text(t.text.as_str())).collect();
        let mut pairs = Vec::new();
        let mut abstained = 0usize;
        for (result, tweet) in self.locate_batch(&requests, opts).into_iter().zip(test) {
            match result {
                Ok(r) => pairs.push((r.prediction, tweet.location)),
                Err(_) => abstained += 1,
            }
        }
        let coverage = pairs.len() as f64 / test.len().max(1) as f64;
        // Uncovered tweets are exactly those whose entity resolution came up
        // empty, so the NER miss rate is the complement of coverage.
        edge_obs::gauge!("core.ner.miss_rate").set(1.0 - coverage);
        EvalOutcome { pairs, coverage, abstained }
    }
}

/// A typed point-estimate evaluation (the [`Geolocator`] counterpart of
/// [`EvalOutcome`]).
#[derive(Debug, Clone)]
pub struct PointEval {
    /// `(predicted point, truth)` for every covered test tweet.
    pub pairs: Vec<(Point, Point)>,
    /// Covered fraction of the test split.
    pub coverage: f64,
    /// Tweets the method abstained on.
    pub abstained: usize,
}

impl PointEval {
    /// The paper's distance metrics over the covered pairs; `None` when
    /// nothing was covered.
    pub fn report(&self) -> Option<DistanceReport> {
        DistanceReport::from_pairs_with_coverage(&self.pairs, self.coverage)
    }
}

/// A tweet geolocation method producing a single point estimate (the common
/// denominator of Table III). The baselines implement this directly; every
/// [`Predictor`] (EDGE, BOW) gets it through the blanket implementation, so
/// the bench harness scores all methods through one interface.
pub trait Geolocator {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// The predicted location, or `None` when the method abstains
    /// (Hyper-local abstains on tweets without geo-specific n-grams).
    fn predict_point(&self, text: &str) -> Option<Point>;

    /// Evaluates on a test split.
    fn evaluate_points(&self, test: &[Tweet]) -> PointEval {
        let mut pairs = Vec::new();
        let mut abstained = 0usize;
        for t in test {
            match self.predict_point(&t.text) {
                Some(p) => pairs.push((p, t.location)),
                None => abstained += 1,
            }
        }
        let coverage = pairs.len() as f64 / test.len().max(1) as f64;
        PointEval { pairs, coverage, abstained }
    }
}

/// Every [`Predictor`] is a [`Geolocator`]: the point estimate is the
/// mixture mode, and abstentions map to `None`. Evaluated with default
/// options (no prior fallback), matching the paper's protocol.
impl<P: Predictor> Geolocator for P {
    fn name(&self) -> &str {
        Predictor::name(self)
    }

    fn predict_point(&self, text: &str) -> Option<Point> {
        self.locate(&PredictRequest::text(text), &PredictOptions::default())
            .ok()
            .map(|r| r.prediction.point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::SimDate;
    use edge_geo::{BivariateGaussian, GaussianMixture};

    fn tweets(n: usize) -> Vec<Tweet> {
        (0..n)
            .map(|i| Tweet {
                id: i as u64,
                text: "x".into(),
                location: Point::new(40.0, -74.0),
                date: SimDate::new(2020, 3, 12),
                gold_entities: vec![],
            })
            .collect()
    }

    struct FixedGeo(Option<Point>);
    impl Geolocator for FixedGeo {
        fn name(&self) -> &str {
            "fixed"
        }
        fn predict_point(&self, _text: &str) -> Option<Point> {
            self.0
        }
    }

    #[test]
    fn evaluate_points_full_coverage() {
        let g = FixedGeo(Some(Point::new(40.5, -74.0)));
        let out = g.evaluate_points(&tweets(4));
        assert_eq!(out.pairs.len(), 4);
        assert_eq!(out.coverage, 1.0);
        assert_eq!(out.abstained, 0);
        assert!(out.report().is_some());
    }

    #[test]
    fn evaluate_points_abstaining_method() {
        let g = FixedGeo(None);
        let out = g.evaluate_points(&tweets(4));
        assert!(out.pairs.is_empty());
        assert_eq!(out.coverage, 0.0);
        assert_eq!(out.abstained, 4);
        assert!(out.report().is_none());
    }

    #[test]
    fn evaluate_points_empty_test_set() {
        let g = FixedGeo(Some(Point::new(0.0, 0.0)));
        let out = g.evaluate_points(&[]);
        assert!(out.pairs.is_empty());
        assert_eq!(out.coverage, 0.0);
    }

    /// A predictor that covers even-length texts only — exercises the
    /// provided `locate` / `evaluate` delegates and the blanket
    /// `Geolocator`.
    struct EvenLength;

    fn point_prediction(p: Point) -> Prediction {
        let g = BivariateGaussian { mu: p, sigma_lat: 0.1, sigma_lon: 0.1, rho: 0.0 };
        Prediction { mixture: GaussianMixture::single(g), point: p, attention: Vec::new() }
    }

    impl Predictor for EvenLength {
        fn name(&self) -> &str {
            "even"
        }
        fn locate_batch(
            &self,
            requests: &[PredictRequest],
            opts: &PredictOptions,
        ) -> Vec<Result<PredictResponse, PredictError>> {
            requests
                .iter()
                .map(|r| match &r.input {
                    PredictInput::Text(t) if t.len() % 2 == 0 => Ok(PredictResponse {
                        prediction: point_prediction(Point::new(1.0, 2.0)),
                        from_fallback: false,
                    }),
                    PredictInput::Text(_) if opts.fallback_prior => Ok(PredictResponse {
                        prediction: point_prediction(Point::new(0.0, 0.0)),
                        from_fallback: true,
                    }),
                    _ => Err(PredictError::NoEntities),
                })
                .collect()
        }
    }

    #[test]
    fn locate_delegates_to_batch() {
        let p = EvenLength;
        let opts = PredictOptions::default();
        assert!(p.locate(&PredictRequest::text("ab"), &opts).is_ok());
        assert_eq!(
            p.locate(&PredictRequest::text("abc"), &opts).unwrap_err(),
            PredictError::NoEntities
        );
        let fallback =
            p.locate(&PredictRequest::text("abc"), &opts.with_fallback_prior(true)).unwrap();
        assert!(fallback.from_fallback);
    }

    #[test]
    fn evaluate_counts_abstentions() {
        let p = EvenLength;
        let mut ts = tweets(4);
        ts[0].text = "ab".into(); // even -> covered
        ts[1].text = "odd".into(); // length 3 -> abstains
        ts[2].text = "abcd".into(); // even -> covered
        ts[3].text = "abcde".into(); // length 5 -> abstains
        let out = p.evaluate(&ts, &PredictOptions::default());
        assert_eq!(out.pairs.len(), 2);
        assert_eq!(out.abstained, 2);
        assert!((out.coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn blanket_geolocator_maps_abstention_to_none() {
        let p = EvenLength;
        assert_eq!(Geolocator::predict_point(&p, "ab"), Some(Point::new(1.0, 2.0)));
        assert_eq!(Geolocator::predict_point(&p, "abc"), None);
        assert_eq!(Geolocator::name(&p), "even");
        // The fixture text "x" has odd length, so the blanket facade
        // reports a full abstention.
        let out = p.evaluate_points(&tweets(2));
        assert_eq!(out.abstained, 2);
    }

    #[test]
    fn request_constructors() {
        let r = PredictRequest::from("hi");
        assert_eq!(r.input, PredictInput::Text("hi".into()));
        let r = PredictRequest::entities(vec![3, 1]);
        assert_eq!(r.input, PredictInput::Entities(vec![3, 1]));
    }
}
