//! The entity2vec pipeline (paper Section III-A1): NER → entity-phrase
//! tokenization → SGNS → per-entity semantic embeddings.
//!
//! Named entities are treated "as a whole" — every mention of
//! `Majestic Theatre` becomes the single token `majestic_theatre` in the
//! skip-gram corpus — so the embedding captures "syntactic and semantic
//! relationships between entities" rather than between their component
//! words.

use std::collections::HashMap;

use edge_embed::{train_sgns, Embedding, SgnsConfig};
use edge_text::{is_stopword, tokenize, EntityRecognizer, Token};

use edge_data::Tweet;

/// The entity inventory of a trained model: stable indices for every entity
/// that appears in the training split (the graph's node set).
///
/// Serializes as the ordered name list; the reverse map is rebuilt on load.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
#[serde(from = "Vec<String>", into = "Vec<String>")]
pub struct EntityIndex {
    names: Vec<String>,
    by_name: HashMap<String, usize>,
}

impl From<Vec<String>> for EntityIndex {
    fn from(names: Vec<String>) -> Self {
        let by_name = names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        Self { names, by_name }
    }
}

impl From<EntityIndex> for Vec<String> {
    fn from(index: EntityIndex) -> Self {
        index.names
    }
}

impl EntityIndex {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no entities are indexed.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The canonical id of entity `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// The index of a canonical entity id.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Iterates `(index, name)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }

    fn insert(&mut self, name: &str) -> usize {
        if let Some(&i) = self.by_name.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), i);
        i
    }
}

/// The output of the entity2vec stage.
#[derive(Debug, Clone)]
pub struct Entity2Vec {
    /// Entity inventory (training-split entities only).
    pub index: EntityIndex,
    /// `index.len() × dim` semantic embeddings, row `i` for entity `i`.
    pub embeddings: Vec<Vec<f32>>,
    /// Per-tweet entity index sets for the training tweets (deduplicated,
    /// ascending), parallel to the input slice.
    pub tweet_entities: Vec<Vec<usize>>,
}

/// Converts a tweet into a skip-gram sentence: recognized entity mentions
/// become single canonical-id tokens, remaining words are lowercased, and
/// stop words are dropped.
pub fn entity_sentence(text: &str, ner: &EntityRecognizer) -> Vec<String> {
    let mentions = ner.recognize(text);
    // Map each mention's surface token sequence (lowercase) to its id.
    let mut surface_map: Vec<(Vec<String>, &str)> = mentions
        .iter()
        .map(|m| {
            let toks: Vec<String> = tokenize(&m.surface).iter().map(Token::lower).collect();
            (toks, m.id.as_str())
        })
        .collect();
    // Longest surfaces first so greedy matching prefers full phrases.
    surface_map.sort_by_key(|(toks, _)| std::cmp::Reverse(toks.len()));

    let tokens = tokenize(text);
    let lower: Vec<String> = tokens.iter().map(Token::lower).collect();
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    'outer: while i < lower.len() {
        for (surface, id) in &surface_map {
            if !surface.is_empty()
                && i + surface.len() <= lower.len()
                && lower[i..i + surface.len()] == surface[..]
            {
                out.push(id.to_string());
                i += surface.len();
                continue 'outer;
            }
        }
        if !is_stopword(&lower[i]) {
            out.push(lower[i].clone());
        }
        i += 1;
    }
    out
}

/// Runs the entity2vec stage over the training tweets.
///
/// Entities come only from the training split ("our model only considers
/// those entities that appear in our training set"); words participate in
/// the skip-gram corpus so entity embeddings absorb lexical context, but
/// only entity rows are returned.
pub fn run_entity2vec(
    train: &[Tweet],
    ner: &EntityRecognizer,
    sgns: &SgnsConfig,
    dim: usize,
) -> Entity2Vec {
    let mut index = EntityIndex::default();
    let mut vocab = edge_text::Vocab::new();
    let mut sentences: Vec<Vec<usize>> = Vec::with_capacity(train.len());
    let mut tweet_entities: Vec<Vec<usize>> = Vec::with_capacity(train.len());

    // First pass: sentences + entity inventory.
    let raw_sentences: Vec<Vec<String>> =
        train.iter().map(|t| entity_sentence(&t.text, ner)).collect();
    for (tweet, sent) in train.iter().zip(&raw_sentences) {
        let mentions = ner.recognize(&tweet.text);
        let mut ids: Vec<usize> = mentions.iter().map(|m| index.insert(&m.id)).collect();
        ids.sort_unstable();
        ids.dedup();
        tweet_entities.push(ids);
        sentences.push(sent.iter().map(|w| vocab.add(w)).collect());
    }

    // SGNS over the combined entity+word vocabulary.
    let counts: Vec<u64> = (0..vocab.len()).map(|i| vocab.count(i)).collect();
    let config = SgnsConfig { dim, ..sgns.clone() };
    let table: Embedding = if vocab.len() >= 2 {
        train_sgns(&sentences, &counts, &config)
    } else {
        // Degenerate corpus: zero vectors keep downstream shapes valid.
        Embedding::from_flat(vocab.len().max(1), dim, vec![0.0; vocab.len().max(1) * dim])
    };

    // Extract entity rows (entities unseen by the vocab — impossible by
    // construction, but guard anyway — get zero vectors).
    let mut embeddings: Vec<Vec<f32>> = (0..index.len())
        .map(|i| match vocab.get(index.name(i)) {
            Some(vid) if vid < table.len() => table.vector(vid).to_vec(),
            _ => vec![0.0; dim],
        })
        .collect();
    postprocess_embeddings(&mut embeddings);

    Entity2Vec { index, embeddings, tweet_entities }
}

/// Anisotropy correction ("all-but-the-top", Mu & Viswanath): SGNS tables —
/// ours and gensim's alike — share a dominant common direction, leaving raw
/// pairwise cosines near 1. Downstream, the GCN and attention must then
/// separate entities inside a tiny residual subspace, which in practice
/// collapses EDGE's predictions onto a static prior. Centering the table
/// and scaling rows to unit norm removes the shared component while
/// preserving the relative geometry entity2vec learned.
fn postprocess_embeddings(embeddings: &mut [Vec<f32>]) {
    let Some(first) = embeddings.first() else { return };
    let dim = first.len();
    let n = embeddings.len() as f32;
    let mut mean = vec![0.0f32; dim];
    for row in embeddings.iter() {
        for (m, x) in mean.iter_mut().zip(row) {
            *m += x / n;
        }
    }
    for row in embeddings.iter_mut() {
        for (x, m) in row.iter_mut().zip(&mean) {
            *x -= m;
        }
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-8 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{nyma, PresetSize};
    use edge_text::EntityCategory;

    fn ner() -> EntityRecognizer {
        EntityRecognizer::with_gazetteer([
            ("Majestic Theatre", EntityCategory::Facility),
            ("Broadway", EntityCategory::Geolocation),
            ("phantomopera", EntityCategory::Band),
        ])
    }

    #[test]
    fn entity_sentence_merges_phrases() {
        let s = entity_sentence("Loved the Majestic Theatre on Broadway tonight", &ner());
        assert!(s.contains(&"majestic_theatre".to_string()));
        assert!(s.contains(&"broadway".to_string()));
        assert!(!s.contains(&"majestic".to_string()));
        assert!(!s.contains(&"the".to_string()), "stopwords dropped");
    }

    #[test]
    fn entity_sentence_handles_sigils() {
        let s = entity_sentence("@PhantomOpera was wonderful #nyc", &ner());
        assert!(s.contains(&"phantomopera".to_string()));
        assert!(s.contains(&"nyc".to_string()), "hashtag becomes entity token");
    }

    #[test]
    fn run_on_preset_produces_consistent_shapes() {
        let d = nyma(PresetSize::Smoke, 1);
        let ner = edge_data::dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let sgns = SgnsConfig { dim: 16, epochs: 2, ..SgnsConfig::default() };
        let e2v = run_entity2vec(&train[..500], &ner, &sgns, 16);
        assert!(e2v.index.len() > 50, "entities found: {}", e2v.index.len());
        assert_eq!(e2v.embeddings.len(), e2v.index.len());
        assert_eq!(e2v.tweet_entities.len(), 500);
        assert!(e2v.embeddings.iter().all(|v| v.len() == 16));
        for ids in &e2v.tweet_entities {
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted & deduped");
            assert!(ids.iter().all(|&i| i < e2v.index.len()));
        }
    }

    #[test]
    fn index_round_trips() {
        let d = nyma(PresetSize::Smoke, 2);
        let ner = edge_data::dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let sgns = SgnsConfig { dim: 8, epochs: 1, ..SgnsConfig::default() };
        let e2v = run_entity2vec(&train[..200], &ner, &sgns, 8);
        for (i, name) in e2v.index.iter() {
            assert_eq!(e2v.index.get(name), Some(i));
        }
    }

    #[test]
    fn anchored_entities_embed_similarly() {
        // The co-occurrence signal must reach the embeddings: an anchored
        // topic should be closer to its anchor than to a random entity.
        let d = nyma(PresetSize::Smoke, 3);
        let ner = edge_data::dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let sgns = SgnsConfig { dim: 32, epochs: 6, ..SgnsConfig::default() };
        let e2v = run_entity2vec(train, &ner, &sgns, 32);
        let (Some(phantom), Some(majestic)) =
            (e2v.index.get("phantomopera"), e2v.index.get("majestic_theatre"))
        else {
            panic!("signature entities missing from index");
        };
        // Small SGNS corpora produce a shared dominant direction, so compare
        // *centered* similarities: subtract the mean embedding first.
        let dim = e2v.embeddings[0].len();
        let mut mean = vec![0.0f32; dim];
        for v in &e2v.embeddings {
            for (m, x) in mean.iter_mut().zip(v) {
                *m += x / e2v.embeddings.len() as f32;
            }
        }
        let centered = |i: usize| -> Vec<f32> {
            e2v.embeddings[i].iter().zip(&mean).map(|(x, m)| x - m).collect()
        };
        let cos = |a: usize, b: usize| edge_embed::cosine(&centered(a), &centered(b));
        let anchored = cos(phantom, majestic);
        // Average similarity to 20 arbitrary other entities.
        let baseline: f32 =
            (0..20).map(|i| cos(phantom, (i * 7) % e2v.index.len())).sum::<f32>() / 20.0;
        assert!(anchored > baseline + 0.1, "anchored {anchored} vs baseline {baseline}");
    }
}
