//! Crash-safe training checkpoints.
//!
//! A checkpoint captures everything `EdgeModel::train` needs to continue a
//! run as if it had never stopped: the trained parameters, the Adam moment
//! estimates, the current learning rate, the per-epoch history, and the
//! index of the next epoch to run. Batch shuffling is a pure function of
//! `(config.seed, epoch)`, so no RNG state needs to be stored — a resumed
//! run replays the remaining epochs bit-for-bit identically to an
//! uninterrupted one.
//!
//! Files are named `ckpt-NNNNNN.edge` (NNNNNN = next epoch, zero-padded so
//! lexicographic order is chronological order), written through the same
//! checksummed crash-safe envelope as saved models ([`crate::persist`]),
//! and pruned to a retention window. Corrupt checkpoints are *skipped* at
//! resume time — the loader falls back to the newest one that verifies.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use edge_faults::failpoint;
use edge_tensor::optim::AdamState;
use edge_tensor::tape::ParamStore;

use crate::config::EdgeConfig;
use crate::persist::{read_artifact, write_artifact, PersistError, KIND_CHECKPOINT};

/// Checkpoint payload schema version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Everything needed to resume training mid-run.
#[derive(Serialize, Deserialize)]
pub struct CheckpointState {
    pub schema_version: u32,
    /// The configuration of the run that wrote this checkpoint; resume
    /// refuses to continue under a different configuration.
    pub config: EdgeConfig,
    /// First epoch the resumed run should execute.
    pub next_epoch: usize,
    /// Learning rate in effect (differs from `config.lr` after divergence
    /// rollbacks, which halve it).
    pub lr: f32,
    /// Cumulative divergence-guard rollbacks at checkpoint time.
    pub rollbacks: u64,
    /// All trained parameters.
    pub params: ParamStore,
    /// Adam first/second-moment estimates and step count.
    pub adam: AdamState,
    /// Per-epoch mean NLL so far.
    pub epoch_losses: Vec<f64>,
    /// Per-epoch wall-clock so far (same indexing as `epoch_losses`).
    pub epoch_wall_secs: Vec<f64>,
}

impl CheckpointState {
    pub(crate) fn validate(&self) -> Result<(), PersistError> {
        if self.schema_version != CHECKPOINT_VERSION {
            return Err(PersistError::Corrupt(format!(
                "checkpoint schema version {} (expected {CHECKPOINT_VERSION})",
                self.schema_version
            )));
        }
        self.config
            .check()
            .map_err(|msg| PersistError::Corrupt(format!("invalid config: {msg}")))?;
        if self.next_epoch == 0 || self.next_epoch > self.config.epochs {
            return Err(PersistError::Corrupt(format!(
                "next epoch {} outside 1..={}",
                self.next_epoch, self.config.epochs
            )));
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(PersistError::Corrupt(format!("non-positive learning rate {}", self.lr)));
        }
        if self.params.is_empty() {
            return Err(PersistError::Corrupt("checkpoint stores no parameters".to_string()));
        }
        if self.epoch_losses.len() != self.epoch_wall_secs.len() {
            return Err(PersistError::Corrupt(format!(
                "{} losses vs {} wall times",
                self.epoch_losses.len(),
                self.epoch_wall_secs.len()
            )));
        }
        if self.adam.slots.iter().any(|s| s.id >= self.params.len()) {
            return Err(PersistError::Corrupt("Adam slot id out of range".to_string()));
        }
        Ok(())
    }
}

/// Loads and fully verifies one checkpoint file.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<CheckpointState, PersistError> {
    let payload = read_artifact(path, KIND_CHECKPOINT)?;
    let state: CheckpointState = serde_json::from_str(&payload)?;
    state.validate()?;
    Ok(state)
}

/// Writes checkpoints into a directory on a fixed epoch cadence and prunes
/// old ones.
pub struct Checkpointer {
    dir: PathBuf,
    every: usize,
    keep: usize,
}

impl Checkpointer {
    /// Checkpoints into `dir` after every `every`-th epoch (0 is treated as
    /// 1), keeping the newest `keep` files (0 is treated as 1).
    pub fn new(dir: impl Into<PathBuf>, every: usize, keep: usize) -> Self {
        Self { dir: dir.into(), every: every.max(1), keep: keep.max(1) }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a checkpoint is due after `finished_epoch` completed.
    pub fn due_after(&self, finished_epoch: usize) -> bool {
        (finished_epoch + 1) % self.every == 0
    }

    fn path_for(&self, next_epoch: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{next_epoch:06}.edge"))
    }

    /// All checkpoint files in the directory, oldest first. Files that
    /// merely *look* like checkpoints are included — verification happens
    /// at load time.
    pub fn list(&self) -> Vec<PathBuf> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".edge"))
            })
            .collect();
        files.sort();
        files
    }

    /// Writes `state` crash-safely and prunes beyond the retention window.
    ///
    /// Failpoint: `checkpoint.save` (plus the `persist.save` / `fsio.*`
    /// points underneath).
    pub fn write(&self, state: &CheckpointState) -> Result<PathBuf, PersistError> {
        failpoint!("checkpoint.save");
        let path = self.path_for(state.next_epoch);
        let json = serde_json::to_string(state)?;
        write_artifact(&path, KIND_CHECKPOINT, &json)?;
        edge_obs::counter!("checkpoint.writes").inc(1);
        self.prune();
        Ok(path)
    }

    /// Deletes all but the newest `keep` checkpoints (best-effort: pruning
    /// failures never fail training).
    fn prune(&self) {
        let files = self.list();
        if files.len() > self.keep {
            for old in &files[..files.len() - self.keep] {
                let _ = std::fs::remove_file(old);
            }
        }
    }

    /// The newest checkpoint that verifies. Corrupt or unreadable files are
    /// skipped (counted under `checkpoint.corrupt_skipped`) and the next
    /// older one is tried; `Ok(None)` when nothing usable exists.
    pub fn latest(&self) -> Result<Option<(PathBuf, CheckpointState)>, PersistError> {
        for path in self.list().into_iter().rev() {
            match load_checkpoint(&path) {
                Ok(state) => return Ok(Some((path, state))),
                Err(e) => {
                    edge_obs::counter!("checkpoint.corrupt_skipped").inc(1);
                    edge_obs::progress!(
                        "[checkpoint] skipping unusable checkpoint {}: {e}",
                        path.display()
                    );
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_tensor::Matrix;

    fn tiny_state(next_epoch: usize) -> CheckpointState {
        let mut params = ParamStore::new();
        params.add("w", Matrix::full(2, 2, next_epoch as f32));
        CheckpointState {
            schema_version: CHECKPOINT_VERSION,
            config: EdgeConfig::smoke(),
            next_epoch,
            lr: 0.01,
            rollbacks: 0,
            params,
            adam: AdamState { t: 3, slots: vec![] },
            epoch_losses: vec![2.0; next_epoch],
            epoch_wall_secs: vec![0.1; next_epoch],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("edge_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_and_retention() {
        let dir = tmp_dir("rt");
        let cp = Checkpointer::new(&dir, 2, 2);
        assert!(!cp.due_after(0) && cp.due_after(1) && !cp.due_after(2) && cp.due_after(3));
        for e in [2, 4, 6, 8] {
            cp.write(&tiny_state(e)).unwrap();
        }
        // Retention keeps only the last two.
        let names: Vec<String> = cp
            .list()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["ckpt-000006.edge", "ckpt-000008.edge"]);
        let (path, state) = cp.latest().unwrap().expect("has checkpoints");
        assert!(path.ends_with("ckpt-000008.edge"));
        assert_eq!(state.next_epoch, 8);
        assert_eq!(state.params.get(edge_tensor::tape::ParamId(0)).data()[0], 8.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_skips_corrupt_and_falls_back() {
        let dir = tmp_dir("fallback");
        let cp = Checkpointer::new(&dir, 1, 10);
        cp.write(&tiny_state(2)).unwrap();
        let newest = cp.write(&tiny_state(4)).unwrap();
        // Flip one payload bit in the newest checkpoint.
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        assert!(matches!(load_checkpoint(&newest), Err(PersistError::Corrupt(_))));
        let (_, state) = cp.latest().unwrap().expect("older checkpoint survives");
        assert_eq!(state.next_epoch, 2, "must fall back to the older good checkpoint");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_or_missing_dir_is_not_an_error() {
        let dir = tmp_dir("empty");
        let cp = Checkpointer::new(dir.join("never-created"), 1, 1);
        assert!(cp.list().is_empty());
        assert!(cp.latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_rejects_inconsistent_state() {
        let mut s = tiny_state(2);
        s.schema_version = 9;
        assert!(matches!(s.validate(), Err(PersistError::Corrupt(_))));
        let mut s = tiny_state(2);
        s.lr = f32::NAN;
        assert!(matches!(s.validate(), Err(PersistError::Corrupt(_))));
        let mut s = tiny_state(2);
        s.next_epoch = 10_000;
        assert!(matches!(s.validate(), Err(PersistError::Corrupt(_))));
        let mut s = tiny_state(2);
        s.adam.slots.push(edge_tensor::optim::AdamSlot {
            id: 99,
            m: Matrix::zeros(1, 1),
            v: Matrix::zeros(1, 1),
        });
        assert!(matches!(s.validate(), Err(PersistError::Corrupt(_))));
        assert!(tiny_state(2).validate().is_ok());
    }
}
