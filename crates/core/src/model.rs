//! The end-to-end EDGE model: entity2vec → entity graph → GCN diffusion →
//! attention aggregation → Gaussian-mixture head, trained by maximizing the
//! likelihood of geo-tagged training tweets (Eq. 13) with Adam.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use edge_data::Tweet;
use edge_geo::{BBox, GaussianMixture, Point};
use edge_graph::{
    build_cooccurrence_graph, graph_stats, normalized_adjacency_triplets, GraphStats,
};
use edge_tensor::init::xavier_uniform;
use edge_tensor::tape::{ParamId, ParamStore, Tape};
use edge_tensor::{Adam, CsrMatrix, Matrix, Optimizer};
use edge_text::EntityRecognizer;

use crate::attention::{attention_aggregate, attention_infer, sum_aggregate, sum_infer};
use crate::config::EdgeConfig;
use crate::entity2vec::{run_entity2vec, EntityIndex};
use crate::gcn::{gcn_forward, gcn_infer};
use crate::mdn::{decode_theta, init_head_bias, theta_width};

/// A location prediction: the mixture (the paper's primary output), the
/// Eq.-14 point estimate, and the interpretability signals.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The predicted Gaussian mixture (Eq. 6).
    pub mixture: GaussianMixture,
    /// The density-argmax location (Eq. 14).
    pub point: Point,
    /// Per-entity attention weights `(entity id, weight)`, the "which
    /// entities drove this prediction" signal (empty under the SUM
    /// ablation).
    pub attention: Vec<(String, f32)>,
}

/// Training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean per-tweet NLL per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds per epoch (same indexing as `epoch_losses`).
    pub epoch_wall_secs: Vec<f64>,
    /// Training tweets actually used (those with ≥1 recognized entity).
    pub n_train_used: usize,
    /// Entity-graph statistics.
    pub graph: GraphStats,
}

impl TrainReport {
    /// Total wall-clock seconds spent in the optimization loop.
    pub fn train_loop_secs(&self) -> f64 {
        self.epoch_wall_secs.iter().sum()
    }
}

/// The trained EDGE model.
pub struct EdgeModel {
    config: EdgeConfig,
    ner: EntityRecognizer,
    index: EntityIndex,
    adjacency: Arc<CsrMatrix>,
    features: Matrix,
    params: ParamStore,
    w_gcn: Vec<ParamId>,
    q1: ParamId,
    b1: ParamId,
    q2: ParamId,
    b2: ParamId,
    /// Cached diffused embeddings for inference (refreshed after training).
    smoothed: Matrix,
}

impl EdgeModel {
    /// Trains EDGE end-to-end on the training split.
    ///
    /// `ner` is the recognizer with the corpus gazetteer; `bbox` is the
    /// study region (used only to initialize the mixture head sanely).
    pub fn train(
        train: &[Tweet],
        ner: EntityRecognizer,
        bbox: &BBox,
        config: EdgeConfig,
    ) -> (Self, TrainReport) {
        config.validate();
        assert!(!train.is_empty(), "empty training set");
        let _train_span = edge_obs::span("train");

        // Stage 1: entity2vec.
        let e2v = {
            let _span = edge_obs::span("entity2vec");
            run_entity2vec(train, &ner, &config.sgns, config.embed_dim)
        };
        assert!(e2v.index.len() >= 2, "training corpus yielded fewer than 2 entities");

        // Stage 2: co-occurrence graph + normalized adjacency.
        let _graph_span = edge_obs::span("graph.build");
        let graph =
            build_cooccurrence_graph(e2v.index.len(), e2v.tweet_entities.iter().map(Vec::as_slice));
        let stats = graph_stats(&graph);
        let adjacency = Arc::new(CsrMatrix::from_triplets(
            e2v.index.len(),
            e2v.index.len(),
            &normalized_adjacency_triplets(&graph),
        ));
        drop(_graph_span);
        edge_obs::gauge!("core.graph.nodes").set(e2v.index.len() as f64);
        edge_obs::gauge!("core.graph.edges").set(stats.n_edges as f64);

        // Stage 3: parameters.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let mut w_gcn = Vec::new();
        let mut in_dim = config.embed_dim;
        for layer in 0..config.gcn_layers {
            w_gcn.push(
                params.add(
                    format!("w_gcn{layer}"),
                    xavier_uniform(in_dim, config.hidden_dim, &mut rng),
                ),
            );
            in_dim = config.hidden_dim;
        }
        let h_dim = if config.use_gcn { config.hidden_dim } else { config.embed_dim };
        let q1 = params.add("q1", xavier_uniform(h_dim, 1, &mut rng));
        // b1 starts at +1 so the Eq.-2 scores begin in the ReLU's active
        // region. At b1 = 0 roughly half the scores clamp; SGD then walks
        // the rest below zero and the whole attention layer dies (zero
        // gradient forever, permanently uniform weights). Softmax is
        // shift-invariant, so the positive offset changes nothing else.
        let b1 = params.add("b1", Matrix::full(1, 1, 1.0));
        let out = theta_width(config.n_components);
        // Small output weights + region-tiling bias: predictions start at
        // the bias mixture and move from there.
        let q2 = params.add("q2", xavier_uniform(h_dim, out, &mut rng).scale(0.1));
        let b2 = params.add("b2", init_head_bias(bbox, config.n_components));

        let features = Matrix::from_vec(
            e2v.index.len(),
            config.embed_dim,
            e2v.embeddings.iter().flatten().copied().collect(),
        );

        let mut model = Self {
            config,
            ner,
            index: e2v.index,
            adjacency,
            features,
            params,
            w_gcn,
            q1,
            b1,
            q2,
            b2,
            smoothed: Matrix::zeros(0, 0),
        };

        // Stage 4: end-to-end optimization (Eq. 13).
        let report = model.optimize(train, &e2v.tweet_entities, stats, &mut rng);
        model.refresh_smoothed();
        (model, report)
    }

    fn optimize(
        &mut self,
        train: &[Tweet],
        tweet_entities: &[Vec<usize>],
        graph: GraphStats,
        rng: &mut StdRng,
    ) -> TrainReport {
        // Usable tweets: at least one entity.
        let usable: Vec<usize> =
            (0..train.len()).filter(|&i| !tweet_entities[i].is_empty()).collect();
        assert!(!usable.is_empty(), "no training tweet has a recognized entity");

        let mut optimizer = Adam::new(self.config.lr, 0.9, 0.999, 1e-8, self.config.weight_decay);
        // Biases carry non-regularizable scale (the head bias holds the
        // degree-valued component means); decay applies to weights only.
        optimizer.exclude_from_decay(self.b1);
        optimizer.exclude_from_decay(self.b2);
        // The attention scorer q1 is a single d-vector whose gradient
        // pressure is weak early in training (the mixture head can hedge
        // instead); decaying it collapses the scores into the ReLU dead
        // zone and the attention degenerates to a uniform average. Exempt
        // it so Eq. 2-3 can actually differentiate entities.
        optimizer.exclude_from_decay(self.q1);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut epoch_wall_secs = Vec::with_capacity(self.config.epochs);
        let mut order = usable.clone();

        let telemetry_on = edge_obs::telemetry::active();

        for epoch in 0..self.config.epochs {
            let _epoch_span = edge_obs::span("epoch");
            let epoch_start = std::time::Instant::now();
            order.shuffle(rng);
            let mut epoch_nll = 0.0f64;
            let mut n_tweets = 0usize;
            // Per-group sum of squared gradient entries over the epoch
            // (gcn / attention / head), reported as L2 norms in telemetry.
            let mut grad_sq = [0.0f64; 3];
            for batch in order.chunks(self.config.batch_size) {
                let mut tape = Tape::new();
                let x = tape.constant(self.features.clone());
                let smoothed = if self.config.use_gcn {
                    gcn_forward(&mut tape, &self.adjacency, x, &self.w_gcn, &self.params)
                } else {
                    x
                };
                let mut z_rows = Vec::with_capacity(batch.len());
                let mut targets = Vec::with_capacity(batch.len());
                for &i in batch {
                    let z = if self.config.use_attention {
                        attention_aggregate(
                            &mut tape,
                            smoothed,
                            &tweet_entities[i],
                            self.q1,
                            self.b1,
                            &self.params,
                        )
                    } else {
                        sum_aggregate(&mut tape, smoothed, &tweet_entities[i])
                    };
                    z_rows.push(z);
                    targets.push((train[i].location.lat, train[i].location.lon));
                }
                let mdn_span = edge_obs::span("mdn");
                let z = tape.concat_rows(z_rows); // B x h
                let w = tape.param(self.q2, &self.params);
                let b = tape.param(self.b2, &self.params);
                let lin = tape.matmul(z, w);
                let theta = tape.add_row_broadcast(lin, b); // Eq. 7
                let nll_sum = tape.gmm_nll(theta, &targets, self.config.n_components);
                let loss = tape.scale(nll_sum, 1.0 / batch.len() as f32);
                drop(mdn_span);
                let grads = tape.backward(loss);
                if telemetry_on {
                    for (pid, g) in &grads {
                        let sq: f64 = g.data().iter().map(|&x| x as f64 * x as f64).sum();
                        grad_sq[self.param_group(*pid)] += sq;
                    }
                }
                let step_span = edge_obs::span("adam.step");
                optimizer.step(&mut self.params, &grads);
                drop(step_span);

                epoch_nll += tape.scalar(nll_sum) as f64;
                n_tweets += batch.len();
            }
            let mean_nll = epoch_nll / n_tweets as f64;
            let wall_secs = epoch_start.elapsed().as_secs_f64();
            epoch_losses.push(mean_nll);
            epoch_wall_secs.push(wall_secs);
            edge_obs::counter!("core.train.epochs").inc(1);
            edge_obs::gauge!("core.train.nll").set(mean_nll);
            if telemetry_on {
                edge_obs::telemetry::record_epoch(edge_obs::EpochRecord {
                    epoch,
                    nll: mean_nll,
                    grad_norms: ["gcn", "attention", "head"]
                        .iter()
                        .zip(grad_sq)
                        .map(|(name, sq)| (name.to_string(), sq.sqrt()))
                        .collect(),
                    lr: self.config.lr as f64,
                    tweets_per_sec: n_tweets as f64 / wall_secs.max(1e-9),
                    wall_secs,
                });
            }
        }
        TrainReport { epoch_losses, epoch_wall_secs, n_train_used: usable.len(), graph }
    }

    /// Telemetry grouping of a parameter: 0 = GCN stack, 1 = attention
    /// scorer, 2 = mixture head.
    fn param_group(&self, pid: ParamId) -> usize {
        if self.w_gcn.contains(&pid) {
            0
        } else if pid == self.q1 || pid == self.b1 {
            1
        } else {
            2
        }
    }

    /// Recomputes the cached diffused embeddings from the current weights.
    fn refresh_smoothed(&mut self) {
        self.smoothed = if self.config.use_gcn {
            let weights: Vec<&Matrix> = self.w_gcn.iter().map(|&w| self.params.get(w)).collect();
            gcn_infer(&self.adjacency, &self.features, &weights)
        } else {
            self.features.clone()
        };
    }

    /// Rebuilds a model from its persisted parts (see `persist`); the
    /// diffused-embedding cache is recomputed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        config: EdgeConfig,
        ner: EntityRecognizer,
        index: EntityIndex,
        adjacency: Arc<CsrMatrix>,
        features: Matrix,
        params: ParamStore,
        w_gcn: Vec<ParamId>,
        q1: ParamId,
        b1: ParamId,
        q2: ParamId,
        b2: ParamId,
    ) -> Self {
        let mut model = Self {
            config,
            ner,
            index,
            adjacency,
            features,
            params,
            w_gcn,
            q1,
            b1,
            q2,
            b2,
            smoothed: Matrix::zeros(0, 0),
        };
        model.refresh_smoothed();
        model
    }

    /// The model's configuration.
    pub fn config(&self) -> &EdgeConfig {
        &self.config
    }

    /// The normalized adjacency operator (persistence accessor).
    pub fn adjacency_matrix(&self) -> &Arc<CsrMatrix> {
        &self.adjacency
    }

    /// The entity2vec feature matrix `X` (persistence accessor).
    pub fn feature_matrix(&self) -> &Matrix {
        &self.features
    }

    /// The trained parameters (persistence accessor).
    pub fn param_store(&self) -> &ParamStore {
        &self.params
    }

    /// The per-layer GCN weight ids (persistence accessor).
    pub fn gcn_param_ids(&self) -> &[ParamId] {
        &self.w_gcn
    }

    /// The attention parameters `(Q1, b1)` (persistence accessor).
    pub fn attention_param_ids(&self) -> (ParamId, ParamId) {
        (self.q1, self.b1)
    }

    /// The mixture-head parameters `(Q2, b2)` (persistence accessor).
    pub fn head_param_ids(&self) -> (ParamId, ParamId) {
        (self.q2, self.b2)
    }

    /// The entity inventory.
    pub fn entity_index(&self) -> &EntityIndex {
        &self.index
    }

    /// The recognizer the model uses at inference.
    pub fn recognizer(&self) -> &EntityRecognizer {
        &self.ner
    }

    /// The diffused (spatially smoothed) embedding of entity `idx`.
    pub fn smoothed_embedding(&self, idx: usize) -> &[f32] {
        self.smoothed.row(idx)
    }

    /// The entity indices a tweet text resolves to (known entities only).
    pub fn resolve_entities(&self, text: &str) -> Vec<usize> {
        let mut ids: Vec<usize> =
            self.ner.recognize(text).into_iter().filter_map(|m| self.index.get(&m.id)).collect();
        ids.sort_unstable();
        ids.dedup();
        edge_obs::counter!("core.ner.resolve.calls").inc(1);
        if ids.is_empty() {
            // The tweet mentions no entity present in the training graph —
            // the coverage gap the paper excludes (and the quantity the
            // `evaluate` miss rate reports).
            edge_obs::counter!("core.ner.resolve.misses").inc(1);
        }
        ids
    }

    /// Predicts a location mixture for a tweet text. Returns `None` when the
    /// tweet contains no entity present in the training graph (the ~2.8% of
    /// test tweets the paper excludes).
    pub fn predict(&self, text: &str) -> Option<Prediction> {
        edge_obs::counter!("core.predict.calls").inc(1);
        let entities = self.resolve_entities(text);
        if entities.is_empty() {
            return None;
        }
        Some(self.predict_entities(&entities))
    }

    /// Predicts a batch of tweet texts, fanning the work across the
    /// `edge-par` pool (prediction is pure). Output is in input order;
    /// uncovered tweets yield `None` at their position.
    pub fn predict_batch(&self, texts: &[&str]) -> Vec<Option<Prediction>> {
        use rayon::prelude::*;
        let _span = edge_obs::span("predict_batch");
        texts.par_iter().map(|t| self.predict(t)).collect()
    }

    /// Predicts from resolved entity indices.
    pub fn predict_entities(&self, entities: &[usize]) -> Prediction {
        assert!(!entities.is_empty(), "prediction needs at least one entity");
        let (z, weights) = if self.config.use_attention {
            attention_infer(
                &self.smoothed,
                entities,
                self.params.get(self.q1),
                self.params.get(self.b1),
            )
        } else {
            (sum_infer(&self.smoothed, entities), Vec::new())
        };
        let theta = z.matmul(self.params.get(self.q2)).add_row_broadcast(self.params.get(self.b2));
        let mixture = decode_theta(theta.row(0), self.config.n_components);
        let point = mixture.mode();
        let attention = entities
            .iter()
            .zip(weights)
            .map(|(&e, w)| (self.index.name(e).to_string(), w))
            .collect();
        Prediction { mixture, point, attention }
    }

    /// Evaluates on a test split: returns `(prediction, truth)` pairs for
    /// covered tweets (in input order) and the coverage fraction.
    /// Prediction is pure, so tweets are scored in parallel.
    pub fn evaluate(&self, test: &[Tweet]) -> (Vec<(Prediction, Point)>, f64) {
        use rayon::prelude::*;
        let _span = edge_obs::span("evaluate");
        let out: Vec<(Prediction, Point)> = test
            .par_iter()
            .filter_map(|t| self.predict(&t.text).map(|p| (p, t.location)))
            .collect();
        let coverage = out.len() as f64 / test.len().max(1) as f64;
        // Uncovered tweets are exactly those whose entity resolution came up
        // empty, so the NER miss rate is the complement of coverage.
        edge_obs::gauge!("core.ner.miss_rate").set(1.0 - coverage);
        (out, coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{dataset_recognizer, nyma, PresetSize};
    use edge_geo::DistanceReport;

    fn trained() -> (EdgeModel, TrainReport, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 11);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let (model, report) = EdgeModel::train(train, ner, &d.bbox, EdgeConfig::smoke());
        (model, report, d)
    }

    #[test]
    fn training_reduces_loss() {
        let (_, report, _) = trained();
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first - 0.3, "loss should drop substantially: {first} -> {last}");
        assert_eq!(report.epoch_wall_secs.len(), report.epoch_losses.len());
        assert!(report.epoch_wall_secs.iter().all(|&s| s > 0.0));
        assert!(report.train_loop_secs() >= *report.epoch_wall_secs.last().unwrap());
        assert!(report.n_train_used > 1000);
        assert!(report.graph.n_edges > 100);
    }

    #[test]
    fn predictions_are_sane_and_interpretable() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let mut covered = 0;
        for t in test.iter().take(200) {
            let Some(p) = model.predict(&t.text) else { continue };
            covered += 1;
            assert_eq!(p.mixture.len(), model.config().n_components);
            assert!(p.point.is_finite());
            assert!(
                d.bbox.expand(0.5).contains(&p.point),
                "prediction far outside region: {:?}",
                p.point
            );
            // Attention weights form a distribution over the tweet's entities.
            if !p.attention.is_empty() {
                let sum: f32 = p.attention.iter().map(|(_, w)| w).sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
        assert!(covered > 150, "coverage too low: {covered}/200");
    }

    #[test]
    fn model_beats_region_center_baseline() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let (preds, coverage) = model.evaluate(test);
        assert!(coverage > 0.7, "coverage {coverage}");
        let pairs: Vec<(Point, Point)> = preds.iter().map(|(p, t)| (p.point, *t)).collect();
        let report = DistanceReport::from_pairs(&pairs).unwrap();
        // The fixed center-of-region guess.
        let center_pairs: Vec<(Point, Point)> =
            preds.iter().map(|(_, t)| (d.bbox.center(), *t)).collect();
        let center = DistanceReport::from_pairs(&center_pairs).unwrap();
        assert!(
            report.median_km < center.median_km,
            "EDGE median {} !< center {}",
            report.median_km,
            center.median_km
        );
        assert!(report.at_3km > center.at_3km);
    }

    #[test]
    fn unknown_text_is_not_covered() {
        let (model, _, _) = trained();
        assert!(model.predict("zzz qqq completely unknown words").is_none());
    }

    #[test]
    fn predict_batch_matches_serial_predict() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let texts: Vec<&str> = test.iter().take(64).map(|t| t.text.as_str()).collect();
        let batched = model.predict_batch(&texts);
        assert_eq!(batched.len(), texts.len());
        for (text, got) in texts.iter().zip(&batched) {
            let serial = model.predict(text);
            match (serial, got) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.point, b.point);
                    assert_eq!(a.attention, b.attention);
                }
                (a, b) => {
                    panic!("coverage mismatch for {text:?}: {:?} vs {:?}", a.is_some(), b.is_some())
                }
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let d = nyma(PresetSize::Smoke, 21);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 2;
        let (m1, r1) =
            EdgeModel::train(&train[..800], dataset_recognizer(&d), &d.bbox, cfg.clone());
        let (m2, r2) = EdgeModel::train(&train[..800], ner, &d.bbox, cfg);
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        let p1 = m1.predict_entities(&[0, 1]);
        let p2 = m2.predict_entities(&[0, 1]);
        assert_eq!(p1.point, p2.point);
    }

    #[test]
    fn ablation_variants_train() {
        let d = nyma(PresetSize::Smoke, 31);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let mut base = EdgeConfig::smoke();
        base.epochs = 3;
        for cfg in [
            base.clone().ablation_no_gcn(),
            base.clone().ablation_sum(),
            base.clone().ablation_no_mixture(),
        ] {
            let (model, report) =
                EdgeModel::train(&train[..1000], dataset_recognizer(&d), &d.bbox, cfg.clone());
            assert!(report.epoch_losses.last().unwrap().is_finite());
            let p = model.predict_entities(&[0]);
            assert_eq!(p.mixture.len(), cfg.n_components);
            if !cfg.use_attention {
                assert!(p.attention.is_empty(), "SUM ablation reports no attention");
            }
        }
        let _ = ner;
    }
}
