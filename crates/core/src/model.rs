//! The end-to-end EDGE model: entity2vec → entity graph → GCN diffusion →
//! attention aggregation → Gaussian-mixture head, trained by maximizing the
//! likelihood of geo-tagged training tweets (Eq. 13) with Adam.

use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use edge_data::Tweet;
use edge_geo::{BBox, BivariateGaussian, GaussianMixture, Point};
use edge_graph::{
    build_cooccurrence_graph, graph_stats, normalized_adjacency_triplets, GraphStats,
};
use edge_tensor::init::xavier_uniform;
use edge_tensor::tape::{NodeId, ParamId, ParamStore, Tape};
use edge_tensor::{Adam, CsrMatrix, Matrix, Optimizer, TapeArena};
use edge_text::EntityRecognizer;

use crate::artifact::{LazyAdjacency, LazyFeatures, SmoothedStore};
use crate::attention::{attention_aggregate, sum_aggregate};
use crate::checkpoint::{CheckpointState, Checkpointer, CHECKPOINT_VERSION};
use crate::config::EdgeConfig;
use crate::entity2vec::{run_entity2vec, EntityIndex};
use crate::error::{PredictError, TrainError};
use crate::gcn::{gcn_forward, gcn_infer};
use crate::mdn::{init_head_bias, theta_width};
use crate::predict::{PredictInput, PredictOptions, PredictRequest, PredictResponse, Predictor};

/// A location prediction: the mixture (the paper's primary output), the
/// Eq.-14 point estimate, and the interpretability signals.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The predicted Gaussian mixture (Eq. 6).
    pub mixture: GaussianMixture,
    /// The density-argmax location (Eq. 14).
    pub point: Point,
    /// Per-entity attention weights `(entity id, weight)`, the "which
    /// entities drove this prediction" signal (empty under the SUM
    /// ablation).
    pub attention: Vec<(String, f32)>,
}

/// Training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean per-tweet NLL per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds per epoch (same indexing as `epoch_losses`).
    pub epoch_wall_secs: Vec<f64>,
    /// Training tweets actually used (those with ≥1 recognized entity).
    pub n_train_used: usize,
    /// Entity-graph statistics.
    pub graph: GraphStats,
    /// Divergence-guard rollbacks performed over the run.
    pub rollbacks: u64,
    /// Epoch the run (re)started from: 0 for a fresh run, the resumed
    /// checkpoint's next epoch otherwise.
    pub start_epoch: usize,
    /// Minimum heap allocations observed in a single training batch —
    /// `Some(0)` demonstrates the zero-allocation steady state. `None`
    /// unless the `alloc-stats` counting allocator is compiled in.
    pub steady_batch_allocs: Option<u64>,
}

/// Fault-tolerance knobs for [`EdgeModel::train`]. The default disables
/// checkpointing entirely (`checkpoint_dir: None`), matching the previous
/// behavior of `train`.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Where to write checkpoints; `None` disables checkpointing (and with
    /// it, divergence-guard rollbacks — a diverging run then fails fast).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint after every N-th epoch (minimum 1).
    pub checkpoint_every: usize,
    /// How many recent checkpoints to retain (minimum 1).
    pub keep_last: usize,
    /// Resume from the newest verifiable checkpoint in `checkpoint_dir`
    /// instead of starting fresh. The resumed run replays the remaining
    /// epochs bit-for-bit identically to an uninterrupted run.
    pub resume: bool,
    /// Rollback budget for the divergence guard: after this many rollbacks,
    /// the run fails with [`TrainError::Diverged`].
    pub max_rollbacks: u32,
    /// Optional global-norm gradient clipping threshold.
    pub grad_clip: Option<f32>,
    /// Disable cross-batch buffer recycling and allocate every tape buffer
    /// fresh — the reference mode the arena path is verified against (its
    /// results are bit-for-bit identical; this switch only changes where the
    /// memory comes from).
    pub fresh_alloc: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            checkpoint_every: 1,
            keep_last: 3,
            resume: false,
            max_rollbacks: 3,
            grad_clip: None,
            fresh_alloc: false,
        }
    }
}

/// Derives the batch-shuffle seed for one epoch. Shuffle order is a pure
/// function of `(master seed, epoch)` — the property that lets a resumed
/// run replay epochs identically without serializing RNG state. The odd
/// constant is the splitmix64 increment, decorrelating adjacent epochs.
fn epoch_seed(seed: u64, epoch: usize) -> u64 {
    seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Scales all gradients jointly so their global L2 norm is at most `clip`.
/// A non-finite norm is left untouched — the divergence guard handles it.
fn clip_global_norm(grads: &mut [(ParamId, Matrix)], clip: f32) {
    let sq: f64 = grads.iter().flat_map(|(_, g)| g.data()).map(|&v| v as f64 * v as f64).sum();
    let norm = sq.sqrt();
    if norm.is_finite() && norm > clip as f64 {
        let factor = (clip as f64 / norm) as f32;
        for (_, g) in grads.iter_mut() {
            g.scale_inplace(factor);
        }
    }
}

impl TrainReport {
    /// Total wall-clock seconds spent in the optimization loop.
    pub fn train_loop_secs(&self) -> f64 {
        self.epoch_wall_secs.iter().sum()
    }
}

/// The trained EDGE model.
pub struct EdgeModel {
    config: EdgeConfig,
    ner: EntityRecognizer,
    index: EntityIndex,
    /// Normalized adjacency; lazily materialized on mmap-loaded models
    /// (only re-saving or re-training ever touches it).
    adjacency: LazyAdjacency,
    /// Entity2vec features, shared with training tapes zero-copy; lazily
    /// materialized on mmap-loaded models.
    features: LazyFeatures,
    params: ParamStore,
    w_gcn: Vec<ParamId>,
    q1: ParamId,
    b1: ParamId,
    q2: ParamId,
    b2: ParamId,
    /// Cached diffused embeddings for inference (refreshed after training);
    /// on mmap-loaded models a borrowed — possibly quantized — view of the
    /// artifact's `smoothed` section.
    smoothed: SmoothedStore,
    /// Training-split location prior (one Gaussian over all training
    /// tweets), the opt-in fallback for zero-entity tweets.
    prior: Option<GaussianMixture>,
    /// Whether `predict` falls back to `prior` for zero-entity tweets.
    fallback_prior: bool,
}

impl std::fmt::Debug for EdgeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeModel")
            .field("entities", &self.index.len())
            .field("params", &self.params.len())
            .field("prior", &self.prior.is_some())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl EdgeModel {
    /// Trains EDGE end-to-end on the training split.
    ///
    /// `ner` is the recognizer with the corpus gazetteer; `bbox` is the
    /// study region (used only to initialize the mixture head sanely).
    /// `opts` controls checkpointing, resume, and the divergence guard —
    /// [`TrainOptions::default`] disables all of it.
    ///
    /// Bad input is a typed [`TrainError`], never a panic: an empty corpus,
    /// a corpus without recognizable entities, an invalid configuration, or
    /// an optimization that diverges beyond recovery.
    pub fn train(
        train: &[Tweet],
        ner: EntityRecognizer,
        bbox: &BBox,
        config: EdgeConfig,
        opts: &TrainOptions,
    ) -> Result<(Self, TrainReport), TrainError> {
        config.check().map_err(TrainError::InvalidConfig)?;
        if train.is_empty() {
            return Err(TrainError::EmptyCorpus);
        }
        let _train_span = edge_obs::span("train");

        // Stage 1: entity2vec.
        let e2v = {
            let _span = edge_obs::span("entity2vec");
            run_entity2vec(train, &ner, &config.sgns, config.embed_dim)
        };
        if e2v.index.len() < 2 {
            return Err(TrainError::NoEntities(format!(
                "training corpus yielded {} entities (need at least 2)",
                e2v.index.len()
            )));
        }

        // Stage 2: co-occurrence graph + normalized adjacency.
        let _graph_span = edge_obs::span("graph.build");
        let graph =
            build_cooccurrence_graph(e2v.index.len(), e2v.tweet_entities.iter().map(Vec::as_slice));
        let stats = graph_stats(&graph);
        let adjacency = Arc::new(CsrMatrix::from_triplets(
            e2v.index.len(),
            e2v.index.len(),
            &normalized_adjacency_triplets(&graph),
        ));
        drop(_graph_span);
        edge_obs::gauge!("core.graph.nodes").set(e2v.index.len() as f64);
        edge_obs::gauge!("core.graph.edges").set(stats.n_edges as f64);

        // Stage 3: parameters.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let mut w_gcn = Vec::new();
        let mut in_dim = config.embed_dim;
        for layer in 0..config.gcn_layers {
            w_gcn.push(
                params.add(
                    format!("w_gcn{layer}"),
                    xavier_uniform(in_dim, config.hidden_dim, &mut rng),
                ),
            );
            in_dim = config.hidden_dim;
        }
        let h_dim = if config.use_gcn { config.hidden_dim } else { config.embed_dim };
        let q1 = params.add("q1", xavier_uniform(h_dim, 1, &mut rng));
        // b1 starts at +1 so the Eq.-2 scores begin in the ReLU's active
        // region. At b1 = 0 roughly half the scores clamp; SGD then walks
        // the rest below zero and the whole attention layer dies (zero
        // gradient forever, permanently uniform weights). Softmax is
        // shift-invariant, so the positive offset changes nothing else.
        let b1 = params.add("b1", Matrix::full(1, 1, 1.0));
        let out = theta_width(config.n_components);
        // Small output weights + region-tiling bias: predictions start at
        // the bias mixture and move from there.
        let q2 = params.add("q2", xavier_uniform(h_dim, out, &mut rng).scale(0.1));
        let b2 = params.add("b2", init_head_bias(bbox, config.n_components));

        let features = Arc::new(Matrix::from_vec(
            e2v.index.len(),
            config.embed_dim,
            e2v.embeddings.iter().flatten().copied().collect(),
        ));

        // The training-split location prior, kept for the opt-in
        // zero-entity fallback at prediction time.
        let locations: Vec<Point> = train.iter().map(|t| t.location).collect();
        let prior = BivariateGaussian::fit(&locations).map(GaussianMixture::single);

        let mut model = Self {
            config,
            ner,
            index: e2v.index,
            adjacency: LazyAdjacency::Ready(adjacency),
            features: LazyFeatures::Ready(features),
            params,
            w_gcn,
            q1,
            b1,
            q2,
            b2,
            smoothed: SmoothedStore::Owned(Matrix::zeros(0, 0)),
            prior,
            fallback_prior: false,
        };

        // Stage 4: end-to-end optimization (Eq. 13).
        let report = model.optimize(train, &e2v.tweet_entities, stats, opts)?;
        model.refresh_smoothed();
        Ok((model, report))
    }

    /// Builds the Adam optimizer with this model's decay-exclusion set.
    fn make_optimizer(&self, lr: f32) -> Adam {
        let mut optimizer = Adam::new(lr, 0.9, 0.999, 1e-8, self.config.weight_decay);
        // Biases carry non-regularizable scale (the head bias holds the
        // degree-valued component means); decay applies to weights only.
        optimizer.exclude_from_decay(self.b1);
        optimizer.exclude_from_decay(self.b2);
        // The attention scorer q1 is a single d-vector whose gradient
        // pressure is weak early in training (the mixture head can hedge
        // instead); decaying it collapses the scores into the ReLU dead
        // zone and the attention degenerates to a uniform average. Exempt
        // it so Eq. 2-3 can actually differentiate entities.
        optimizer.exclude_from_decay(self.q1);
        optimizer
    }

    /// Can this freshly initialized model continue from `state`? Guards
    /// against resuming under a different configuration or corpus.
    fn check_resume_compat(&self, state: &CheckpointState) -> Result<(), TrainError> {
        use crate::persist::PersistError;
        if state.config != self.config {
            return Err(TrainError::Checkpoint(PersistError::Corrupt(
                "checkpoint was written under a different configuration".to_string(),
            )));
        }
        if state.params.len() != self.params.len() {
            return Err(TrainError::Checkpoint(PersistError::Corrupt(format!(
                "checkpoint stores {} parameters, this corpus initializes {}",
                state.params.len(),
                self.params.len()
            ))));
        }
        for i in 0..self.params.len() {
            let (id, fresh) = (ParamId(i), self.params.get(ParamId(i)));
            if state.params.get(id).shape() != fresh.shape() {
                return Err(TrainError::Checkpoint(PersistError::Corrupt(format!(
                    "parameter {i} is {:?} in the checkpoint but {:?} for this corpus",
                    state.params.get(id).shape(),
                    fresh.shape()
                ))));
            }
        }
        Ok(())
    }

    /// Restores parameters, Adam moments and epoch history from `state`,
    /// stepping at `lr` (the checkpoint's own rate on resume, a halved one
    /// on rollback). Returns `(next_epoch, stored rollbacks, optimizer)`.
    fn restore_from(
        &mut self,
        state: CheckpointState,
        lr: f32,
        epoch_losses: &mut Vec<f64>,
        epoch_wall_secs: &mut Vec<f64>,
    ) -> (usize, u64, Adam) {
        let mut optimizer = self.make_optimizer(lr);
        optimizer.load_state(state.adam);
        self.params = state.params;
        *epoch_losses = state.epoch_losses;
        *epoch_wall_secs = state.epoch_wall_secs;
        (state.next_epoch, state.rollbacks, optimizer)
    }

    fn optimize(
        &mut self,
        train: &[Tweet],
        tweet_entities: &[Vec<usize>],
        graph: GraphStats,
        opts: &TrainOptions,
    ) -> Result<TrainReport, TrainError> {
        // Usable tweets: at least one entity.
        let usable: Vec<usize> =
            (0..train.len()).filter(|&i| !tweet_entities[i].is_empty()).collect();
        if usable.is_empty() {
            return Err(TrainError::NoEntities(
                "no training tweet has a recognized entity".to_string(),
            ));
        }

        let checkpointer = opts
            .checkpoint_dir
            .as_ref()
            .map(|dir| Checkpointer::new(dir, opts.checkpoint_every, opts.keep_last));

        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut epoch_wall_secs = Vec::with_capacity(self.config.epochs);
        let mut lr = self.config.lr;
        let mut rollbacks = 0u64;
        let mut epoch = 0usize;
        let mut optimizer = self.make_optimizer(lr);

        if opts.resume {
            let Some(cp) = &checkpointer else {
                return Err(TrainError::InvalidConfig(
                    "resume requires a checkpoint directory".to_string(),
                ));
            };
            if let Some((path, state)) = cp.latest()? {
                self.check_resume_compat(&state)?;
                lr = state.lr;
                let (e, r, o) =
                    self.restore_from(state, lr, &mut epoch_losses, &mut epoch_wall_secs);
                (epoch, rollbacks, optimizer) = (e, r, o);
                edge_obs::counter!("checkpoint.resumes").inc(1);
                edge_obs::progress!(
                    "[checkpoint] resuming from {} at epoch {epoch}",
                    path.display()
                );
            }
        }
        let start_epoch = epoch;

        let telemetry_on = edge_obs::telemetry::active();
        let alloc_on = edge_obs::alloc::active();

        // Cross-batch recycled storage: the tape arena plus the staging
        // vectors for aggregation rows, targets and gradients all live for
        // the whole run, so once the first epoch has warmed the pools a
        // steady-state batch performs zero heap allocations
        // (`opts.fresh_alloc` reverts to per-batch allocation — the
        // bit-identical reference mode).
        let mut arena = TapeArena::new();
        let mut z_rows: Vec<NodeId> = Vec::new();
        let mut targets: Vec<(f64, f64)> = Vec::new();
        let mut grads: Vec<(ParamId, Matrix)> = Vec::new();
        let mut steady_batch_allocs: Option<u64> = None;

        'epochs: while epoch < self.config.epochs {
            let _epoch_span = edge_obs::span("epoch");
            let epoch_start = std::time::Instant::now();
            // Shuffle order is derived from (seed, epoch) alone so resumed
            // and uninterrupted runs walk identical batch sequences.
            let mut order = usable.clone();
            order.shuffle(&mut StdRng::seed_from_u64(epoch_seed(self.config.seed, epoch)));
            let mut epoch_nll = 0.0f64;
            let mut n_tweets = 0usize;
            // Per-group sum of squared gradient entries over the epoch
            // (gcn / attention / head), reported as L2 norms in telemetry.
            let mut grad_sq = [0.0f64; 3];
            let mut epoch_min_allocs: Option<u64> = None;
            for batch in order.chunks(self.config.batch_size) {
                let allocs_before =
                    if alloc_on { Some(edge_obs::alloc::counts().count) } else { None };
                let mut tape = if opts.fresh_alloc {
                    Tape::new()
                } else {
                    Tape::with_arena(std::mem::take(&mut arena))
                };
                let x = tape.constant_shared(Arc::clone(self.features.get()));
                let smoothed = if self.config.use_gcn {
                    gcn_forward(&mut tape, self.adjacency.get(), x, &self.w_gcn, &self.params)
                } else {
                    x
                };
                z_rows.clear();
                targets.clear();
                for &i in batch {
                    let z = if self.config.use_attention {
                        attention_aggregate(
                            &mut tape,
                            smoothed,
                            &tweet_entities[i],
                            self.q1,
                            self.b1,
                            &self.params,
                        )
                    } else {
                        sum_aggregate(&mut tape, smoothed, &tweet_entities[i])
                    };
                    z_rows.push(z);
                    targets.push((train[i].location.lat, train[i].location.lon));
                }
                let mdn_span = edge_obs::span("mdn");
                let z = tape.concat_rows(&z_rows); // B x h
                let w = tape.param(self.q2, &self.params);
                let b = tape.param(self.b2, &self.params);
                let lin = tape.matmul(z, w);
                let theta = tape.add_row_broadcast(lin, b); // Eq. 7
                let nll_sum = tape.gmm_nll(theta, &targets, self.config.n_components);
                let loss = tape.scale(nll_sum, 1.0 / batch.len() as f32);
                drop(mdn_span);
                let batch_nll = tape.scalar(nll_sum) as f64;
                tape.backward_into(loss, &mut grads);
                // Retire the tape *before* the optimizer step: its shared
                // parameter leaves drop their refcounts here, so Adam's
                // copy-on-write `get_mut` updates in place instead of
                // deep-cloning every parameter.
                if opts.fresh_alloc {
                    drop(tape);
                } else {
                    arena = tape.into_arena();
                }
                if edge_faults::enabled() && edge_faults::fired("train.poison_grads") {
                    // Fault-injection hook: simulate a numerically exploded
                    // step by poisoning the first gradient.
                    if let Some((_, g)) = grads.first_mut() {
                        g.fill(f32::NAN);
                    }
                }
                if let Some(clip) = opts.grad_clip {
                    clip_global_norm(&mut grads, clip);
                }

                // Divergence guard: a non-finite loss or gradient must not
                // reach the parameters. Roll back to the last checkpoint at
                // half the learning rate, or fail with a typed error.
                let loss_finite = batch_nll.is_finite();
                let finite = if !loss_finite {
                    edge_obs::counter!("guard.nonfinite_loss").inc(1);
                    false
                } else if grads.iter().any(|(_, g)| g.data().iter().any(|v| !v.is_finite())) {
                    edge_obs::counter!("guard.nonfinite_grads").inc(1);
                    false
                } else {
                    true
                };
                if !finite {
                    let detail = if loss_finite {
                        "non-finite gradient".to_string()
                    } else {
                        format!("non-finite loss {batch_nll}")
                    };
                    rollbacks += 1;
                    edge_obs::counter!("guard.rollbacks").inc(1);
                    if rollbacks > opts.max_rollbacks as u64 {
                        return Err(TrainError::Diverged {
                            epoch,
                            rollbacks,
                            detail: format!("{detail}; rollback budget exhausted"),
                        });
                    }
                    let Some(cp) = &checkpointer else {
                        return Err(TrainError::Diverged {
                            epoch,
                            rollbacks,
                            detail: format!("{detail}; checkpointing disabled"),
                        });
                    };
                    let Some((path, state)) = cp.latest()? else {
                        return Err(TrainError::Diverged {
                            epoch,
                            rollbacks,
                            detail: format!("{detail}; no checkpoint to roll back to"),
                        });
                    };
                    self.check_resume_compat(&state)?;
                    lr *= 0.5;
                    let (e, _, o) =
                        self.restore_from(state, lr, &mut epoch_losses, &mut epoch_wall_secs);
                    (epoch, optimizer) = (e, o);
                    edge_obs::progress!(
                        "[guard] {detail} at epoch {epoch}: rolled back to {} with lr {lr}",
                        path.display()
                    );
                    if !opts.fresh_alloc {
                        for (_, g) in grads.drain(..) {
                            arena.recycle(g);
                        }
                    }
                    continue 'epochs;
                }

                if telemetry_on {
                    for (pid, g) in &grads {
                        let sq: f64 = g.data().iter().map(|&x| x as f64 * x as f64).sum();
                        grad_sq[self.param_group(*pid)] += sq;
                    }
                }
                let step_span = edge_obs::span("adam.step");
                optimizer.step(&mut self.params, &grads);
                drop(step_span);
                if opts.fresh_alloc {
                    grads.clear();
                } else {
                    // Gradient buffers go back to the pool for the next batch.
                    for (_, g) in grads.drain(..) {
                        arena.recycle(g);
                    }
                }
                if let Some(before) = allocs_before {
                    let delta = edge_obs::alloc::counts().count.saturating_sub(before);
                    epoch_min_allocs = Some(epoch_min_allocs.map_or(delta, |m| m.min(delta)));
                    steady_batch_allocs = Some(steady_batch_allocs.map_or(delta, |m| m.min(delta)));
                }

                epoch_nll += batch_nll;
                n_tweets += batch.len();
            }
            let mean_nll = epoch_nll / n_tweets as f64;
            let wall_secs = epoch_start.elapsed().as_secs_f64();
            epoch_losses.push(mean_nll);
            epoch_wall_secs.push(wall_secs);
            edge_obs::counter!("core.train.epochs").inc(1);
            edge_obs::gauge!("core.train.nll").set(mean_nll);
            if telemetry_on {
                edge_obs::telemetry::record_epoch(edge_obs::EpochRecord {
                    epoch,
                    nll: mean_nll,
                    grad_norms: ["gcn", "attention", "head"]
                        .iter()
                        .zip(grad_sq)
                        .map(|(name, sq)| (name.to_string(), sq.sqrt()))
                        .collect(),
                    lr: lr as f64,
                    tweets_per_sec: n_tweets as f64 / wall_secs.max(1e-9),
                    wall_secs,
                    rollbacks,
                    batch_allocs: epoch_min_allocs,
                });
            }
            if let Some(cp) = &checkpointer {
                if cp.due_after(epoch) {
                    let state = CheckpointState {
                        schema_version: CHECKPOINT_VERSION,
                        config: self.config.clone(),
                        next_epoch: epoch + 1,
                        lr,
                        rollbacks,
                        params: self.params.clone(),
                        adam: optimizer.export_state(),
                        epoch_losses: epoch_losses.clone(),
                        epoch_wall_secs: epoch_wall_secs.clone(),
                    };
                    if let Err(e) = cp.write(&state) {
                        // A failed checkpoint write must not kill a healthy
                        // run; it only narrows recovery options.
                        edge_obs::counter!("checkpoint.write_errors").inc(1);
                        edge_obs::progress!("[checkpoint] write failed (continuing): {e}");
                    }
                }
            }
            // Fault-injection hook for interruption tests: an `err` here
            // aborts training exactly at an epoch boundary, after any due
            // checkpoint was written — the in-process analogue of SIGKILL.
            edge_faults::failpoint!("train.epoch_end");
            epoch += 1;
        }
        Ok(TrainReport {
            epoch_losses,
            epoch_wall_secs,
            n_train_used: usable.len(),
            graph,
            rollbacks,
            start_epoch,
            steady_batch_allocs,
        })
    }

    /// Telemetry grouping of a parameter: 0 = GCN stack, 1 = attention
    /// scorer, 2 = mixture head.
    fn param_group(&self, pid: ParamId) -> usize {
        if self.w_gcn.contains(&pid) {
            0
        } else if pid == self.q1 || pid == self.b1 {
            1
        } else {
            2
        }
    }

    /// Recomputes the cached diffused embeddings from the current weights.
    fn refresh_smoothed(&mut self) {
        self.smoothed = SmoothedStore::Owned(if self.config.use_gcn {
            let weights: Vec<&Matrix> = self.w_gcn.iter().map(|&w| self.params.get(w)).collect();
            gcn_infer(self.adjacency.get(), self.features.get(), &weights)
        } else {
            Matrix::clone(self.features.get())
        });
    }

    /// Rebuilds a model from its persisted parts (see `persist`); the
    /// diffused-embedding cache is recomputed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        config: EdgeConfig,
        ner: EntityRecognizer,
        index: EntityIndex,
        adjacency: Arc<CsrMatrix>,
        features: Matrix,
        params: ParamStore,
        w_gcn: Vec<ParamId>,
        q1: ParamId,
        b1: ParamId,
        q2: ParamId,
        b2: ParamId,
        prior: Option<GaussianMixture>,
    ) -> Self {
        let mut model = Self {
            config,
            ner,
            index,
            adjacency: LazyAdjacency::Ready(adjacency),
            features: LazyFeatures::Ready(Arc::new(features)),
            params,
            w_gcn,
            q1,
            b1,
            q2,
            b2,
            smoothed: SmoothedStore::Owned(Matrix::zeros(0, 0)),
            prior,
            fallback_prior: false,
        };
        model.refresh_smoothed();
        model
    }

    /// Builds a model around pre-verified artifact stores — the mmap
    /// loading path in [`crate::artifact`]. The smoothed table arrives
    /// ready (stored precomputed in the artifact), so nothing is
    /// recomputed here: this is the microsecond cold-start constructor.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_stores(
        config: EdgeConfig,
        ner: EntityRecognizer,
        index: EntityIndex,
        adjacency: LazyAdjacency,
        features: LazyFeatures,
        params: ParamStore,
        w_gcn: Vec<ParamId>,
        q1: ParamId,
        b1: ParamId,
        q2: ParamId,
        b2: ParamId,
        smoothed: SmoothedStore,
        prior: Option<GaussianMixture>,
    ) -> Self {
        Self {
            config,
            ner,
            index,
            adjacency,
            features,
            params,
            w_gcn,
            q1,
            b1,
            q2,
            b2,
            smoothed,
            prior,
            fallback_prior: false,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &EdgeConfig {
        &self.config
    }

    /// The normalized adjacency operator (persistence accessor). On an
    /// mmap-loaded model this materializes the section on first touch;
    /// `fsck` has already vouched for its parseability — the fallible
    /// variant is [`Self::try_adjacency`], which the save paths use.
    pub fn adjacency_matrix(&self) -> &Arc<CsrMatrix> {
        self.adjacency.get()
    }

    /// Like [`Self::adjacency_matrix`], but surfaces a typed error if the
    /// artifact's adjacency section cannot be parsed.
    pub(crate) fn try_adjacency(&self) -> Result<&Arc<CsrMatrix>, crate::PersistError> {
        self.adjacency.try_get()
    }

    /// The entity2vec feature matrix `X` (persistence accessor). On an
    /// mmap-loaded model this materializes the section on first touch
    /// (infallible: shape and checksum were verified at open).
    pub fn feature_matrix(&self) -> &Matrix {
        self.features.get()
    }

    /// The inference embedding table (owned, or borrowed from an mmap).
    pub(crate) fn smoothed_store(&self) -> &SmoothedStore {
        &self.smoothed
    }

    /// The trained parameters (persistence accessor).
    pub fn param_store(&self) -> &ParamStore {
        &self.params
    }

    /// The per-layer GCN weight ids (persistence accessor).
    pub fn gcn_param_ids(&self) -> &[ParamId] {
        &self.w_gcn
    }

    /// The attention parameters `(Q1, b1)` (persistence accessor).
    pub fn attention_param_ids(&self) -> (ParamId, ParamId) {
        (self.q1, self.b1)
    }

    /// The mixture-head parameters `(Q2, b2)` (persistence accessor).
    pub fn head_param_ids(&self) -> (ParamId, ParamId) {
        (self.q2, self.b2)
    }

    /// The training-split location prior (persistence accessor; `None` when
    /// the training split was too small to fit one).
    pub fn prior(&self) -> Option<&GaussianMixture> {
        self.prior.as_ref()
    }

    /// Opt into (or out of) predicting the training-split prior for tweets
    /// with no recognized entity (legacy mutating flag, consulted only by
    /// the deprecated `predict`/`predict_batch` shims).
    #[deprecated(
        since = "0.6.0",
        note = "pass `PredictOptions { fallback_prior: true, .. }` to `Predictor::locate` instead"
    )]
    pub fn set_fallback_prior(&mut self, enabled: bool) {
        self.fallback_prior = enabled;
    }

    /// Whether the zero-entity prior fallback is active.
    #[deprecated(since = "0.6.0", note = "the fallback is per-call now; see `PredictOptions`")]
    pub fn fallback_prior_enabled(&self) -> bool {
        self.fallback_prior && self.prior.is_some()
    }

    /// The entity inventory.
    pub fn entity_index(&self) -> &EntityIndex {
        &self.index
    }

    /// The recognizer the model uses at inference.
    pub fn recognizer(&self) -> &EntityRecognizer {
        &self.ner
    }

    /// The diffused (spatially smoothed) embedding of entity `idx`,
    /// decoded to owned floats (quantized mmap models dequantize here).
    pub fn smoothed_embedding(&self, idx: usize) -> Vec<f32> {
        self.smoothed.row_to_vec(idx)
    }

    /// The entity indices a tweet text resolves to (known entities only).
    pub fn resolve_entities(&self, text: &str) -> Vec<usize> {
        let mut ids: Vec<usize> =
            self.ner.recognize(text).into_iter().filter_map(|m| self.index.get(&m.id)).collect();
        ids.sort_unstable();
        ids.dedup();
        edge_obs::counter!("core.ner.resolve.calls").inc(1);
        if ids.is_empty() {
            // The tweet mentions no entity present in the training graph —
            // the coverage gap the paper excludes (and the quantity the
            // `evaluate` miss rate reports).
            edge_obs::counter!("core.ner.resolve.misses").inc(1);
        }
        ids
    }

    /// Predicts one request without batching plumbing: resolves entities
    /// (for text input), applies the zero-entity policy from `opts`, and
    /// runs the tape-free inference engine. Both the [`Predictor`]
    /// implementation and the deprecated shims route through here, so the
    /// serving layer and the legacy API are bit-identical by construction.
    fn locate_one(
        &self,
        request: &PredictRequest,
        opts: &PredictOptions,
    ) -> Result<PredictResponse, PredictError> {
        edge_obs::counter!("core.predict.calls").inc(1);
        let resolved;
        let entities: &[usize] = match &request.input {
            PredictInput::Text(text) => {
                resolved = self.resolve_entities(text);
                &resolved
            }
            PredictInput::Entities(ids) => {
                if let Some(&bad) = ids.iter().find(|&&id| id >= self.index.len()) {
                    return Err(PredictError::EntityOutOfRange {
                        id: bad,
                        n_entities: self.index.len(),
                    });
                }
                ids
            }
        };
        if entities.is_empty() {
            if opts.fallback_prior {
                if let Some(prior) = &self.prior {
                    edge_obs::counter!("core.predict.fallbacks").inc(1);
                    return Ok(PredictResponse {
                        prediction: Prediction {
                            mixture: prior.clone(),
                            point: prior.mode(),
                            attention: Vec::new(),
                        },
                        from_fallback: true,
                    });
                }
            }
            return Err(PredictError::NoEntities);
        }
        let p = crate::infer::InferParams {
            q1: self.params.get(self.q1),
            b1: self.params.get(self.b1),
            q2: self.params.get(self.q2),
            b2: self.params.get(self.b2),
            use_attention: self.config.use_attention,
            n_components: self.config.n_components,
        };
        let (mixture, weights) = crate::infer::infer_prediction(&self.smoothed, entities, &p);
        let point = mixture.mode();
        let attention = entities
            .iter()
            .zip(weights)
            .map(|(&e, w)| (self.index.name(e).to_string(), w))
            .collect();
        Ok(PredictResponse {
            prediction: Prediction { mixture, point, attention },
            from_fallback: false,
        })
    }

    /// The [`PredictOptions`] equivalent of the deprecated mutating
    /// `set_fallback_prior` flag (used by the legacy shims only).
    fn legacy_options(&self) -> PredictOptions {
        PredictOptions { fallback_prior: self.fallback_prior }
    }

    /// Predicts a location mixture for a tweet text.
    #[deprecated(
        since = "0.6.0",
        note = "use `Predictor::locate` with `PredictRequest::text` (returns a typed \
                `PredictError::NoEntities` abstention instead of `None`)"
    )]
    pub fn predict(&self, text: &str) -> Option<Prediction> {
        self.locate_one(&PredictRequest::text(text), &self.legacy_options())
            .ok()
            .map(|r| r.prediction)
    }

    /// Predicts a batch of tweet texts.
    #[deprecated(
        since = "0.6.0",
        note = "use `Predictor::locate_batch` with `PredictRequest::text` requests"
    )]
    pub fn predict_batch(&self, texts: &[&str]) -> Vec<Option<Prediction>> {
        let requests: Vec<PredictRequest> =
            texts.iter().map(|&t| PredictRequest::text(t)).collect();
        self.locate_batch(&requests, &self.legacy_options())
            .into_iter()
            .map(|r| r.ok().map(|r| r.prediction))
            .collect()
    }

    /// Predicts from resolved entity indices.
    #[deprecated(since = "0.6.0", note = "use `Predictor::locate` with `PredictRequest::entities`")]
    pub fn predict_entities(&self, entities: &[usize]) -> Result<Prediction, PredictError> {
        self.locate_one(&PredictRequest::entities(entities), &PredictOptions::default())
            .map(|r| r.prediction)
    }
}

impl Predictor for EdgeModel {
    fn name(&self) -> &str {
        "EDGE"
    }

    /// Fans the batch across the `edge-par` pool (prediction is pure).
    /// Output is in input order, one result per request.
    fn locate_batch(
        &self,
        requests: &[PredictRequest],
        opts: &PredictOptions,
    ) -> Vec<Result<PredictResponse, PredictError>> {
        let _span = edge_obs::span("predict_batch");
        let mut out: Vec<Option<Result<PredictResponse, PredictError>>> =
            Vec::with_capacity(requests.len());
        out.resize_with(requests.len(), || None);
        edge_par::parallel_for_chunks_mut(&mut out, 1, |i, slot| {
            // Per-item stage span: `edge-par` re-adopts the submitter's
            // context on its workers, so this parents to the dispatching
            // span (and keeps its request id) even across threads.
            let _item = edge_obs::span("predict_item");
            slot[0] = Some(self.locate_one(&requests[i], opts));
        });
        out.into_iter().map(|r| r.expect("every request slot is filled")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{dataset_recognizer, nyma, PresetSize};
    use edge_geo::DistanceReport;

    fn trained() -> (EdgeModel, TrainReport, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 11);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let (model, report) =
            EdgeModel::train(train, ner, &d.bbox, EdgeConfig::smoke(), &TrainOptions::default())
                .expect("train");
        (model, report, d)
    }

    #[test]
    fn training_reduces_loss() {
        let (_, report, _) = trained();
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first - 0.3, "loss should drop substantially: {first} -> {last}");
        assert_eq!(report.epoch_wall_secs.len(), report.epoch_losses.len());
        assert!(report.epoch_wall_secs.iter().all(|&s| s > 0.0));
        assert!(report.train_loop_secs() >= *report.epoch_wall_secs.last().unwrap());
        assert!(report.n_train_used > 1000);
        assert!(report.graph.n_edges > 100);
    }

    #[test]
    fn predictions_are_sane_and_interpretable() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let opts = PredictOptions::default();
        let mut covered = 0;
        for t in test.iter().take(200) {
            let Ok(r) = model.locate(&PredictRequest::text(&t.text), &opts) else { continue };
            let p = r.prediction;
            covered += 1;
            assert_eq!(p.mixture.len(), model.config().n_components);
            assert!(p.point.is_finite());
            assert!(
                d.bbox.expand(0.5).contains(&p.point),
                "prediction far outside region: {:?}",
                p.point
            );
            // Attention weights form a distribution over the tweet's entities.
            if !p.attention.is_empty() {
                let sum: f32 = p.attention.iter().map(|(_, w)| w).sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
        assert!(covered > 150, "coverage too low: {covered}/200");
    }

    #[test]
    fn model_beats_region_center_baseline() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let outcome = model.evaluate(test, &PredictOptions::default());
        assert!(outcome.coverage > 0.7, "coverage {}", outcome.coverage);
        assert_eq!(outcome.pairs.len() + outcome.abstained, test.len());
        let report = DistanceReport::from_pairs(&outcome.point_pairs()).unwrap();
        // The fixed center-of-region guess.
        let center_pairs: Vec<(Point, Point)> =
            outcome.pairs.iter().map(|(_, t)| (d.bbox.center(), *t)).collect();
        let center = DistanceReport::from_pairs(&center_pairs).unwrap();
        assert!(
            report.median_km < center.median_km,
            "EDGE median {} !< center {}",
            report.median_km,
            center.median_km
        );
        assert!(report.at_3km > center.at_3km);
    }

    #[test]
    fn unknown_text_is_a_typed_abstention() {
        let (model, _, _) = trained();
        let err = model
            .locate(&PredictRequest::text("zzz qqq completely unknown words"), &Default::default())
            .unwrap_err();
        assert_eq!(err, PredictError::NoEntities);
    }

    #[test]
    fn locate_batch_matches_serial_locate() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let opts = PredictOptions::default();
        let requests: Vec<PredictRequest> =
            test.iter().take(64).map(|t| PredictRequest::text(&t.text)).collect();
        let batched = model.locate_batch(&requests, &opts);
        assert_eq!(batched.len(), requests.len());
        for (req, got) in requests.iter().zip(&batched) {
            let serial = model.locate(req, &opts);
            match (serial, got) {
                (Err(a), Err(b)) => assert_eq!(a, *b),
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.prediction.point, b.prediction.point);
                    assert_eq!(a.prediction.attention, b.prediction.attention);
                }
                (a, b) => {
                    panic!("coverage mismatch for {req:?}: {:?} vs {:?}", a.is_ok(), b.is_ok())
                }
            }
        }
    }

    #[test]
    fn stale_entity_indices_are_a_typed_error() {
        let (model, _, _) = trained();
        let n = model.entity_index().len();
        let err = model.locate(&PredictRequest::entities(vec![0, n]), &Default::default());
        assert_eq!(err.unwrap_err(), PredictError::EntityOutOfRange { id: n, n_entities: n });
    }

    /// The deprecated pre-`Predictor` surface stays behaviorally identical
    /// to the unified API it delegates to. This module is the shim layer's
    /// only sanctioned caller.
    #[allow(deprecated)]
    mod deprecated_shims {
        use super::*;

        #[test]
        fn shims_delegate_to_the_unified_api() {
            let (mut model, _, d) = trained();
            let (_, test) = d.paper_split();
            let t = test.iter().find(|t| !model.resolve_entities(&t.text).is_empty()).unwrap();
            let via_shim = model.predict(&t.text).expect("covered");
            let via_locate = model
                .locate(&PredictRequest::text(&t.text), &PredictOptions::default())
                .expect("covered");
            assert_eq!(via_shim.point, via_locate.prediction.point);
            assert_eq!(via_shim.attention, via_locate.prediction.attention);

            let batched = model.predict_batch(&[t.text.as_str(), "zzz unknown"]);
            assert_eq!(batched[0].as_ref().unwrap().point, via_shim.point);
            assert!(batched[1].is_none(), "uncovered text maps back to None");

            let ids = model.resolve_entities(&t.text);
            let via_entities = model.predict_entities(&ids).expect("covered");
            assert_eq!(via_entities.point, via_shim.point);
            assert_eq!(
                model.predict_entities(&[]).unwrap_err(),
                PredictError::NoEntities,
                "empty entity slice stays a typed error"
            );

            // The mutating fallback flag still drives the shims.
            assert!(model.predict("zzz qqq unknown").is_none());
            model.set_fallback_prior(true);
            assert!(model.fallback_prior_enabled());
            let p = model.predict("zzz qqq unknown").expect("prior fallback");
            assert!(p.attention.is_empty());
        }
    }

    #[test]
    fn training_is_deterministic() {
        let d = nyma(PresetSize::Smoke, 21);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 2;
        let opts = TrainOptions::default();
        let (m1, r1) =
            EdgeModel::train(&train[..800], dataset_recognizer(&d), &d.bbox, cfg.clone(), &opts)
                .unwrap();
        let (m2, r2) = EdgeModel::train(&train[..800], ner, &d.bbox, cfg, &opts).unwrap();
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        let req = PredictRequest::entities(vec![0, 1]);
        let p1 = m1.locate(&req, &Default::default()).unwrap();
        let p2 = m2.locate(&req, &Default::default()).unwrap();
        assert_eq!(p1.prediction.point, p2.prediction.point);
    }

    #[test]
    fn fresh_alloc_reference_mode_is_bit_identical() {
        // The arena path re-carves recycled (re-zeroed) buffers; the
        // fresh-alloc path allocates everything. Same numbers, to the bit —
        // losses, parameters, and predictions.
        let d = nyma(PresetSize::Smoke, 21);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 2;
        let (m1, r1) = EdgeModel::train(
            &train[..800],
            dataset_recognizer(&d),
            &d.bbox,
            cfg.clone(),
            &TrainOptions::default(),
        )
        .unwrap();
        let opts = TrainOptions { fresh_alloc: true, ..TrainOptions::default() };
        let (m2, r2) =
            EdgeModel::train(&train[..800], dataset_recognizer(&d), &d.bbox, cfg, &opts).unwrap();
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        for ((_, name, a), (_, _, b)) in m1.param_store().iter().zip(m2.param_store().iter()) {
            assert_eq!(a.shape(), b.shape(), "{name}");
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!(x.to_bits() == y.to_bits(), "{name}: {x} vs {y}");
            }
        }
        let req = PredictRequest::entities(vec![0, 1]);
        let p1 = m1.locate(&req, &Default::default()).unwrap().prediction;
        let p2 = m2.locate(&req, &Default::default()).unwrap().prediction;
        assert_eq!(p1.point, p2.point);
        assert_eq!(p1.attention, p2.attention);
    }

    #[test]
    fn ablation_variants_train() {
        let d = nyma(PresetSize::Smoke, 31);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let mut base = EdgeConfig::smoke();
        base.epochs = 3;
        for cfg in [
            base.clone().ablation_no_gcn(),
            base.clone().ablation_sum(),
            base.clone().ablation_no_mixture(),
        ] {
            let (model, report) = EdgeModel::train(
                &train[..1000],
                dataset_recognizer(&d),
                &d.bbox,
                cfg.clone(),
                &TrainOptions::default(),
            )
            .unwrap();
            assert!(report.epoch_losses.last().unwrap().is_finite());
            let p = model
                .locate(&PredictRequest::entities(vec![0]), &Default::default())
                .unwrap()
                .prediction;
            assert_eq!(p.mixture.len(), cfg.n_components);
            if !cfg.use_attention {
                assert!(p.attention.is_empty(), "SUM ablation reports no attention");
            }
        }
        let _ = ner;
    }

    #[test]
    fn empty_entity_request_is_a_typed_abstention() {
        let (model, _, _) = trained();
        let err = model.locate(&PredictRequest::entities(Vec::new()), &Default::default());
        assert_eq!(err.unwrap_err(), PredictError::NoEntities);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let d = nyma(PresetSize::Smoke, 11);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.gcn_layers = 0;
        let err =
            EdgeModel::train(train, dataset_recognizer(&d), &d.bbox, cfg, &TrainOptions::default())
                .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn fallback_prior_covers_unknown_text() {
        let (model, _, d) = trained();
        let req = PredictRequest::text("zzz qqq completely unknown words");
        let opts = PredictOptions::default();
        assert_eq!(model.locate(&req, &opts).unwrap_err(), PredictError::NoEntities);
        let with_prior = opts.with_fallback_prior(true);
        let r = model.locate(&req, &with_prior).expect("prior fallback");
        assert!(r.from_fallback, "the response records its prior provenance");
        assert!(r.prediction.attention.is_empty(), "prior prediction carries no attention");
        assert!(
            d.bbox.expand(0.5).contains(&r.prediction.point),
            "prior mode should sit in the study region: {:?}",
            r.prediction.point
        );
        // Entity-bearing tweets are unaffected by the option.
        let (_, test) = d.paper_split();
        let t = test.iter().find(|t| !model.resolve_entities(&t.text).is_empty()).unwrap();
        let treq = PredictRequest::text(&t.text);
        let with = model.locate(&treq, &with_prior).unwrap();
        let without = model.locate(&treq, &opts).unwrap();
        assert_eq!(with.prediction.point, without.prediction.point);
        assert!(!with.from_fallback);
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_resumes_from_scratch() {
        // Checkpointing must not perturb training; `resume` with an empty
        // directory is a fresh start. (Failpoint-driven interruption tests
        // live in `tests/faults.rs` — a separate process — because the
        // failpoint registry is global.)
        let d = nyma(PresetSize::Smoke, 41);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 3;
        let slice = &train[..600];
        let (_, plain) = EdgeModel::train(
            slice,
            dataset_recognizer(&d),
            &d.bbox,
            cfg.clone(),
            &TrainOptions::default(),
        )
        .unwrap();

        let dir = std::env::temp_dir().join(format!("edge_train_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            resume: true, // empty dir: must behave as a fresh start
            ..TrainOptions::default()
        };
        let (_, ckpt) =
            EdgeModel::train(slice, dataset_recognizer(&d), &d.bbox, cfg, &opts).unwrap();
        assert_eq!(plain.epoch_losses, ckpt.epoch_losses);
        assert_eq!(ckpt.start_epoch, 0);
        assert_eq!(ckpt.rollbacks, 0);
        let cp = Checkpointer::new(&dir, 2, 3);
        assert!(!cp.list().is_empty(), "checkpoints should have been written");
        let (_, state) = cp.latest().unwrap().expect("latest checkpoint");
        assert_eq!(state.next_epoch, 2, "epochs=3, every=2 → one checkpoint after epoch 1");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_dir_is_invalid_config() {
        let d = nyma(PresetSize::Smoke, 41);
        let (train, _) = d.paper_split();
        let opts = TrainOptions { resume: true, ..TrainOptions::default() };
        let err = EdgeModel::train(
            &train[..600],
            dataset_recognizer(&d),
            &d.bbox,
            EdgeConfig::smoke(),
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }
}
