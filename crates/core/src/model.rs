//! The end-to-end EDGE model: entity2vec → entity graph → GCN diffusion →
//! attention aggregation → Gaussian-mixture head, trained by maximizing the
//! likelihood of geo-tagged training tweets (Eq. 13) with Adam.

use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use edge_data::Tweet;
use edge_geo::{BBox, BivariateGaussian, GaussianMixture, Point};
use edge_graph::{
    build_cooccurrence_graph, graph_stats, normalized_adjacency_triplets, GraphStats,
};
use edge_tensor::init::xavier_uniform;
use edge_tensor::tape::{NodeId, ParamId, ParamStore, Tape};
use edge_tensor::{Adam, CsrMatrix, Matrix, Optimizer, TapeArena};
use edge_text::EntityRecognizer;

use crate::attention::{attention_aggregate, sum_aggregate};
use crate::checkpoint::{CheckpointState, Checkpointer, CHECKPOINT_VERSION};
use crate::config::EdgeConfig;
use crate::entity2vec::{run_entity2vec, EntityIndex};
use crate::error::{PredictError, TrainError};
use crate::gcn::{gcn_forward, gcn_infer};
use crate::mdn::{init_head_bias, theta_width};

/// A location prediction: the mixture (the paper's primary output), the
/// Eq.-14 point estimate, and the interpretability signals.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The predicted Gaussian mixture (Eq. 6).
    pub mixture: GaussianMixture,
    /// The density-argmax location (Eq. 14).
    pub point: Point,
    /// Per-entity attention weights `(entity id, weight)`, the "which
    /// entities drove this prediction" signal (empty under the SUM
    /// ablation).
    pub attention: Vec<(String, f32)>,
}

/// Training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean per-tweet NLL per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds per epoch (same indexing as `epoch_losses`).
    pub epoch_wall_secs: Vec<f64>,
    /// Training tweets actually used (those with ≥1 recognized entity).
    pub n_train_used: usize,
    /// Entity-graph statistics.
    pub graph: GraphStats,
    /// Divergence-guard rollbacks performed over the run.
    pub rollbacks: u64,
    /// Epoch the run (re)started from: 0 for a fresh run, the resumed
    /// checkpoint's next epoch otherwise.
    pub start_epoch: usize,
    /// Minimum heap allocations observed in a single training batch —
    /// `Some(0)` demonstrates the zero-allocation steady state. `None`
    /// unless the `alloc-stats` counting allocator is compiled in.
    pub steady_batch_allocs: Option<u64>,
}

/// Fault-tolerance knobs for [`EdgeModel::train`]. The default disables
/// checkpointing entirely (`checkpoint_dir: None`), matching the previous
/// behavior of `train`.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Where to write checkpoints; `None` disables checkpointing (and with
    /// it, divergence-guard rollbacks — a diverging run then fails fast).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint after every N-th epoch (minimum 1).
    pub checkpoint_every: usize,
    /// How many recent checkpoints to retain (minimum 1).
    pub keep_last: usize,
    /// Resume from the newest verifiable checkpoint in `checkpoint_dir`
    /// instead of starting fresh. The resumed run replays the remaining
    /// epochs bit-for-bit identically to an uninterrupted run.
    pub resume: bool,
    /// Rollback budget for the divergence guard: after this many rollbacks,
    /// the run fails with [`TrainError::Diverged`].
    pub max_rollbacks: u32,
    /// Optional global-norm gradient clipping threshold.
    pub grad_clip: Option<f32>,
    /// Disable cross-batch buffer recycling and allocate every tape buffer
    /// fresh — the reference mode the arena path is verified against (its
    /// results are bit-for-bit identical; this switch only changes where the
    /// memory comes from).
    pub fresh_alloc: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            checkpoint_every: 1,
            keep_last: 3,
            resume: false,
            max_rollbacks: 3,
            grad_clip: None,
            fresh_alloc: false,
        }
    }
}

/// Derives the batch-shuffle seed for one epoch. Shuffle order is a pure
/// function of `(master seed, epoch)` — the property that lets a resumed
/// run replay epochs identically without serializing RNG state. The odd
/// constant is the splitmix64 increment, decorrelating adjacent epochs.
fn epoch_seed(seed: u64, epoch: usize) -> u64 {
    seed ^ (epoch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Scales all gradients jointly so their global L2 norm is at most `clip`.
/// A non-finite norm is left untouched — the divergence guard handles it.
fn clip_global_norm(grads: &mut [(ParamId, Matrix)], clip: f32) {
    let sq: f64 = grads.iter().flat_map(|(_, g)| g.data()).map(|&v| v as f64 * v as f64).sum();
    let norm = sq.sqrt();
    if norm.is_finite() && norm > clip as f64 {
        let factor = (clip as f64 / norm) as f32;
        for (_, g) in grads.iter_mut() {
            g.scale_inplace(factor);
        }
    }
}

impl TrainReport {
    /// Total wall-clock seconds spent in the optimization loop.
    pub fn train_loop_secs(&self) -> f64 {
        self.epoch_wall_secs.iter().sum()
    }
}

/// The trained EDGE model.
pub struct EdgeModel {
    config: EdgeConfig,
    ner: EntityRecognizer,
    index: EntityIndex,
    adjacency: Arc<CsrMatrix>,
    /// Entity2vec features, shared with training tapes zero-copy.
    features: Arc<Matrix>,
    params: ParamStore,
    w_gcn: Vec<ParamId>,
    q1: ParamId,
    b1: ParamId,
    q2: ParamId,
    b2: ParamId,
    /// Cached diffused embeddings for inference (refreshed after training).
    smoothed: Matrix,
    /// Training-split location prior (one Gaussian over all training
    /// tweets), the opt-in fallback for zero-entity tweets.
    prior: Option<GaussianMixture>,
    /// Whether `predict` falls back to `prior` for zero-entity tweets.
    fallback_prior: bool,
}

impl std::fmt::Debug for EdgeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeModel")
            .field("entities", &self.index.len())
            .field("params", &self.params.len())
            .field("prior", &self.prior.is_some())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl EdgeModel {
    /// Trains EDGE end-to-end on the training split.
    ///
    /// `ner` is the recognizer with the corpus gazetteer; `bbox` is the
    /// study region (used only to initialize the mixture head sanely).
    /// `opts` controls checkpointing, resume, and the divergence guard —
    /// [`TrainOptions::default`] disables all of it.
    ///
    /// Bad input is a typed [`TrainError`], never a panic: an empty corpus,
    /// a corpus without recognizable entities, an invalid configuration, or
    /// an optimization that diverges beyond recovery.
    pub fn train(
        train: &[Tweet],
        ner: EntityRecognizer,
        bbox: &BBox,
        config: EdgeConfig,
        opts: &TrainOptions,
    ) -> Result<(Self, TrainReport), TrainError> {
        config.check().map_err(TrainError::InvalidConfig)?;
        if train.is_empty() {
            return Err(TrainError::EmptyCorpus);
        }
        let _train_span = edge_obs::span("train");

        // Stage 1: entity2vec.
        let e2v = {
            let _span = edge_obs::span("entity2vec");
            run_entity2vec(train, &ner, &config.sgns, config.embed_dim)
        };
        if e2v.index.len() < 2 {
            return Err(TrainError::NoEntities(format!(
                "training corpus yielded {} entities (need at least 2)",
                e2v.index.len()
            )));
        }

        // Stage 2: co-occurrence graph + normalized adjacency.
        let _graph_span = edge_obs::span("graph.build");
        let graph =
            build_cooccurrence_graph(e2v.index.len(), e2v.tweet_entities.iter().map(Vec::as_slice));
        let stats = graph_stats(&graph);
        let adjacency = Arc::new(CsrMatrix::from_triplets(
            e2v.index.len(),
            e2v.index.len(),
            &normalized_adjacency_triplets(&graph),
        ));
        drop(_graph_span);
        edge_obs::gauge!("core.graph.nodes").set(e2v.index.len() as f64);
        edge_obs::gauge!("core.graph.edges").set(stats.n_edges as f64);

        // Stage 3: parameters.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let mut w_gcn = Vec::new();
        let mut in_dim = config.embed_dim;
        for layer in 0..config.gcn_layers {
            w_gcn.push(
                params.add(
                    format!("w_gcn{layer}"),
                    xavier_uniform(in_dim, config.hidden_dim, &mut rng),
                ),
            );
            in_dim = config.hidden_dim;
        }
        let h_dim = if config.use_gcn { config.hidden_dim } else { config.embed_dim };
        let q1 = params.add("q1", xavier_uniform(h_dim, 1, &mut rng));
        // b1 starts at +1 so the Eq.-2 scores begin in the ReLU's active
        // region. At b1 = 0 roughly half the scores clamp; SGD then walks
        // the rest below zero and the whole attention layer dies (zero
        // gradient forever, permanently uniform weights). Softmax is
        // shift-invariant, so the positive offset changes nothing else.
        let b1 = params.add("b1", Matrix::full(1, 1, 1.0));
        let out = theta_width(config.n_components);
        // Small output weights + region-tiling bias: predictions start at
        // the bias mixture and move from there.
        let q2 = params.add("q2", xavier_uniform(h_dim, out, &mut rng).scale(0.1));
        let b2 = params.add("b2", init_head_bias(bbox, config.n_components));

        let features = Arc::new(Matrix::from_vec(
            e2v.index.len(),
            config.embed_dim,
            e2v.embeddings.iter().flatten().copied().collect(),
        ));

        // The training-split location prior, kept for the opt-in
        // zero-entity fallback at prediction time.
        let locations: Vec<Point> = train.iter().map(|t| t.location).collect();
        let prior = BivariateGaussian::fit(&locations).map(GaussianMixture::single);

        let mut model = Self {
            config,
            ner,
            index: e2v.index,
            adjacency,
            features,
            params,
            w_gcn,
            q1,
            b1,
            q2,
            b2,
            smoothed: Matrix::zeros(0, 0),
            prior,
            fallback_prior: false,
        };

        // Stage 4: end-to-end optimization (Eq. 13).
        let report = model.optimize(train, &e2v.tweet_entities, stats, opts)?;
        model.refresh_smoothed();
        Ok((model, report))
    }

    /// Builds the Adam optimizer with this model's decay-exclusion set.
    fn make_optimizer(&self, lr: f32) -> Adam {
        let mut optimizer = Adam::new(lr, 0.9, 0.999, 1e-8, self.config.weight_decay);
        // Biases carry non-regularizable scale (the head bias holds the
        // degree-valued component means); decay applies to weights only.
        optimizer.exclude_from_decay(self.b1);
        optimizer.exclude_from_decay(self.b2);
        // The attention scorer q1 is a single d-vector whose gradient
        // pressure is weak early in training (the mixture head can hedge
        // instead); decaying it collapses the scores into the ReLU dead
        // zone and the attention degenerates to a uniform average. Exempt
        // it so Eq. 2-3 can actually differentiate entities.
        optimizer.exclude_from_decay(self.q1);
        optimizer
    }

    /// Can this freshly initialized model continue from `state`? Guards
    /// against resuming under a different configuration or corpus.
    fn check_resume_compat(&self, state: &CheckpointState) -> Result<(), TrainError> {
        use crate::persist::PersistError;
        if state.config != self.config {
            return Err(TrainError::Checkpoint(PersistError::Corrupt(
                "checkpoint was written under a different configuration".to_string(),
            )));
        }
        if state.params.len() != self.params.len() {
            return Err(TrainError::Checkpoint(PersistError::Corrupt(format!(
                "checkpoint stores {} parameters, this corpus initializes {}",
                state.params.len(),
                self.params.len()
            ))));
        }
        for i in 0..self.params.len() {
            let (id, fresh) = (ParamId(i), self.params.get(ParamId(i)));
            if state.params.get(id).shape() != fresh.shape() {
                return Err(TrainError::Checkpoint(PersistError::Corrupt(format!(
                    "parameter {i} is {:?} in the checkpoint but {:?} for this corpus",
                    state.params.get(id).shape(),
                    fresh.shape()
                ))));
            }
        }
        Ok(())
    }

    /// Restores parameters, Adam moments and epoch history from `state`,
    /// stepping at `lr` (the checkpoint's own rate on resume, a halved one
    /// on rollback). Returns `(next_epoch, stored rollbacks, optimizer)`.
    fn restore_from(
        &mut self,
        state: CheckpointState,
        lr: f32,
        epoch_losses: &mut Vec<f64>,
        epoch_wall_secs: &mut Vec<f64>,
    ) -> (usize, u64, Adam) {
        let mut optimizer = self.make_optimizer(lr);
        optimizer.load_state(state.adam);
        self.params = state.params;
        *epoch_losses = state.epoch_losses;
        *epoch_wall_secs = state.epoch_wall_secs;
        (state.next_epoch, state.rollbacks, optimizer)
    }

    fn optimize(
        &mut self,
        train: &[Tweet],
        tweet_entities: &[Vec<usize>],
        graph: GraphStats,
        opts: &TrainOptions,
    ) -> Result<TrainReport, TrainError> {
        // Usable tweets: at least one entity.
        let usable: Vec<usize> =
            (0..train.len()).filter(|&i| !tweet_entities[i].is_empty()).collect();
        if usable.is_empty() {
            return Err(TrainError::NoEntities(
                "no training tweet has a recognized entity".to_string(),
            ));
        }

        let checkpointer = opts
            .checkpoint_dir
            .as_ref()
            .map(|dir| Checkpointer::new(dir, opts.checkpoint_every, opts.keep_last));

        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut epoch_wall_secs = Vec::with_capacity(self.config.epochs);
        let mut lr = self.config.lr;
        let mut rollbacks = 0u64;
        let mut epoch = 0usize;
        let mut optimizer = self.make_optimizer(lr);

        if opts.resume {
            let Some(cp) = &checkpointer else {
                return Err(TrainError::InvalidConfig(
                    "resume requires a checkpoint directory".to_string(),
                ));
            };
            if let Some((path, state)) = cp.latest()? {
                self.check_resume_compat(&state)?;
                lr = state.lr;
                let (e, r, o) =
                    self.restore_from(state, lr, &mut epoch_losses, &mut epoch_wall_secs);
                (epoch, rollbacks, optimizer) = (e, r, o);
                edge_obs::counter!("checkpoint.resumes").inc(1);
                edge_obs::progress!(
                    "[checkpoint] resuming from {} at epoch {epoch}",
                    path.display()
                );
            }
        }
        let start_epoch = epoch;

        let telemetry_on = edge_obs::telemetry::active();
        let alloc_on = edge_obs::alloc::active();

        // Cross-batch recycled storage: the tape arena plus the staging
        // vectors for aggregation rows, targets and gradients all live for
        // the whole run, so once the first epoch has warmed the pools a
        // steady-state batch performs zero heap allocations
        // (`opts.fresh_alloc` reverts to per-batch allocation — the
        // bit-identical reference mode).
        let mut arena = TapeArena::new();
        let mut z_rows: Vec<NodeId> = Vec::new();
        let mut targets: Vec<(f64, f64)> = Vec::new();
        let mut grads: Vec<(ParamId, Matrix)> = Vec::new();
        let mut steady_batch_allocs: Option<u64> = None;

        'epochs: while epoch < self.config.epochs {
            let _epoch_span = edge_obs::span("epoch");
            let epoch_start = std::time::Instant::now();
            // Shuffle order is derived from (seed, epoch) alone so resumed
            // and uninterrupted runs walk identical batch sequences.
            let mut order = usable.clone();
            order.shuffle(&mut StdRng::seed_from_u64(epoch_seed(self.config.seed, epoch)));
            let mut epoch_nll = 0.0f64;
            let mut n_tweets = 0usize;
            // Per-group sum of squared gradient entries over the epoch
            // (gcn / attention / head), reported as L2 norms in telemetry.
            let mut grad_sq = [0.0f64; 3];
            let mut epoch_min_allocs: Option<u64> = None;
            for batch in order.chunks(self.config.batch_size) {
                let allocs_before =
                    if alloc_on { Some(edge_obs::alloc::counts().count) } else { None };
                let mut tape = if opts.fresh_alloc {
                    Tape::new()
                } else {
                    Tape::with_arena(std::mem::take(&mut arena))
                };
                let x = tape.constant_shared(Arc::clone(&self.features));
                let smoothed = if self.config.use_gcn {
                    gcn_forward(&mut tape, &self.adjacency, x, &self.w_gcn, &self.params)
                } else {
                    x
                };
                z_rows.clear();
                targets.clear();
                for &i in batch {
                    let z = if self.config.use_attention {
                        attention_aggregate(
                            &mut tape,
                            smoothed,
                            &tweet_entities[i],
                            self.q1,
                            self.b1,
                            &self.params,
                        )
                    } else {
                        sum_aggregate(&mut tape, smoothed, &tweet_entities[i])
                    };
                    z_rows.push(z);
                    targets.push((train[i].location.lat, train[i].location.lon));
                }
                let mdn_span = edge_obs::span("mdn");
                let z = tape.concat_rows(&z_rows); // B x h
                let w = tape.param(self.q2, &self.params);
                let b = tape.param(self.b2, &self.params);
                let lin = tape.matmul(z, w);
                let theta = tape.add_row_broadcast(lin, b); // Eq. 7
                let nll_sum = tape.gmm_nll(theta, &targets, self.config.n_components);
                let loss = tape.scale(nll_sum, 1.0 / batch.len() as f32);
                drop(mdn_span);
                let batch_nll = tape.scalar(nll_sum) as f64;
                tape.backward_into(loss, &mut grads);
                // Retire the tape *before* the optimizer step: its shared
                // parameter leaves drop their refcounts here, so Adam's
                // copy-on-write `get_mut` updates in place instead of
                // deep-cloning every parameter.
                if opts.fresh_alloc {
                    drop(tape);
                } else {
                    arena = tape.into_arena();
                }
                if edge_faults::enabled() && edge_faults::fired("train.poison_grads") {
                    // Fault-injection hook: simulate a numerically exploded
                    // step by poisoning the first gradient.
                    if let Some((_, g)) = grads.first_mut() {
                        g.fill(f32::NAN);
                    }
                }
                if let Some(clip) = opts.grad_clip {
                    clip_global_norm(&mut grads, clip);
                }

                // Divergence guard: a non-finite loss or gradient must not
                // reach the parameters. Roll back to the last checkpoint at
                // half the learning rate, or fail with a typed error.
                let loss_finite = batch_nll.is_finite();
                let finite = if !loss_finite {
                    edge_obs::counter!("guard.nonfinite_loss").inc(1);
                    false
                } else if grads.iter().any(|(_, g)| g.data().iter().any(|v| !v.is_finite())) {
                    edge_obs::counter!("guard.nonfinite_grads").inc(1);
                    false
                } else {
                    true
                };
                if !finite {
                    let detail = if loss_finite {
                        "non-finite gradient".to_string()
                    } else {
                        format!("non-finite loss {batch_nll}")
                    };
                    rollbacks += 1;
                    edge_obs::counter!("guard.rollbacks").inc(1);
                    if rollbacks > opts.max_rollbacks as u64 {
                        return Err(TrainError::Diverged {
                            epoch,
                            rollbacks,
                            detail: format!("{detail}; rollback budget exhausted"),
                        });
                    }
                    let Some(cp) = &checkpointer else {
                        return Err(TrainError::Diverged {
                            epoch,
                            rollbacks,
                            detail: format!("{detail}; checkpointing disabled"),
                        });
                    };
                    let Some((path, state)) = cp.latest()? else {
                        return Err(TrainError::Diverged {
                            epoch,
                            rollbacks,
                            detail: format!("{detail}; no checkpoint to roll back to"),
                        });
                    };
                    self.check_resume_compat(&state)?;
                    lr *= 0.5;
                    let (e, _, o) =
                        self.restore_from(state, lr, &mut epoch_losses, &mut epoch_wall_secs);
                    (epoch, optimizer) = (e, o);
                    edge_obs::progress!(
                        "[guard] {detail} at epoch {epoch}: rolled back to {} with lr {lr}",
                        path.display()
                    );
                    if !opts.fresh_alloc {
                        for (_, g) in grads.drain(..) {
                            arena.recycle(g);
                        }
                    }
                    continue 'epochs;
                }

                if telemetry_on {
                    for (pid, g) in &grads {
                        let sq: f64 = g.data().iter().map(|&x| x as f64 * x as f64).sum();
                        grad_sq[self.param_group(*pid)] += sq;
                    }
                }
                let step_span = edge_obs::span("adam.step");
                optimizer.step(&mut self.params, &grads);
                drop(step_span);
                if opts.fresh_alloc {
                    grads.clear();
                } else {
                    // Gradient buffers go back to the pool for the next batch.
                    for (_, g) in grads.drain(..) {
                        arena.recycle(g);
                    }
                }
                if let Some(before) = allocs_before {
                    let delta = edge_obs::alloc::counts().count.saturating_sub(before);
                    epoch_min_allocs = Some(epoch_min_allocs.map_or(delta, |m| m.min(delta)));
                    steady_batch_allocs = Some(steady_batch_allocs.map_or(delta, |m| m.min(delta)));
                }

                epoch_nll += batch_nll;
                n_tweets += batch.len();
            }
            let mean_nll = epoch_nll / n_tweets as f64;
            let wall_secs = epoch_start.elapsed().as_secs_f64();
            epoch_losses.push(mean_nll);
            epoch_wall_secs.push(wall_secs);
            edge_obs::counter!("core.train.epochs").inc(1);
            edge_obs::gauge!("core.train.nll").set(mean_nll);
            if telemetry_on {
                edge_obs::telemetry::record_epoch(edge_obs::EpochRecord {
                    epoch,
                    nll: mean_nll,
                    grad_norms: ["gcn", "attention", "head"]
                        .iter()
                        .zip(grad_sq)
                        .map(|(name, sq)| (name.to_string(), sq.sqrt()))
                        .collect(),
                    lr: lr as f64,
                    tweets_per_sec: n_tweets as f64 / wall_secs.max(1e-9),
                    wall_secs,
                    rollbacks,
                    batch_allocs: epoch_min_allocs,
                });
            }
            if let Some(cp) = &checkpointer {
                if cp.due_after(epoch) {
                    let state = CheckpointState {
                        schema_version: CHECKPOINT_VERSION,
                        config: self.config.clone(),
                        next_epoch: epoch + 1,
                        lr,
                        rollbacks,
                        params: self.params.clone(),
                        adam: optimizer.export_state(),
                        epoch_losses: epoch_losses.clone(),
                        epoch_wall_secs: epoch_wall_secs.clone(),
                    };
                    if let Err(e) = cp.write(&state) {
                        // A failed checkpoint write must not kill a healthy
                        // run; it only narrows recovery options.
                        edge_obs::counter!("checkpoint.write_errors").inc(1);
                        edge_obs::progress!("[checkpoint] write failed (continuing): {e}");
                    }
                }
            }
            // Fault-injection hook for interruption tests: an `err` here
            // aborts training exactly at an epoch boundary, after any due
            // checkpoint was written — the in-process analogue of SIGKILL.
            edge_faults::failpoint!("train.epoch_end");
            epoch += 1;
        }
        Ok(TrainReport {
            epoch_losses,
            epoch_wall_secs,
            n_train_used: usable.len(),
            graph,
            rollbacks,
            start_epoch,
            steady_batch_allocs,
        })
    }

    /// Telemetry grouping of a parameter: 0 = GCN stack, 1 = attention
    /// scorer, 2 = mixture head.
    fn param_group(&self, pid: ParamId) -> usize {
        if self.w_gcn.contains(&pid) {
            0
        } else if pid == self.q1 || pid == self.b1 {
            1
        } else {
            2
        }
    }

    /// Recomputes the cached diffused embeddings from the current weights.
    fn refresh_smoothed(&mut self) {
        self.smoothed = if self.config.use_gcn {
            let weights: Vec<&Matrix> = self.w_gcn.iter().map(|&w| self.params.get(w)).collect();
            gcn_infer(&self.adjacency, &self.features, &weights)
        } else {
            Matrix::clone(&self.features)
        };
    }

    /// Rebuilds a model from its persisted parts (see `persist`); the
    /// diffused-embedding cache is recomputed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        config: EdgeConfig,
        ner: EntityRecognizer,
        index: EntityIndex,
        adjacency: Arc<CsrMatrix>,
        features: Matrix,
        params: ParamStore,
        w_gcn: Vec<ParamId>,
        q1: ParamId,
        b1: ParamId,
        q2: ParamId,
        b2: ParamId,
        prior: Option<GaussianMixture>,
    ) -> Self {
        let mut model = Self {
            config,
            ner,
            index,
            adjacency,
            features: Arc::new(features),
            params,
            w_gcn,
            q1,
            b1,
            q2,
            b2,
            smoothed: Matrix::zeros(0, 0),
            prior,
            fallback_prior: false,
        };
        model.refresh_smoothed();
        model
    }

    /// The model's configuration.
    pub fn config(&self) -> &EdgeConfig {
        &self.config
    }

    /// The normalized adjacency operator (persistence accessor).
    pub fn adjacency_matrix(&self) -> &Arc<CsrMatrix> {
        &self.adjacency
    }

    /// The entity2vec feature matrix `X` (persistence accessor).
    pub fn feature_matrix(&self) -> &Matrix {
        &self.features
    }

    /// The trained parameters (persistence accessor).
    pub fn param_store(&self) -> &ParamStore {
        &self.params
    }

    /// The per-layer GCN weight ids (persistence accessor).
    pub fn gcn_param_ids(&self) -> &[ParamId] {
        &self.w_gcn
    }

    /// The attention parameters `(Q1, b1)` (persistence accessor).
    pub fn attention_param_ids(&self) -> (ParamId, ParamId) {
        (self.q1, self.b1)
    }

    /// The mixture-head parameters `(Q2, b2)` (persistence accessor).
    pub fn head_param_ids(&self) -> (ParamId, ParamId) {
        (self.q2, self.b2)
    }

    /// The training-split location prior (persistence accessor; `None` when
    /// the training split was too small to fit one).
    pub fn prior(&self) -> Option<&GaussianMixture> {
        self.prior.as_ref()
    }

    /// Opt into (or out of) predicting the training-split prior for tweets
    /// with no recognized entity. Off by default: the paper excludes those
    /// tweets, and silently imputing a region-level guess would distort
    /// accuracy metrics unless explicitly requested.
    pub fn set_fallback_prior(&mut self, enabled: bool) {
        self.fallback_prior = enabled;
    }

    /// Whether the zero-entity prior fallback is active.
    pub fn fallback_prior_enabled(&self) -> bool {
        self.fallback_prior && self.prior.is_some()
    }

    /// The entity inventory.
    pub fn entity_index(&self) -> &EntityIndex {
        &self.index
    }

    /// The recognizer the model uses at inference.
    pub fn recognizer(&self) -> &EntityRecognizer {
        &self.ner
    }

    /// The diffused (spatially smoothed) embedding of entity `idx`.
    pub fn smoothed_embedding(&self, idx: usize) -> &[f32] {
        self.smoothed.row(idx)
    }

    /// The entity indices a tweet text resolves to (known entities only).
    pub fn resolve_entities(&self, text: &str) -> Vec<usize> {
        let mut ids: Vec<usize> =
            self.ner.recognize(text).into_iter().filter_map(|m| self.index.get(&m.id)).collect();
        ids.sort_unstable();
        ids.dedup();
        edge_obs::counter!("core.ner.resolve.calls").inc(1);
        if ids.is_empty() {
            // The tweet mentions no entity present in the training graph —
            // the coverage gap the paper excludes (and the quantity the
            // `evaluate` miss rate reports).
            edge_obs::counter!("core.ner.resolve.misses").inc(1);
        }
        ids
    }

    /// Predicts a location mixture for a tweet text. Returns `None` when the
    /// tweet contains no entity present in the training graph (the ~2.8% of
    /// test tweets the paper excludes) — unless the prior fallback was
    /// enabled via [`EdgeModel::set_fallback_prior`], in which case such
    /// tweets get the training-split prior (with no attention signal).
    pub fn predict(&self, text: &str) -> Option<Prediction> {
        edge_obs::counter!("core.predict.calls").inc(1);
        let entities = self.resolve_entities(text);
        if entities.is_empty() {
            if self.fallback_prior {
                if let Some(prior) = &self.prior {
                    edge_obs::counter!("core.predict.fallbacks").inc(1);
                    return Some(Prediction {
                        mixture: prior.clone(),
                        point: prior.mode(),
                        attention: Vec::new(),
                    });
                }
            }
            return None;
        }
        self.predict_entities(&entities).ok()
    }

    /// Predicts a batch of tweet texts, fanning the work across the
    /// `edge-par` pool (prediction is pure). Output is in input order;
    /// uncovered tweets yield `None` at their position.
    pub fn predict_batch(&self, texts: &[&str]) -> Vec<Option<Prediction>> {
        let _span = edge_obs::span("predict_batch");
        let mut out: Vec<Option<Prediction>> = Vec::with_capacity(texts.len());
        out.resize_with(texts.len(), || None);
        edge_par::parallel_for_chunks_mut(&mut out, 1, |i, slot| {
            slot[0] = self.predict(texts[i]);
        });
        out
    }

    /// Predicts from resolved entity indices. An empty slice is a typed
    /// error: there is nothing to aggregate (callers holding raw text
    /// should use [`EdgeModel::predict`], which handles the coverage gap).
    pub fn predict_entities(&self, entities: &[usize]) -> Result<Prediction, PredictError> {
        if entities.is_empty() {
            return Err(PredictError::NoEntities);
        }
        let p = crate::infer::InferParams {
            q1: self.params.get(self.q1),
            b1: self.params.get(self.b1),
            q2: self.params.get(self.q2),
            b2: self.params.get(self.b2),
            use_attention: self.config.use_attention,
            n_components: self.config.n_components,
        };
        let (mixture, weights) = crate::infer::infer_prediction(&self.smoothed, entities, &p);
        let point = mixture.mode();
        let attention = entities
            .iter()
            .zip(weights)
            .map(|(&e, w)| (self.index.name(e).to_string(), w))
            .collect();
        Ok(Prediction { mixture, point, attention })
    }

    /// Evaluates on a test split: returns `(prediction, truth)` pairs for
    /// covered tweets (in input order) and the coverage fraction.
    /// Prediction is pure, so tweets are scored in parallel.
    pub fn evaluate(&self, test: &[Tweet]) -> (Vec<(Prediction, Point)>, f64) {
        let _span = edge_obs::span("evaluate");
        let texts: Vec<&str> = test.iter().map(|t| t.text.as_str()).collect();
        let out: Vec<(Prediction, Point)> = self
            .predict_batch(&texts)
            .into_iter()
            .zip(test)
            .filter_map(|(p, t)| p.map(|p| (p, t.location)))
            .collect();
        let coverage = out.len() as f64 / test.len().max(1) as f64;
        // Uncovered tweets are exactly those whose entity resolution came up
        // empty, so the NER miss rate is the complement of coverage.
        edge_obs::gauge!("core.ner.miss_rate").set(1.0 - coverage);
        (out, coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_data::{dataset_recognizer, nyma, PresetSize};
    use edge_geo::DistanceReport;

    fn trained() -> (EdgeModel, TrainReport, edge_data::Dataset) {
        let d = nyma(PresetSize::Smoke, 11);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let (model, report) =
            EdgeModel::train(train, ner, &d.bbox, EdgeConfig::smoke(), &TrainOptions::default())
                .expect("train");
        (model, report, d)
    }

    #[test]
    fn training_reduces_loss() {
        let (_, report, _) = trained();
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first - 0.3, "loss should drop substantially: {first} -> {last}");
        assert_eq!(report.epoch_wall_secs.len(), report.epoch_losses.len());
        assert!(report.epoch_wall_secs.iter().all(|&s| s > 0.0));
        assert!(report.train_loop_secs() >= *report.epoch_wall_secs.last().unwrap());
        assert!(report.n_train_used > 1000);
        assert!(report.graph.n_edges > 100);
    }

    #[test]
    fn predictions_are_sane_and_interpretable() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let mut covered = 0;
        for t in test.iter().take(200) {
            let Some(p) = model.predict(&t.text) else { continue };
            covered += 1;
            assert_eq!(p.mixture.len(), model.config().n_components);
            assert!(p.point.is_finite());
            assert!(
                d.bbox.expand(0.5).contains(&p.point),
                "prediction far outside region: {:?}",
                p.point
            );
            // Attention weights form a distribution over the tweet's entities.
            if !p.attention.is_empty() {
                let sum: f32 = p.attention.iter().map(|(_, w)| w).sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
        assert!(covered > 150, "coverage too low: {covered}/200");
    }

    #[test]
    fn model_beats_region_center_baseline() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let (preds, coverage) = model.evaluate(test);
        assert!(coverage > 0.7, "coverage {coverage}");
        let pairs: Vec<(Point, Point)> = preds.iter().map(|(p, t)| (p.point, *t)).collect();
        let report = DistanceReport::from_pairs(&pairs).unwrap();
        // The fixed center-of-region guess.
        let center_pairs: Vec<(Point, Point)> =
            preds.iter().map(|(_, t)| (d.bbox.center(), *t)).collect();
        let center = DistanceReport::from_pairs(&center_pairs).unwrap();
        assert!(
            report.median_km < center.median_km,
            "EDGE median {} !< center {}",
            report.median_km,
            center.median_km
        );
        assert!(report.at_3km > center.at_3km);
    }

    #[test]
    fn unknown_text_is_not_covered() {
        let (model, _, _) = trained();
        assert!(model.predict("zzz qqq completely unknown words").is_none());
    }

    #[test]
    fn predict_batch_matches_serial_predict() {
        let (model, _, d) = trained();
        let (_, test) = d.paper_split();
        let texts: Vec<&str> = test.iter().take(64).map(|t| t.text.as_str()).collect();
        let batched = model.predict_batch(&texts);
        assert_eq!(batched.len(), texts.len());
        for (text, got) in texts.iter().zip(&batched) {
            let serial = model.predict(text);
            match (serial, got) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.point, b.point);
                    assert_eq!(a.attention, b.attention);
                }
                (a, b) => {
                    panic!("coverage mismatch for {text:?}: {:?} vs {:?}", a.is_some(), b.is_some())
                }
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let d = nyma(PresetSize::Smoke, 21);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 2;
        let opts = TrainOptions::default();
        let (m1, r1) =
            EdgeModel::train(&train[..800], dataset_recognizer(&d), &d.bbox, cfg.clone(), &opts)
                .unwrap();
        let (m2, r2) = EdgeModel::train(&train[..800], ner, &d.bbox, cfg, &opts).unwrap();
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        let p1 = m1.predict_entities(&[0, 1]).unwrap();
        let p2 = m2.predict_entities(&[0, 1]).unwrap();
        assert_eq!(p1.point, p2.point);
    }

    #[test]
    fn fresh_alloc_reference_mode_is_bit_identical() {
        // The arena path re-carves recycled (re-zeroed) buffers; the
        // fresh-alloc path allocates everything. Same numbers, to the bit —
        // losses, parameters, and predictions.
        let d = nyma(PresetSize::Smoke, 21);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 2;
        let (m1, r1) = EdgeModel::train(
            &train[..800],
            dataset_recognizer(&d),
            &d.bbox,
            cfg.clone(),
            &TrainOptions::default(),
        )
        .unwrap();
        let opts = TrainOptions { fresh_alloc: true, ..TrainOptions::default() };
        let (m2, r2) =
            EdgeModel::train(&train[..800], dataset_recognizer(&d), &d.bbox, cfg, &opts).unwrap();
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        for ((_, name, a), (_, _, b)) in m1.param_store().iter().zip(m2.param_store().iter()) {
            assert_eq!(a.shape(), b.shape(), "{name}");
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!(x.to_bits() == y.to_bits(), "{name}: {x} vs {y}");
            }
        }
        let p1 = m1.predict_entities(&[0, 1]).unwrap();
        let p2 = m2.predict_entities(&[0, 1]).unwrap();
        assert_eq!(p1.point, p2.point);
        assert_eq!(p1.attention, p2.attention);
    }

    #[test]
    fn ablation_variants_train() {
        let d = nyma(PresetSize::Smoke, 31);
        let ner = dataset_recognizer(&d);
        let (train, _) = d.paper_split();
        let mut base = EdgeConfig::smoke();
        base.epochs = 3;
        for cfg in [
            base.clone().ablation_no_gcn(),
            base.clone().ablation_sum(),
            base.clone().ablation_no_mixture(),
        ] {
            let (model, report) = EdgeModel::train(
                &train[..1000],
                dataset_recognizer(&d),
                &d.bbox,
                cfg.clone(),
                &TrainOptions::default(),
            )
            .unwrap();
            assert!(report.epoch_losses.last().unwrap().is_finite());
            let p = model.predict_entities(&[0]).unwrap();
            assert_eq!(p.mixture.len(), cfg.n_components);
            if !cfg.use_attention {
                assert!(p.attention.is_empty(), "SUM ablation reports no attention");
            }
        }
        let _ = ner;
    }

    #[test]
    fn predict_entities_rejects_empty_slice() {
        let (model, _, _) = trained();
        assert_eq!(model.predict_entities(&[]).unwrap_err(), PredictError::NoEntities);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let d = nyma(PresetSize::Smoke, 11);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.gcn_layers = 0;
        let err =
            EdgeModel::train(train, dataset_recognizer(&d), &d.bbox, cfg, &TrainOptions::default())
                .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn fallback_prior_covers_unknown_text() {
        let (mut model, _, d) = trained();
        assert!(model.predict("zzz qqq completely unknown words").is_none());
        model.set_fallback_prior(true);
        assert!(model.fallback_prior_enabled());
        let p = model.predict("zzz qqq completely unknown words").expect("prior fallback");
        assert!(p.attention.is_empty(), "prior prediction carries no attention");
        assert!(
            d.bbox.expand(0.5).contains(&p.point),
            "prior mode should sit in the study region: {:?}",
            p.point
        );
        // Entity-bearing tweets are unaffected by the flag.
        let (_, test) = d.paper_split();
        let t = test.iter().find(|t| !model.resolve_entities(&t.text).is_empty()).unwrap();
        let with = model.predict(&t.text).unwrap();
        model.set_fallback_prior(false);
        let without = model.predict(&t.text).unwrap();
        assert_eq!(with.point, without.point);
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_resumes_from_scratch() {
        // Checkpointing must not perturb training; `resume` with an empty
        // directory is a fresh start. (Failpoint-driven interruption tests
        // live in `tests/faults.rs` — a separate process — because the
        // failpoint registry is global.)
        let d = nyma(PresetSize::Smoke, 41);
        let (train, _) = d.paper_split();
        let mut cfg = EdgeConfig::smoke();
        cfg.epochs = 3;
        let slice = &train[..600];
        let (_, plain) = EdgeModel::train(
            slice,
            dataset_recognizer(&d),
            &d.bbox,
            cfg.clone(),
            &TrainOptions::default(),
        )
        .unwrap();

        let dir = std::env::temp_dir().join(format!("edge_train_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = TrainOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            resume: true, // empty dir: must behave as a fresh start
            ..TrainOptions::default()
        };
        let (_, ckpt) =
            EdgeModel::train(slice, dataset_recognizer(&d), &d.bbox, cfg, &opts).unwrap();
        assert_eq!(plain.epoch_losses, ckpt.epoch_losses);
        assert_eq!(ckpt.start_epoch, 0);
        assert_eq!(ckpt.rollbacks, 0);
        let cp = Checkpointer::new(&dir, 2, 3);
        assert!(!cp.list().is_empty(), "checkpoints should have been written");
        let (_, state) = cp.latest().unwrap().expect("latest checkpoint");
        assert_eq!(state.next_epoch, 2, "epochs=3, every=2 → one checkpoint after epoch 1");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_dir_is_invalid_config() {
        let d = nyma(PresetSize::Smoke, 41);
        let (train, _) = d.paper_split();
        let opts = TrainOptions { resume: true, ..TrainOptions::default() };
        let err = EdgeModel::train(
            &train[..600],
            dataset_recognizer(&d),
            &d.bbox,
            EdgeConfig::smoke(),
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
    }
}
