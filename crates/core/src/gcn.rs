//! Graph-convolution layers (paper Eq. 1):
//! `H^{(ℓ+1)} = ReLU(D̃^{-1/2} Ã D̃^{-1/2} H^{(ℓ)} W^{(ℓ)})`.
//!
//! The propagation operator is a constant CSR matrix built by `edge-graph`;
//! the layer weights `W^{(ℓ)}` are the trainable parameters. Two code paths
//! exist: a tape path for training and a plain-matrix path for inference
//! (the smoothed embeddings are computed once after training and cached).

use std::sync::Arc;

use edge_tensor::tape::{NodeId, ParamId, ParamStore, Tape};
use edge_tensor::{CsrMatrix, Matrix};

/// Builds the diffusion stack on a tape: `layers` graph convolutions with
/// ReLU activations. `features` is the `H^{(0)} = X` node.
pub fn gcn_forward(
    tape: &mut Tape,
    adjacency: &Arc<CsrMatrix>,
    features: NodeId,
    weights: &[ParamId],
    params: &ParamStore,
) -> NodeId {
    assert!(!weights.is_empty(), "GCN needs at least one layer");
    edge_obs::counter!("core.gcn.forward.calls").inc(1);
    let _span = edge_obs::span("gcn");
    let mut h = features;
    for &w in weights {
        let wn = tape.param(w, params);
        let hw = tape.matmul(h, wn);
        let propagated = tape.spmm(Arc::clone(adjacency), hw);
        h = tape.relu(propagated);
    }
    h
}

/// Inference-path diffusion on plain matrices (no gradients): must match
/// [`gcn_forward`] exactly — the tests verify both paths agree.
pub fn gcn_infer(adjacency: &CsrMatrix, features: &Matrix, weights: &[&Matrix]) -> Matrix {
    assert!(!weights.is_empty(), "GCN needs at least one layer");
    edge_obs::counter!("core.gcn.infer.calls").inc(1);
    let _span = edge_obs::span("gcn");
    let mut h = features.clone();
    for w in weights {
        let hw = h.matmul(w);
        h = adjacency.matmul_dense(&hw).map(|x| x.max(0.0));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_graph::{normalized_adjacency_triplets, EntityGraph};
    use edge_tensor::init::xavier_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, d: usize) -> (Arc<CsrMatrix>, Matrix, ParamStore, Vec<ParamId>) {
        let mut g = EntityGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge_weight(i, i + 1, 1.0 + i as f32);
        }
        g.add_edge_weight(0, n - 1, 2.0);
        let adj = Arc::new(CsrMatrix::from_triplets(n, n, &normalized_adjacency_triplets(&g)));
        let mut rng = StdRng::seed_from_u64(0);
        let x = Matrix::random_uniform(n, d, 1.0, &mut rng);
        let mut params = ParamStore::new();
        let w0 = params.add("w0", xavier_uniform(d, d, &mut rng));
        let w1 = params.add("w1", xavier_uniform(d, d, &mut rng));
        (adj, x, params, vec![w0, w1])
    }

    #[test]
    fn tape_and_inference_paths_agree() {
        let (adj, x, params, weights) = setup(7, 5);
        let mut tape = Tape::new();
        let xn = tape.constant(x.clone());
        let out = gcn_forward(&mut tape, &adj, xn, &weights, &params);
        let tape_result = tape.value(out).clone();
        let w_refs: Vec<&Matrix> = weights.iter().map(|&w| params.get(w)).collect();
        let infer_result = gcn_infer(&adj, &x, &w_refs);
        assert_eq!(tape_result.shape(), infer_result.shape());
        for (a, b) in tape_result.data().iter().zip(infer_result.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn output_shape_and_nonnegativity() {
        let (adj, x, params, weights) = setup(6, 4);
        let w_refs: Vec<&Matrix> = weights.iter().map(|&w| params.get(w)).collect();
        let h = gcn_infer(&adj, &x, &w_refs);
        assert_eq!(h.shape(), (6, 4));
        assert!(h.data().iter().all(|&v| v >= 0.0), "ReLU output must be non-negative");
    }

    #[test]
    fn diffusion_spreads_information() {
        // A one-hot feature on node 0 reaches its 2-hop ego net after two
        // layers (identity weights, path graph).
        let n = 5;
        let mut g = EntityGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge_weight(i, i + 1, 1.0);
        }
        let adj = CsrMatrix::from_triplets(n, n, &normalized_adjacency_triplets(&g));
        let mut x = Matrix::zeros(n, 1);
        x.set(0, 0, 1.0);
        let identity = Matrix::identity(1);
        let h = gcn_infer(&adj, &x, &[&identity, &identity]);
        assert!(h.get(0, 0) > 0.0);
        assert!(h.get(1, 0) > 0.0, "1 hop");
        assert!(h.get(2, 0) > 0.0, "2 hops");
        assert_eq!(h.get(3, 0), 0.0, "3 hops unreachable with 2 layers");
        assert_eq!(h.get(4, 0), 0.0);
    }

    #[test]
    fn isolated_node_keeps_its_features() {
        let g = EntityGraph::new(3); // no edges
        let adj = CsrMatrix::from_triplets(3, 3, &normalized_adjacency_triplets(&g));
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.5, 0.0], vec![0.0, 3.0]]);
        let identity = Matrix::identity(2);
        let h = gcn_infer(&adj, &x, &[&identity]);
        for (a, b) in h.data().iter().zip(x.data()) {
            assert!((a - b.max(0.0)).abs() < 1e-6);
        }
    }
}
