//! Attention aggregation (paper Eq. 2–4): per-entity importance scores via
//! a biased linear layer + ReLU, softmax normalization, and a weighted sum
//! into a fixed-length tweet embedding.
//!
//! As with the GCN, a tape path serves training and a plain-matrix path
//! serves inference; the inference path additionally returns the attention
//! weights, which are the per-entity interpretability signal.

use edge_tensor::tape::{NodeId, ParamId, ParamStore, Tape};
use edge_tensor::{tape::softmax_in_place, Matrix};

/// Tape path: aggregates the rows of `smoothed` (the full `|V| × h` matrix
/// node) selected by `entity_indices` into a `1 × h` tweet embedding.
pub fn attention_aggregate(
    tape: &mut Tape,
    smoothed: NodeId,
    entity_indices: &[usize],
    q1: ParamId,
    b1: ParamId,
    params: &ParamStore,
) -> NodeId {
    assert!(!entity_indices.is_empty(), "attention needs at least one entity");
    edge_obs::counter!("core.attention.aggregate.calls").inc(1);
    let _span = edge_obs::span("attention");
    let h = tape.gather_rows(smoothed, entity_indices); // K x h
    let q = tape.param(q1, params); // h x 1
    let b = tape.param(b1, params); // 1 x 1
    let scores = tape.matmul(h, q); // Eq. 2: K x 1
    let biased = tape.add_row_broadcast(scores, b);
    let s = tape.relu(biased);
    let st = tape.transpose(s); // 1 x K
    let w = tape.softmax_rows(st); // Eq. 3
    tape.matmul(w, h) // Eq. 4: 1 x h
}

/// Tape path of the SUM ablation: plain summation of entity rows.
pub fn sum_aggregate(tape: &mut Tape, smoothed: NodeId, entity_indices: &[usize]) -> NodeId {
    assert!(!entity_indices.is_empty(), "aggregation needs at least one entity");
    let h = tape.gather_rows(smoothed, entity_indices);
    tape.sum_rows(h)
}

/// Inference path: returns `(z, attention_weights)` with weights parallel
/// to `entity_indices`. Must match [`attention_aggregate`] exactly.
pub fn attention_infer(
    smoothed: &Matrix,
    entity_indices: &[usize],
    q1: &Matrix,
    b1: &Matrix,
) -> (Matrix, Vec<f32>) {
    assert!(!entity_indices.is_empty(), "attention needs at least one entity");
    let h = smoothed.gather_rows(entity_indices); // K x h
    let mut scores: Vec<f32> =
        h.matmul(q1).data().iter().map(|s| (s + b1.get(0, 0)).max(0.0)).collect();
    softmax_in_place(&mut scores);
    let mut z = Matrix::zeros(1, h.cols());
    for (k, &w) in scores.iter().enumerate() {
        for (zv, &hv) in z.row_mut(0).iter_mut().zip(h.row(k)) {
            *zv += w * hv;
        }
    }
    (z, scores)
}

/// Inference path of the SUM ablation.
pub fn sum_infer(smoothed: &Matrix, entity_indices: &[usize]) -> Matrix {
    assert!(!entity_indices.is_empty(), "aggregation needs at least one entity");
    smoothed.gather_rows(entity_indices).sum_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Matrix, ParamStore, ParamId, ParamId) {
        let mut rng = StdRng::seed_from_u64(3);
        let smoothed = Matrix::random_uniform(10, 6, 1.0, &mut rng);
        let mut params = ParamStore::new();
        let q1 = params.add("q1", Matrix::random_uniform(6, 1, 0.8, &mut rng));
        let b1 = params.add("b1", Matrix::full(1, 1, 0.1));
        (smoothed, params, q1, b1)
    }

    #[test]
    fn tape_and_inference_paths_agree() {
        let (smoothed, params, q1, b1) = setup();
        let indices = vec![1, 4, 7];
        let mut tape = Tape::new();
        let sn = tape.constant(smoothed.clone());
        let z_node = attention_aggregate(&mut tape, sn, &indices, q1, b1, &params);
        let z_tape = tape.value(z_node).clone();
        let (z_infer, weights) =
            attention_infer(&smoothed, &indices, params.get(q1), params.get(b1));
        assert_eq!(z_tape.shape(), (1, 6));
        for (a, b) in z_tape.data().iter().zip(z_infer.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert_eq!(weights.len(), 3);
    }

    #[test]
    fn weights_are_a_distribution() {
        let (smoothed, params, q1, b1) = setup();
        let (_, w) = attention_infer(&smoothed, &[0, 2, 5, 9], params.get(q1), params.get(b1));
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn single_entity_gets_full_weight() {
        let (smoothed, params, q1, b1) = setup();
        let (z, w) = attention_infer(&smoothed, &[6], params.get(q1), params.get(b1));
        assert_eq!(w, vec![1.0]);
        for (a, b) in z.data().iter().zip(smoothed.row(6)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn z_is_convex_combination_of_rows() {
        // Each output coordinate lies within the min/max of the gathered rows.
        let (smoothed, params, q1, b1) = setup();
        let indices = [2, 3, 8];
        let (z, _) = attention_infer(&smoothed, &indices, params.get(q1), params.get(b1));
        for c in 0..smoothed.cols() {
            let vals: Vec<f32> = indices.iter().map(|&i| smoothed.get(i, c)).collect();
            let lo = vals.iter().copied().fold(f32::INFINITY, f32::min) - 1e-6;
            let hi = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max) + 1e-6;
            assert!((lo..=hi).contains(&z.get(0, c)));
        }
    }

    #[test]
    fn informative_entity_attracts_weight() {
        // With q1 picking out coordinate 0, the row with the largest first
        // coordinate should win the attention.
        let smoothed = Matrix::from_rows(&[
            vec![0.1, 0.5],
            vec![3.0, 0.5], // strong signal
            vec![0.2, 0.5],
        ]);
        let q1 = Matrix::from_rows(&[vec![1.0], vec![0.0]]);
        let b1 = Matrix::zeros(1, 1);
        let (_, w) = attention_infer(&smoothed, &[0, 1, 2], &q1, &b1);
        assert!(w[1] > w[0] && w[1] > w[2], "weights {w:?}");
    }

    #[test]
    fn sum_paths_agree_and_add_rows() {
        let (smoothed, _, _, _) = setup();
        let indices = vec![0, 3];
        let mut tape = Tape::new();
        let sn = tape.constant(smoothed.clone());
        let z_node = sum_aggregate(&mut tape, sn, &indices);
        let z_tape = tape.value(z_node).clone();
        let z_infer = sum_infer(&smoothed, &indices);
        for c in 0..smoothed.cols() {
            let expected = smoothed.get(0, c) + smoothed.get(3, c);
            assert!((z_tape.get(0, c) - expected).abs() < 1e-6);
            assert!((z_infer.get(0, c) - expected).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one entity")]
    fn empty_entity_set_panics() {
        let (smoothed, params, q1, b1) = setup();
        let _ = attention_infer(&smoothed, &[], params.get(q1), params.get(b1));
    }
}
