//! Property-based tests for the text substrate: the tokenizer and NER must
//! be total (never panic) and structurally consistent on arbitrary input.

use edge_text::{canonical_id, ngrams, tokenize, EntityCategory, EntityRecognizer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokenizer_is_total(text in "\\PC{0,200}") {
        // Any printable string tokenizes without panicking, and tokens are
        // never empty.
        let tokens = tokenize(&text);
        prop_assert!(tokens.iter().all(|t| !t.text.is_empty()));
    }

    #[test]
    fn tokens_contain_no_whitespace(text in "\\PC{0,200}") {
        for t in tokenize(&text) {
            prop_assert!(!t.text.chars().any(char::is_whitespace), "token {:?}", t.text);
        }
    }

    #[test]
    fn canonical_id_is_idempotent(text in "[a-zA-Z ]{1,40}") {
        let once = canonical_id(&text);
        prop_assert_eq!(canonical_id(&once), once.clone());
        // And produces no whitespace or uppercase.
        prop_assert!(!once.contains(' '));
        prop_assert_eq!(once.to_lowercase(), once);
    }

    #[test]
    fn ngram_count_formula(words in proptest::collection::vec("[a-z]{1,6}", 0..15), max_n in 1usize..4) {
        let grams = ngrams(&words, max_n);
        // Exactly Σ max(0, len − n + 1) over n = 1..=max_n.
        let exact: usize = (1..=max_n)
            .filter(|&n| words.len() >= n)
            .map(|n| words.len() - n + 1)
            .sum();
        prop_assert_eq!(grams.len(), exact);
    }

    #[test]
    fn recognizer_is_total_and_unique(text in "\\PC{0,200}") {
        let ner = EntityRecognizer::with_gazetteer([
            ("Majestic Theatre", EntityCategory::Facility),
            ("broadway", EntityCategory::Geolocation),
        ]);
        let mentions = ner.recognize(&text);
        // Ids are unique and canonical.
        let mut ids: Vec<&str> = mentions.iter().map(|m| m.id.as_str()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicate entity ids");
        for m in &mentions {
            prop_assert_eq!(canonical_id(&m.id), m.id.clone());
        }
    }

    #[test]
    fn gazetteer_surface_always_recognized_in_clean_context(
        filler in proptest::collection::vec("[a-z]{3,8}", 0..5)
    ) {
        let ner = EntityRecognizer::with_gazetteer([("zanzibar plaza", EntityCategory::Geolocation)]);
        let text = format!("{} zanzibar plaza {}", filler.join(" "), filler.join(" "));
        let mentions = ner.recognize(&text);
        prop_assert!(
            mentions.iter().any(|m| m.id == "zanzibar_plaza"),
            "missed in: {text}"
        );
    }

    #[test]
    fn recognition_rate_bounds(text in "\\PC{0,120}") {
        let ner = EntityRecognizer::new();
        let rate = ner.recognition_rate(&text, &["anything".to_string()]);
        prop_assert!((0.0..=1.0).contains(&rate));
    }
}
