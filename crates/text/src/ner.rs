//! A chunker-style named-entity recognizer for tweets.
//!
//! EDGE's entity2vec module uses the "Chunker Named Entity Recognizer"
//! (Ritter et al.), a tool trained specifically on tweets and reported at
//! 0.88 accuracy, which also classifies entities into 10 categories (one of
//! which is *Geolocation* — the paper's Section IV-A statistics rely on
//! that classification). The original tool's models are not available as
//! Rust artifacts, so this module re-creates its *behaviour*:
//!
//! * hashtags and @-mentions are entity candidates,
//! * capitalized token chunks are grouped into multi-word entities
//!   ("Majestic Theatre" is one entity, not two words),
//! * a gazetteer (playing the role of the recognizer's trained knowledge;
//!   in the pipeline it is derived from the training corpus) supplies
//!   categories and catches lowercase surface forms,
//! * sentence-initial capitalization and stop words are filtered.
//!
//! Like the real tool, recognition is imperfect by construction: entities
//! rendered in lowercase that are absent from the gazetteer are missed,
//! which is what produces the ~87–95% recognition band the paper audits.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::stopwords::is_stopword;
use crate::token::{tokenize, Token, TokenKind};

/// The 10 entity categories of the Ritter et al. recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityCategory {
    /// A person.
    Person,
    /// A geographic location — the category the Section IV-A statistics
    /// count. Note that locations are merely a *subset* of geo-indicative
    /// entities (e.g. "American Airlines" is geo-indicative but a Company).
    Geolocation,
    /// A company or organization.
    Company,
    /// A facility (hospital, theatre, stadium, …).
    Facility,
    /// A product.
    Product,
    /// A musical act.
    Band,
    /// A movie.
    Movie,
    /// A sports team.
    SportsTeam,
    /// A TV show.
    TvShow,
    /// Anything else.
    Other,
}

impl EntityCategory {
    /// Whether the category is the recognizer's location class.
    pub fn is_location(self) -> bool {
        self == EntityCategory::Geolocation
    }
}

/// One recognized entity mention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityMention {
    /// Canonical id: lowercase, spaces replaced by `_` (the phrase-token
    /// form entity2vec trains on, e.g. `majestic_theatre`).
    pub id: String,
    /// The surface text as it appeared.
    pub surface: String,
    /// Predicted category.
    pub category: EntityCategory,
}

/// The recognizer: rules + gazetteer.
///
/// Serializes as its gazetteer entries (needed to persist a trained EDGE
/// model, whose inference path owns a recognizer).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "RecognizerRepr", into = "RecognizerRepr")]
pub struct EntityRecognizer {
    /// Lowercase token-sequence → category.
    gazetteer: HashMap<Vec<String>, EntityCategory>,
    max_phrase_len: usize,
}

/// Serialized form of [`EntityRecognizer`]: `(surface, category)` entries.
#[derive(Serialize, Deserialize)]
struct RecognizerRepr {
    entries: Vec<(String, EntityCategory)>,
}

impl From<RecognizerRepr> for EntityRecognizer {
    fn from(repr: RecognizerRepr) -> Self {
        let mut r = EntityRecognizer::new();
        for (surface, cat) in repr.entries {
            r.add_gazetteer_entry(&surface, cat);
        }
        r
    }
}

impl From<EntityRecognizer> for RecognizerRepr {
    fn from(r: EntityRecognizer) -> Self {
        let mut entries: Vec<(String, EntityCategory)> =
            r.gazetteer.into_iter().map(|(toks, cat)| (toks.join(" "), cat)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Self { entries }
    }
}

/// Canonical entity id for a surface form: lowercase, whitespace → `_`.
pub fn canonical_id(surface: &str) -> String {
    surface.to_lowercase().split_whitespace().collect::<Vec<_>>().join("_")
}

impl EntityRecognizer {
    /// A recognizer with an empty gazetteer (rules only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a recognizer from `(surface form, category)` pairs.
    pub fn with_gazetteer<'a>(
        entries: impl IntoIterator<Item = (&'a str, EntityCategory)>,
    ) -> Self {
        let mut r = Self::new();
        for (surface, cat) in entries {
            r.add_gazetteer_entry(surface, cat);
        }
        r
    }

    /// Adds one gazetteer entry.
    pub fn add_gazetteer_entry(&mut self, surface: &str, category: EntityCategory) {
        let key: Vec<String> =
            surface.to_lowercase().split_whitespace().map(String::from).collect();
        if key.is_empty() {
            return;
        }
        self.max_phrase_len = self.max_phrase_len.max(key.len());
        self.gazetteer.insert(key, category);
    }

    /// Number of gazetteer entries.
    pub fn gazetteer_len(&self) -> usize {
        self.gazetteer.len()
    }

    /// Merges another recognizer's gazetteer into this one. On conflicting
    /// entries the existing category wins, so merge order decides ties.
    /// Used by the serving router to build a union recognizer over every
    /// loaded shard model (routing needs to see all shards' entities).
    pub fn merge(&mut self, other: &EntityRecognizer) {
        for (toks, cat) in &other.gazetteer {
            self.max_phrase_len = self.max_phrase_len.max(toks.len());
            self.gazetteer.entry(toks.clone()).or_insert(*cat);
        }
    }

    /// Looks up a lowercase token sequence.
    fn lookup(&self, toks: &[String]) -> Option<EntityCategory> {
        self.gazetteer.get(toks).copied()
    }

    /// Recognizes the entities in `text`. Each distinct entity id appears
    /// once (the paper counts an entity once per tweet regardless of
    /// repeats), in first-mention order.
    pub fn recognize(&self, text: &str) -> Vec<EntityMention> {
        let tokens = tokenize(text);
        let mut mentions: Vec<EntityMention> = Vec::new();
        let push = |m: EntityMention, mentions: &mut Vec<EntityMention>| {
            if !mentions.iter().any(|e| e.id == m.id) {
                mentions.push(m);
            }
        };

        let lower: Vec<String> = tokens.iter().map(Token::lower).collect();
        let mut consumed = vec![false; tokens.len()];

        // Pass 1: hashtags and mentions.
        for (i, tok) in tokens.iter().enumerate() {
            match tok.kind {
                TokenKind::Hashtag | TokenKind::Mention => {
                    consumed[i] = true;
                    let id = canonical_id(&tok.text);
                    let category = self
                        .lookup(std::slice::from_ref(&lower[i]))
                        .unwrap_or(EntityCategory::Other);
                    let sigil = if tok.kind == TokenKind::Hashtag { "#" } else { "@" };
                    push(
                        EntityMention { id, surface: format!("{sigil}{}", tok.text), category },
                        &mut mentions,
                    );
                }
                _ => {}
            }
        }

        // Pass 2: greedy longest gazetteer match (catches lowercase forms
        // and fixes multi-word boundaries).
        if self.max_phrase_len > 0 {
            let mut i = 0;
            while i < tokens.len() {
                if consumed[i] {
                    i += 1;
                    continue;
                }
                let mut matched = 0;
                let mut matched_cat = EntityCategory::Other;
                let max_len = self.max_phrase_len.min(tokens.len() - i);
                for len in (1..=max_len).rev() {
                    if (i..i + len).any(|j| consumed[j]) {
                        continue;
                    }
                    if let Some(cat) = self.lookup(&lower[i..i + len]) {
                        matched = len;
                        matched_cat = cat;
                        break;
                    }
                }
                if matched > 0 {
                    let surface = tokens[i..i + matched]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" ");
                    for c in consumed.iter_mut().skip(i).take(matched) {
                        *c = true;
                    }
                    push(
                        EntityMention {
                            id: canonical_id(&surface),
                            surface,
                            category: matched_cat,
                        },
                        &mut mentions,
                    );
                    i += matched;
                } else {
                    i += 1;
                }
            }
        }

        // Pass 3: capitalized chunking for out-of-gazetteer entities.
        let mut i = 0;
        while i < tokens.len() {
            let is_candidate = |j: usize| {
                !consumed[j]
                    && tokens[j].kind == TokenKind::Word
                    && tokens[j].is_capitalized()
                    && !is_stopword(&lower[j])
            };
            if !is_candidate(i) {
                i += 1;
                continue;
            }
            // Sentence-initial single capitalized words are usually ordinary
            // sentence case, not entities; require either a non-initial
            // position or a multi-token chunk.
            let mut end = i + 1;
            while end < tokens.len() && is_candidate(end) {
                end += 1;
            }
            let chunk_len = end - i;
            if i == 0 && chunk_len == 1 {
                i = end;
                continue;
            }
            let surface =
                tokens[i..end].iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ");
            for c in consumed.iter_mut().skip(i).take(chunk_len) {
                *c = true;
            }
            push(
                EntityMention {
                    id: canonical_id(&surface),
                    surface,
                    category: EntityCategory::Other,
                },
                &mut mentions,
            );
            i = end;
        }

        mentions
    }

    /// The fraction of `expected` entity ids recovered from `text` — the
    /// per-tweet recognition-rate measurement of the paper's Section IV-A
    /// audit.
    pub fn recognition_rate(&self, text: &str, expected: &[String]) -> f64 {
        if expected.is_empty() {
            return 1.0;
        }
        let found: Vec<String> = self.recognize(text).into_iter().map(|m| m.id).collect();
        expected.iter().filter(|e| found.contains(e)).count() as f64 / expected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recognizer() -> EntityRecognizer {
        EntityRecognizer::with_gazetteer([
            ("Majestic Theatre", EntityCategory::Facility),
            ("Broadway", EntityCategory::Geolocation),
            ("Brooklyn", EntityCategory::Geolocation),
            ("Presbyterian Hospital", EntityCategory::Facility),
            ("covid19", EntityCategory::Other),
            ("phantomopera", EntityCategory::Band),
            ("William Street", EntityCategory::Geolocation),
        ])
    }

    #[test]
    fn canonical_id_normalizes() {
        assert_eq!(canonical_id("Majestic Theatre"), "majestic_theatre");
        assert_eq!(canonical_id("  COVID19 "), "covid19");
    }

    #[test]
    fn hashtags_and_mentions_become_entities() {
        let r = recognizer();
        let ms =
            r.recognize("This is for real... hospital this morning during the #covid19 pandemic");
        assert!(ms.iter().any(|m| m.id == "covid19"));
    }

    #[test]
    fn mention_category_from_gazetteer() {
        let r = recognizer();
        let ms = r.recognize("@PhantomOpera was a great way to end our NY trip");
        let phantom = ms.iter().find(|m| m.id == "phantomopera").expect("found");
        assert_eq!(phantom.category, EntityCategory::Band);
        assert_eq!(phantom.surface, "@PhantomOpera");
    }

    #[test]
    fn multiword_gazetteer_match_is_one_entity() {
        let r = recognizer();
        let ms = r.recognize("Tonight at the Majestic Theatre on Broadway");
        let ids: Vec<&str> = ms.iter().map(|m| m.id.as_str()).collect();
        assert!(ids.contains(&"majestic_theatre"), "{ids:?}");
        assert!(ids.contains(&"broadway"), "{ids:?}");
        let mt = ms.iter().find(|m| m.id == "majestic_theatre").unwrap();
        assert_eq!(mt.category, EntityCategory::Facility);
    }

    #[test]
    fn lowercase_gazetteer_forms_are_caught() {
        let r = recognizer();
        let ms = r.recognize("walking down william street rn");
        assert!(ms.iter().any(|m| m.id == "william_street"));
    }

    #[test]
    fn lowercase_unknown_entities_are_missed() {
        // This is the recognizer's designed imperfection.
        let r = recognizer();
        let ms = r.recognize("saw the phantom at majestic playhouse");
        assert!(ms.is_empty(), "{ms:?}");
    }

    #[test]
    fn capitalized_chunking_for_unknown_entities() {
        let r = recognizer();
        let ms = r.recognize("we visited Central Park Zoo yesterday");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].id, "central_park_zoo");
        assert_eq!(ms[0].category, EntityCategory::Other);
    }

    #[test]
    fn sentence_initial_single_capital_is_not_an_entity() {
        let r = recognizer();
        assert!(r.recognize("Great show tonight").is_empty());
        // But a sentence-initial multi-word chunk is.
        let ms = r.recognize("Times Square was packed");
        assert_eq!(ms[0].id, "times_square");
    }

    #[test]
    fn capitalized_stopwords_are_skipped() {
        let r = recognizer();
        let ms = r.recognize("The This That");
        assert!(ms.is_empty(), "{ms:?}");
    }

    #[test]
    fn repeated_entities_counted_once() {
        let r = recognizer();
        let ms = r.recognize("#covid19 everywhere, #covid19 again on Broadway and broadway");
        assert_eq!(ms.iter().filter(|m| m.id == "covid19").count(), 1);
        assert_eq!(ms.iter().filter(|m| m.id == "broadway").count(), 1);
    }

    #[test]
    fn recognition_rate_measures_misses() {
        let r = recognizer();
        let rate = r.recognition_rate(
            "quarantine vibes near william street",
            &["william_street".into(), "quarantine_vibes".into()],
        );
        assert!((rate - 0.5).abs() < 1e-12, "rate {rate}");
        assert_eq!(r.recognition_rate("anything", &[]), 1.0);
    }

    #[test]
    fn location_category_flag() {
        assert!(EntityCategory::Geolocation.is_location());
        assert!(!EntityCategory::Facility.is_location());
    }

    #[test]
    fn empty_text_yields_no_entities() {
        assert!(recognizer().recognize("").is_empty());
    }

    #[test]
    fn merge_unions_gazetteers_with_existing_entries_winning() {
        let mut a = EntityRecognizer::with_gazetteer([("Broadway", EntityCategory::Geolocation)]);
        let b = EntityRecognizer::with_gazetteer([
            ("Broadway", EntityCategory::Other),
            ("Sunset Boulevard West", EntityCategory::Geolocation),
        ]);
        a.merge(&b);
        assert_eq!(a.gazetteer_len(), 2);
        let ms = a.recognize("on Broadway then sunset boulevard west");
        let broadway = ms.iter().find(|m| m.id == "broadway").expect("broadway");
        assert_eq!(broadway.category, EntityCategory::Geolocation);
        assert!(ms.iter().any(|m| m.id == "sunset_boulevard_west"));
    }
}
