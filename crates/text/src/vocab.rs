//! Token vocabularies: string ↔ id maps with frequency counts.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A growable vocabulary mapping tokens to dense ids with counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    map: HashMap<String, usize>,
    tokens: Vec<String>,
    counts: Vec<u64>,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one occurrence of `token`, creating an id on first sight.
    /// Returns the id.
    pub fn add(&mut self, token: &str) -> usize {
        match self.map.get(token) {
            Some(&id) => {
                self.counts[id] += 1;
                id
            }
            None => {
                let id = self.tokens.len();
                self.map.insert(token.to_string(), id);
                self.tokens.push(token.to_string());
                self.counts.push(1);
                id
            }
        }
    }

    /// The id of `token`, if present.
    pub fn get(&self, token: &str) -> Option<usize> {
        self.map.get(token).copied()
    }

    /// The token with id `id`.
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// The occurrence count of id `id`.
    pub fn count(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no tokens have been added.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Total number of occurrences added.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(id, token, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str, u64)> {
        self.tokens.iter().zip(&self.counts).enumerate().map(|(i, (t, &c))| (i, t.as_str(), c))
    }

    /// A new vocabulary containing only tokens with `count >= min_count`,
    /// with compacted ids, plus the old→new id mapping.
    pub fn filter_min_count(&self, min_count: u64) -> (Vocab, Vec<Option<usize>>) {
        let mut out = Vocab::new();
        let mut mapping = vec![None; self.len()];
        for (old_id, token, count) in self.iter() {
            if count >= min_count {
                let new_id = out.tokens.len();
                out.map.insert(token.to_string(), new_id);
                out.tokens.push(token.to_string());
                out.counts.push(count);
                mapping[old_id] = Some(new_id);
            }
        }
        (out, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut v = Vocab::new();
        let a = v.add("broadway");
        let b = v.add("hospital");
        let a2 = v.add("broadway");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.get("broadway"), Some(a));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.token(b), "hospital");
        assert_eq!(v.count(a), 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.total_count(), 3);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocab::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.total_count(), 0);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocab::new();
        for (i, w) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(v.add(w), i);
        }
    }

    #[test]
    fn filter_min_count_compacts() {
        let mut v = Vocab::new();
        for _ in 0..3 {
            v.add("common");
        }
        v.add("rare");
        for _ in 0..2 {
            v.add("medium");
        }
        let (filtered, mapping) = v.filter_min_count(2);
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.get("common"), Some(0));
        assert_eq!(filtered.get("medium"), Some(1));
        assert_eq!(filtered.get("rare"), None);
        assert_eq!(mapping[v.get("common").unwrap()], Some(0));
        assert_eq!(mapping[v.get("rare").unwrap()], None);
        assert_eq!(filtered.count(0), 3);
    }

    #[test]
    fn iter_yields_everything() {
        let mut v = Vocab::new();
        v.add("x");
        v.add("y");
        v.add("x");
        let items: Vec<(usize, String, u64)> =
            v.iter().map(|(i, t, c)| (i, t.to_string(), c)).collect();
        assert_eq!(items, vec![(0, "x".to_string(), 2), (1, "y".to_string(), 1)]);
    }
}
