//! A compact English stop-word list tuned for tweets.

use std::collections::HashSet;
use std::sync::OnceLock;

const STOPWORDS: &[&str] = &[
    "a", "about", "after", "again", "all", "am", "an", "and", "any", "are", "as", "at", "be",
    "because", "been", "before", "being", "but", "by", "can", "come", "could", "day", "did", "do",
    "does", "doing", "don't", "done", "down", "during", "each", "few", "for", "from", "further",
    "get", "go", "going", "good", "got", "great", "had", "has", "have", "having", "he", "her",
    "here", "hers", "him", "his", "how", "i", "i'm", "if", "in", "into", "is", "it", "it's", "its",
    "just", "like", "lol", "me", "more", "most", "my", "new", "no", "not", "now", "of", "off",
    "on", "once", "one", "only", "or", "other", "our", "out", "over", "own", "really", "rt",
    "said", "same", "say", "see", "she", "should", "so", "some", "such", "than", "that", "the",
    "their", "them", "then", "there", "these", "they", "they're", "this", "those", "through",
    "time", "to", "today", "too", "u", "under", "until", "up", "us", "very", "was", "way", "we",
    "were", "what", "when", "where", "which", "while", "who", "why", "will", "with", "would",
    "you", "your", "yours",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Whether `word` (any case) is a stop word.
pub fn is_stopword(word: &str) -> bool {
    set().contains(word.to_lowercase().as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "The", "THE", "and", "i'm", "rt"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["broadway", "quarantine", "hospital", "covid19"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn list_is_deduplicated_and_lowercase() {
        let mut seen = std::collections::HashSet::new();
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase(), "{w} not lowercase");
            assert!(seen.insert(w), "{w} duplicated");
        }
    }
}
