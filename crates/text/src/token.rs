//! Tweet tokenization.
//!
//! Tweets are not newswire: they carry hashtags, @-mentions, URLs and loose
//! punctuation. The tokenizer keeps hashtags and mentions as single tokens
//! (they are entity candidates), drops URLs, and preserves the original
//! casing (the NER chunker needs it) while exposing a lowercase view.

use serde::{Deserialize, Serialize};

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// An ordinary word.
    Word,
    /// A `#hashtag` (leading `#` stripped in [`Token::text`]).
    Hashtag,
    /// A `@mention` (leading `@` stripped in [`Token::text`]).
    Mention,
    /// A number.
    Number,
}

/// One token with its original casing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The token text, original case, sigils stripped.
    pub text: String,
    /// Lexical class.
    pub kind: TokenKind,
}

impl Token {
    /// Lowercase view of the token text.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// Whether the token starts with an uppercase letter.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(char::is_uppercase)
    }
}

/// Tokenizes a tweet. URLs are dropped; punctuation splits tokens; hashtags
/// and mentions survive as single tokens with their sigil recorded in
/// [`TokenKind`].
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    for raw in text.split_whitespace() {
        if is_url(raw) {
            continue;
        }
        let (kind, body) = match raw.chars().next() {
            Some('#') => (TokenKind::Hashtag, &raw[1..]),
            Some('@') => (TokenKind::Mention, &raw[1..]),
            _ => (TokenKind::Word, raw),
        };
        if kind != TokenKind::Word {
            // Hashtags/mentions: strip trailing punctuation, keep one token.
            let clean: String = body.chars().filter(|c| c.is_alphanumeric() || *c == '_').collect();
            if !clean.is_empty() {
                tokens.push(Token { text: clean, kind });
            }
            continue;
        }
        // Ordinary text: split on anything that is not alphanumeric or an
        // apostrophe (keep "don't" together), then trim apostrophes.
        for piece in body.split(|c: char| !c.is_alphanumeric() && c != '\'') {
            let piece = piece.trim_matches('\'');
            if piece.is_empty() {
                continue;
            }
            let kind = if piece.chars().all(|c| c.is_ascii_digit()) {
                TokenKind::Number
            } else {
                TokenKind::Word
            };
            tokens.push(Token { text: piece.to_string(), kind });
        }
    }
    tokens
}

/// Lowercase word list of a tweet (the view bag-of-words models use).
pub fn lower_words(text: &str) -> Vec<String> {
    tokenize(text).iter().map(Token::lower).collect()
}

fn is_url(tok: &str) -> bool {
    tok.starts_with("http://") || tok.starts_with("https://") || tok.starts_with("www.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_words() {
        let toks = tokenize("hello world");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "hello");
        assert_eq!(toks[0].kind, TokenKind::Word);
    }

    #[test]
    fn hashtags_and_mentions_kept_whole() {
        let toks = tokenize("#covid19 spreading, says @PhantomOpera!");
        assert_eq!(toks[0], Token { text: "covid19".into(), kind: TokenKind::Hashtag });
        assert_eq!(
            toks.last().unwrap(),
            &Token { text: "PhantomOpera".into(), kind: TokenKind::Mention }
        );
    }

    #[test]
    fn urls_are_dropped() {
        let toks = tokenize("look https://t.co/abc123 here www.example.com now");
        let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["look", "here", "now"]);
    }

    #[test]
    fn punctuation_splits_words() {
        let toks = tokenize("quarantine...business!Great");
        let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["quarantine", "business", "Great"]);
    }

    #[test]
    fn apostrophes_survive_inside_words() {
        let toks = tokenize("they're done with 'this'");
        let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["they're", "done", "with", "this"]);
    }

    #[test]
    fn numbers_are_typed() {
        let toks = tokenize("wave 2 hits 2020");
        assert_eq!(toks[1].kind, TokenKind::Number);
        assert_eq!(toks[3].kind, TokenKind::Number);
        assert_eq!(toks[0].kind, TokenKind::Word);
    }

    #[test]
    fn capitalization_detection() {
        let toks = tokenize("Majestic theatre");
        assert!(toks[0].is_capitalized());
        assert!(!toks[1].is_capitalized());
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ###").is_empty());
        assert!(tokenize("@").is_empty());
    }

    #[test]
    fn lower_words_view() {
        assert_eq!(lower_words("Broadway SHOW"), vec!["broadway", "show"]);
    }

    #[test]
    fn unicode_text_survives() {
        let toks = tokenize("café über #naïve");
        assert_eq!(toks[0].text, "café");
        assert_eq!(toks[2].text, "naïve");
        assert_eq!(toks[2].kind, TokenKind::Hashtag);
    }
}
