//! N-gram extraction — the lexical unit of the Hyper-local baseline
//! (Flatow et al.), which models the spatial distribution of *n-grams*
//! rather than individual words.

use std::collections::HashMap;

/// Extracts all contiguous n-grams of sizes `1..=max_n` from `tokens`,
/// joined with spaces. A tweet shorter than `n` simply yields no n-grams of
/// that size.
pub fn ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    assert!(max_n >= 1, "max_n must be at least 1");
    let mut out = Vec::new();
    for n in 1..=max_n {
        if tokens.len() < n {
            break;
        }
        for w in tokens.windows(n) {
            out.push(w.join(" "));
        }
    }
    out
}

/// Counts n-grams across a corpus of token lists.
pub fn ngram_counts<'a>(
    corpus: impl IntoIterator<Item = &'a [String]>,
    max_n: usize,
) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for tokens in corpus {
        for g in ngrams(tokens, max_n) {
            *counts.entry(g).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unigrams_only() {
        let g = ngrams(&toks(&["a", "b", "c"]), 1);
        assert_eq!(g, ["a", "b", "c"]);
    }

    #[test]
    fn bigrams_and_trigrams() {
        let g = ngrams(&toks(&["times", "square", "tonight"]), 3);
        assert!(g.contains(&"times square".to_string()));
        assert!(g.contains(&"square tonight".to_string()));
        assert!(g.contains(&"times square tonight".to_string()));
        assert_eq!(g.len(), 3 + 2 + 1);
    }

    #[test]
    fn short_input_yields_short_grams_only() {
        let g = ngrams(&toks(&["solo"]), 3);
        assert_eq!(g, ["solo"]);
        assert!(ngrams(&[], 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_n")]
    fn zero_n_rejected() {
        let _ = ngrams(&[], 0);
    }

    #[test]
    fn corpus_counts_accumulate() {
        let t1 = toks(&["new", "york"]);
        let t2 = toks(&["new", "york", "city"]);
        let counts = ngram_counts([t1.as_slice(), t2.as_slice()], 2);
        assert_eq!(counts["new york"], 2);
        assert_eq!(counts["york city"], 1);
        assert_eq!(counts["new"], 2);
        assert_eq!(counts["city"], 1);
    }
}
