//! Tweet NLP substrate for the EDGE reproduction: tokenization, a
//! chunker-style named-entity recognizer with the 10-category scheme of the
//! Ritter et al. Twitter NER, vocabularies and n-gram extraction.
//!
//! See DESIGN.md §1 for how the recognizer substitutes for the paper's
//! "Chunker Named Entity Recognizer" while preserving its interface,
//! categories and error modes.

pub mod ner;
pub mod ngram;
pub mod stopwords;
pub mod token;
pub mod vocab;

pub use ner::{canonical_id, EntityCategory, EntityMention, EntityRecognizer};
pub use ngram::{ngram_counts, ngrams};
pub use stopwords::is_stopword;
pub use token::{lower_words, tokenize, Token, TokenKind};
pub use vocab::Vocab;
