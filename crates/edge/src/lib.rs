//! # EDGE — Entity-Diffusion Gaussian Ensemble
//!
//! A from-scratch Rust reproduction of *"EDGE: Entity-Diffusion Gaussian
//! Ensemble for Interpretable Tweet Geolocation Prediction"* (Hui, Chen,
//! Yan, Ku — ICDE 2021): interpretable fine-grained tweet geolocation that
//! returns a **bivariate Gaussian mixture** per tweet instead of a single
//! point, built on **entity diffusion** — smoothing entity embeddings over
//! a co-occurrence graph with graph convolutions so that non-geo-indicative
//! entities (`#covid19`, `@PhantomOpera`) absorb the spatial signal of the
//! geo-indicative entities they co-occur with.
//!
//! This facade crate re-exports the full public API of the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geo`] | `edge-geo` | points, grids, Gaussian mixtures, KDE, metrics |
//! | [`tensor`] | `edge-tensor` | the autodiff engine and optimizers |
//! | [`text`] | `edge-text` | tweet tokenizer, NER, vocabularies, n-grams |
//! | [`graph`] | `edge-graph` | co-occurrence graph + GCN normalization |
//! | [`embed`] | `edge-embed` | SGNS (word2vec) and phrase detection |
//! | [`data`] | `edge-data` | synthetic NYMA / LAMA / COVID-19 corpora |
//! | [`core`] | `edge-core` | the EDGE model, training, prediction, ablations |
//! | [`baselines`] | `edge-baselines` | LocKDE, NaiveBayes/KL (+kde2d), Hyper-local, UnicodeCNN |
//!
//! ## Quickstart
//!
//! ```
//! use edge::prelude::*;
//!
//! // A small synthetic New-York-like corpus (the paper's crawls are
//! // proprietary; see DESIGN.md for the substitution).
//! let dataset = edge::data::nyma(PresetSize::Smoke, 42);
//! let (train, test) = dataset.paper_split();
//!
//! // Train EDGE end-to-end (tiny test profile).
//! let ner = edge::data::dataset_recognizer(&dataset);
//! let mut config = EdgeConfig::smoke();
//! config.epochs = 2;
//! let (model, report) =
//!     EdgeModel::train(train, ner, &dataset.bbox, config, &TrainOptions::default()).unwrap();
//! assert!(report.epoch_losses.last().unwrap().is_finite());
//!
//! // Predict through the unified API: a full Gaussian mixture plus the
//! // Eq.-14 point estimate, or a typed abstention for uncovered tweets.
//! let request = PredictRequest::text(&test[0].text);
//! if let Ok(response) = model.locate(&request, &PredictOptions::default()) {
//!     println!("point estimate: {:?}", response.prediction.point);
//!     for (entity, weight) in &response.prediction.attention {
//!         println!("  attended {entity} with weight {weight:.3}");
//!     }
//! }
//! ```

pub use edge_baselines as baselines;
pub use edge_core as core;
pub use edge_data as data;
pub use edge_embed as embed;
pub use edge_geo as geo;
pub use edge_graph as graph;
pub use edge_tensor as tensor;
pub use edge_text as text;

/// The names a downstream user wants in scope.
pub mod prelude {
    pub use edge_baselines::{
        Geolocator, HyperLocal, KullbackLeibler, LocKde, NaiveBayes, UnicodeCnn,
    };
    pub use edge_core::{
        BowModel, EdgeConfig, EdgeModel, EvalOutcome, PointEval, PredictError, PredictInput,
        PredictOptions, PredictRequest, PredictResponse, Prediction, Predictor, TrainError,
        TrainOptions, TrainReport,
    };
    pub use edge_data::{Dataset, PresetSize, SimDate, Tweet};
    pub use edge_geo::{BBox, DistanceReport, GaussianMixture, Point};
}
