//! Property-based tests for the geographic substrate.

use edge_geo::{BBox, BivariateGaussian, GaussianMixture, Grid, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-80.0f64..80.0, -179.0f64..179.0).prop_map(|(lat, lon)| Point::new(lat, lon))
}

fn arb_metro_point() -> impl Strategy<Value = Point> {
    (40.0f64..41.0, -75.0f64..-74.0).prop_map(|(lat, lon)| Point::new(lat, lon))
}

fn arb_gaussian() -> impl Strategy<Value = BivariateGaussian> {
    (arb_metro_point(), 0.005f64..0.3, 0.005f64..0.3, -0.95f64..0.95)
        .prop_map(|(mu, s1, s2, rho)| BivariateGaussian::new(mu, s1, s2, rho))
}

proptest! {
    #[test]
    fn haversine_nonnegative_and_symmetric(a in arb_point(), b in arb_point()) {
        let d1 = a.haversine_km(&b);
        let d2 = b.haversine_km(&a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn haversine_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        // Great-circle distance is a metric: d(a,c) <= d(a,b) + d(b,c).
        prop_assert!(a.haversine_km(&c) <= a.haversine_km(&b) + b.haversine_km(&c) + 1e-6);
    }

    #[test]
    fn haversine_identity(a in arb_point()) {
        prop_assert_eq!(a.haversine_km(&a), 0.0);
    }

    #[test]
    fn local_projection_round_trip(origin in arb_metro_point(), p in arb_metro_point()) {
        let (e, n) = p.to_local_km(&origin);
        let back = Point::from_local_km(&origin, e, n);
        prop_assert!((back.lat - p.lat).abs() < 1e-9);
        prop_assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn unit_vec_round_trip(p in arb_point()) {
        let back = Point::from_unit_vec(p.to_unit_vec());
        prop_assert!((back.lat - p.lat).abs() < 1e-8);
        prop_assert!((back.lon - p.lon).abs() < 1e-8);
    }

    #[test]
    fn grid_cell_round_trip(p in arb_metro_point(), rows in 1usize..60, cols in 1usize..60) {
        let g = Grid::new(BBox::new(40.0, 41.0, -75.0, -74.0), rows, cols);
        let cell = g.cell_of(&p);
        prop_assert!(cell.row < rows && cell.col < cols);
        // The cell centre maps back to the same cell.
        prop_assert_eq!(g.cell_of(&g.center_of(cell)), cell);
        // Linear index round-trips.
        prop_assert_eq!(g.cell_at(g.index_of(cell)), cell);
    }

    #[test]
    fn gaussian_pdf_positive_and_peaked(g in arb_gaussian(), p in arb_metro_point()) {
        let d = g.pdf(&p);
        prop_assert!(d.is_finite());
        prop_assert!(d >= 0.0);
        prop_assert!(g.pdf(&g.mu) >= d - 1e-12);
    }

    #[test]
    fn gaussian_log_pdf_consistent(g in arb_gaussian(), p in arb_metro_point()) {
        let lp = g.log_pdf(&p);
        prop_assert!(lp.is_finite());
        if lp > -700.0 {
            prop_assert!((lp.exp() - g.pdf(&p)).abs() <= 1e-9 * (1.0 + g.pdf(&p)));
        }
    }

    #[test]
    fn ellipse_contains_center_and_nests(g in arb_gaussian(), c in 0.5f64..0.9) {
        let small = g.confidence_ellipse(c);
        let big = g.confidence_ellipse(c + 0.09);
        prop_assert!(small.contains(&g.mu));
        prop_assert!(big.semi_major >= small.semi_major);
        prop_assert!(big.semi_minor >= small.semi_minor);
        // Boundary points of the small ellipse are inside the big one.
        for p in small.boundary(12) {
            prop_assert!(big.contains(&p));
        }
    }

    #[test]
    fn mixture_weights_always_sum_to_one(
        gs in proptest::collection::vec((0.01f64..10.0, arb_gaussian()), 1..6)
    ) {
        let m = GaussianMixture::new(gs);
        let sum: f64 = m.weights().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(m.weights().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn mixture_pdf_between_min_and_max_component(
        gs in proptest::collection::vec((0.01f64..10.0, arb_gaussian()), 1..6),
        p in arb_metro_point()
    ) {
        let m = GaussianMixture::new(gs);
        let d = m.pdf(&p);
        let max_comp = m
            .components()
            .iter()
            .map(|g| g.pdf(&p))
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(d <= max_comp + 1e-12);
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn mixture_mode_density_at_least_component_means(
        gs in proptest::collection::vec((0.01f64..10.0, arb_gaussian()), 1..5)
    ) {
        let m = GaussianMixture::new(gs);
        let mode_density = m.pdf(&m.mode());
        for g in m.components() {
            prop_assert!(mode_density >= m.pdf(&g.mu) - 1e-12);
        }
    }

    #[test]
    fn bbox_clamp_idempotent_and_contained(p in arb_point()) {
        let b = BBox::new(40.0, 41.0, -75.0, -74.0);
        let c = b.clamp(&p);
        prop_assert!(b.contains(&c));
        prop_assert_eq!(b.clamp(&c), c);
    }

    #[test]
    fn histogram_mass_conserved(pts in proptest::collection::vec(arb_metro_point(), 0..200)) {
        let g = Grid::new(BBox::new(40.0, 41.0, -75.0, -74.0), 25, 25);
        let h = g.histogram(&pts);
        prop_assert_eq!(h.iter().map(|&c| c as usize).sum::<usize>(), pts.len());
    }
}
