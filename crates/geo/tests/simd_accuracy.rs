//! Accuracy gates for the AVX2 geographic kernels: unlike the bit-for-bit
//! contract of the `edge-tensor` kernels, the geo kernels replace libm
//! transcendentals with vector polynomials, so the contract here is a
//! bounded drift against the scalar reference — tight enough (≤ 1e-9 per
//! quantity, ≤ 1e-6 km on the end-to-end `mean_km`) that evaluation numbers
//! are unchanged at reporting precision. On hardware without AVX2 the
//! kernels fall back to scalar and every bound holds trivially at zero.

use edge_geo::simd::MixtureEval;
use edge_geo::{with_scalar_kernels, BivariateGaussian, DistanceReport, GaussianMixture, Point};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_point() -> impl Strategy<Value = Point> {
    (-90.0f64..90.0, -180.0f64..180.0).prop_map(|(lat, lon)| Point::new(lat, lon))
}

fn arb_metro_point() -> impl Strategy<Value = Point> {
    (40.0f64..41.0, -75.0f64..-74.0).prop_map(|(lat, lon)| Point::new(lat, lon))
}

fn arb_gaussian() -> impl Strategy<Value = BivariateGaussian> {
    (arb_metro_point(), 0.005f64..0.3, 0.005f64..0.3, -0.95f64..0.95)
        .prop_map(|(mu, s1, s2, rho)| BivariateGaussian::new(mu, s1, s2, rho))
}

fn arb_mixture() -> impl Strategy<Value = GaussianMixture> {
    proptest::collection::vec((0.05f64..1.0, arb_gaussian()), 1..7).prop_map(GaussianMixture::new)
}

proptest! {
    /// Batched haversine agrees with the scalar formula to well under a
    /// millimetre over the full coordinate range (drift comes from the
    /// vector sin/cos polynomials; the bound leaves ~100x headroom).
    #[test]
    fn haversine_batch_drift_bounded(pts in proptest::collection::vec(
        (arb_point(), arb_point()), 1..40)
    ) {
        let batch = edge_geo::haversine_km_batch(&pts);
        prop_assert_eq!(batch.len(), pts.len());
        for ((p, t), fast) in pts.iter().zip(&batch) {
            let scalar = p.haversine_km(t);
            prop_assert!(
                (fast - scalar).abs() < 1e-9,
                "haversine drift {} vs {} for {:?} -> {:?}", fast, scalar, p, t
            );
        }
    }

    /// The SoA mixture evaluator reproduces the scalar density to 1e-9
    /// relative (the absolute floor covers the deep-underflow tail where
    /// the vector exp saturates a few orders before libm's subnormals).
    #[test]
    fn mixture_eval_pdf_drift_bounded(mix in arb_mixture(), p in arb_metro_point()) {
        if let Some(eval) = MixtureEval::new(&mix) {
            let fast = eval.pdf(&p);
            let scalar = mix.pdf(&p);
            prop_assert!(
                (fast - scalar).abs() <= 1e-9 * scalar.abs() + 1e-300,
                "pdf drift {fast} vs {scalar}"
            );
        }
    }

    /// Same bound for the weight-summed density gradient the mode search
    /// consumes.
    #[test]
    fn mixture_eval_grad_drift_bounded(mix in arb_mixture(), p in arb_metro_point()) {
        if let Some(eval) = MixtureEval::new(&mix) {
            let (fl, fo) = eval.grad(&p);
            let (mut sl, mut so) = (0.0, 0.0);
            for (w, g) in mix.iter() {
                let (a, b) = g.pdf_grad(&p);
                sl += w * a;
                so += w * b;
            }
            let scale = sl.abs().max(so.abs()) + 1e-300;
            prop_assert!((fl - sl).abs() <= 1e-9 * scale, "grad_lat drift {fl} vs {sl}");
            prop_assert!((fo - so).abs() <= 1e-9 * scale, "grad_lon drift {fo} vs {so}");
        }
    }

    /// The vectorized mode search lands on a point at least as dense (to
    /// 1e-6 relative, judged by the *scalar* density) as the scalar
    /// search's mode, and within a metre of it.
    #[test]
    fn mode_drift_bounded(mix in arb_mixture()) {
        let fast = mix.mode();
        let scalar_mode = with_scalar_kernels(|| mix.mode());
        let (df, ds) = with_scalar_kernels(|| (mix.pdf(&fast), mix.pdf(&scalar_mode)));
        prop_assert!(df >= ds * (1.0 - 1e-6), "mode density {df} vs {ds}");
        let km = fast.haversine_km(&scalar_mode);
        prop_assert!(km < 1e-3, "mode moved {km} km: {fast:?} vs {scalar_mode:?}");
    }
}

/// End-to-end gate from the issue: the full `DistanceReport` computed with
/// the vector kernels drifts from the scalar engine by under 1e-6 km on
/// mean and median, with the threshold counts unchanged.
#[test]
fn distance_report_mean_km_drift_under_1e6() {
    let mut rng = StdRng::seed_from_u64(0x51_0D);
    let pairs: Vec<(Point, Point)> = (0..4097)
        .map(|_| {
            let truth = Point::new(rng.gen_range(40.0..41.0), rng.gen_range(-75.0..-74.0));
            let pred = Point::new(
                truth.lat + rng.gen_range(-0.2..0.2),
                truth.lon + rng.gen_range(-0.2..0.2),
            );
            (pred, truth)
        })
        .collect();
    let fast = DistanceReport::from_pairs(&pairs).unwrap();
    let scalar = with_scalar_kernels(|| DistanceReport::from_pairs(&pairs)).unwrap();
    assert!(
        (fast.mean_km - scalar.mean_km).abs() < 1e-6,
        "mean_km {} vs {}",
        fast.mean_km,
        scalar.mean_km
    );
    assert!(
        (fast.median_km - scalar.median_km).abs() < 1e-6,
        "median_km {} vs {}",
        fast.median_km,
        scalar.median_km
    );
    assert_eq!(fast.at_3km, scalar.at_3km);
    assert_eq!(fast.at_5km, scalar.at_5km);
    assert_eq!(fast.n, scalar.n);
}

/// `with_scalar_kernels` really disables the vector path: inside the
/// closure the batch API must be the exact scalar map, bit for bit.
#[test]
fn scalar_override_is_bitwise_scalar() {
    let mut rng = StdRng::seed_from_u64(7);
    let pairs: Vec<(Point, Point)> = (0..33)
        .map(|_| {
            (
                Point::new(rng.gen_range(-90.0..90.0), rng.gen_range(-180.0..180.0)),
                Point::new(rng.gen_range(-90.0..90.0), rng.gen_range(-180.0..180.0)),
            )
        })
        .collect();
    let batch = with_scalar_kernels(|| edge_geo::haversine_km_batch(&pairs));
    for ((p, t), b) in pairs.iter().zip(&batch) {
        assert_eq!(b.to_bits(), p.haversine_km(t).to_bits());
    }
    assert!(edge_geo::simd_available() || !edge_geo::simd_active());
}
