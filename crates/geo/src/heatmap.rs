//! Density heatmaps over a grid — the rendering substrate behind the
//! paper's Figure 1 (COVID spread), Figure 8 (Nipsey Hussle) and Figure 9
//! (New Colossus Festival) use cases.

use serde::{Deserialize, Serialize};

use crate::grid::Grid;
use crate::kde::Kde2d;
use crate::point::Point;

/// A normalized density surface over a grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Heatmap {
    grid: Grid,
    /// Row-major densities, normalized so the maximum is 1 (all-zero when
    /// no points were accumulated).
    values: Vec<f64>,
    /// Number of points accumulated.
    n_points: usize,
}

impl Heatmap {
    /// Builds a heatmap from points, smoothing with a Gaussian kernel of
    /// `bandwidth_cells` grid cells.
    pub fn from_points(grid: Grid, points: &[Point], bandwidth_cells: f64) -> Self {
        let counts: Vec<f64> = grid.histogram(points).into_iter().map(f64::from).collect();
        let smoothed = Kde2d::new(grid.clone(), bandwidth_cells).smooth(&counts);
        let max = smoothed.iter().copied().fold(0.0f64, f64::max);
        let values =
            if max > 0.0 { smoothed.into_iter().map(|v| v / max).collect() } else { smoothed };
        Self { grid, values, n_points: points.len() }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Row-major normalized values in `[0, 1]`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of points that built the map.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// The cell centres of the `k` hottest cells, hottest first — the
    /// "burst" locations the use cases call out.
    pub fn hotspots(&self, k: usize) -> Vec<(Point, f64)> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&a, &b| self.values[b].total_cmp(&self.values[a]));
        idx.into_iter()
            .take(k)
            .filter(|&i| self.values[i] > 0.0)
            .map(|i| (self.grid.center_of(self.grid.cell_at(i)), self.values[i]))
            .collect()
    }

    /// Cosine similarity between two heatmaps on the same grid — used by the
    /// use-case analyses to quantify how much a distribution shifted between
    /// two time windows.
    pub fn similarity(&self, other: &Heatmap) -> f64 {
        assert_eq!(self.grid, other.grid, "heatmaps must share a grid to be compared");
        let dot: f64 = self.values.iter().zip(&other.values).map(|(a, b)| a * b).sum();
        let na: f64 = self.values.iter().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = other.values.iter().map(|v| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Renders an ASCII-art preview (north at the top), `width` columns
    /// wide. Intended for terminal output from the figure binaries.
    pub fn render_ascii(&self, width: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let width = width.clamp(10, self.grid.cols());
        let height = (width * self.grid.rows() / self.grid.cols()).max(5) / 2; // terminal cells are ~2:1
        let mut out = String::new();
        for hr in (0..height).rev() {
            for hc in 0..width {
                // Average the block of grid cells mapped to this character.
                let r0 = hr * self.grid.rows() / height;
                let r1 = ((hr + 1) * self.grid.rows() / height).max(r0 + 1);
                let c0 = hc * self.grid.cols() / width;
                let c1 = ((hc + 1) * self.grid.cols() / width).max(c0 + 1);
                let mut acc = 0.0;
                let mut n = 0usize;
                for r in r0..r1 {
                    for c in c0..c1 {
                        acc += self.values[r * self.grid.cols() + c];
                        n += 1;
                    }
                }
                let v = acc / n as f64;
                let level = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[level] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;

    fn grid() -> Grid {
        Grid::new(BBox::new(40.0, 41.0, -75.0, -74.0), 40, 40)
    }

    #[test]
    fn empty_heatmap_is_all_zero() {
        let h = Heatmap::from_points(grid(), &[], 1.0);
        assert_eq!(h.n_points(), 0);
        assert!(h.values().iter().all(|&v| v == 0.0));
        assert!(h.hotspots(3).is_empty());
    }

    #[test]
    fn heatmap_is_normalized_to_unit_max() {
        let pts = vec![Point::new(40.5, -74.5); 20];
        let h = Heatmap::from_points(grid(), &pts, 1.0);
        let max = h.values().iter().copied().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(h.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn hotspot_lands_on_the_cluster() {
        let cluster = Point::new(40.25, -74.75);
        let pts = vec![cluster; 50];
        let h = Heatmap::from_points(grid(), &pts, 1.0);
        let (hot, v) = h.hotspots(1)[0];
        assert!(hot.haversine_km(&cluster) < 3.0, "hot {hot:?}");
        assert_eq!(v, 1.0);
    }

    #[test]
    fn similarity_of_identical_maps_is_one() {
        let pts: Vec<Point> = (0..30).map(|i| Point::new(40.1 + 0.02 * i as f64, -74.5)).collect();
        let h1 = Heatmap::from_points(grid(), &pts, 1.0);
        let h2 = Heatmap::from_points(grid(), &pts, 1.0);
        assert!((h1.similarity(&h2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_of_disjoint_clusters_is_low() {
        let a = Heatmap::from_points(grid(), &vec![Point::new(40.1, -74.9); 30], 0.5);
        let b = Heatmap::from_points(grid(), &vec![Point::new(40.9, -74.1); 30], 0.5);
        assert!(a.similarity(&b) < 0.05);
    }

    #[test]
    #[should_panic(expected = "share a grid")]
    fn similarity_requires_same_grid() {
        let g2 = Grid::new(BBox::new(40.0, 41.0, -75.0, -74.0), 10, 10);
        let a = Heatmap::from_points(grid(), &[], 1.0);
        let b = Heatmap::from_points(g2, &[], 1.0);
        let _ = a.similarity(&b);
    }

    #[test]
    fn ascii_render_shape() {
        let pts = vec![Point::new(40.5, -74.5); 10];
        let h = Heatmap::from_points(grid(), &pts, 2.0);
        let art = h.render_ascii(40);
        let lines: Vec<&str> = art.lines().collect();
        assert!(!lines.is_empty());
        assert!(lines.iter().all(|l| l.len() == 40));
        assert!(art.contains('@') || art.contains('%'), "peak glyph missing:\n{art}");
    }
}
